"""Dependency-free dense two-phase revised simplex.

Solves the standard-form problem

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                x >= 0

and returns primal values, the optimal objective, and the dual vector
(one multiplier per row, inequality rows first) under the convention

    reduced_cost(j) = c[j] - y @ A[:, j] >= 0   at optimality,

so for any dual-feasible ``y``, ``y @ b`` is a lower bound on the
optimum (weak duality).  Under this sign convention inequality duals
are nonpositive at the optimum.

The implementation is deliberately boring: slacks turn inequalities
into equalities, artificial variables give a feasible starting basis,
Bland's rule guarantees termination, and an explicit basis inverse is
maintained with eta-style row updates plus periodic refactorization.
It only needs numpy (a hard dependency of the package) and is exact
enough for the restricted-master LPs of :mod:`repro.bounds.lp`, which
stay in the low hundreds of rows.  ``scipy.optimize.linprog`` can be
swapped in as a faster backend (see :func:`repro.bounds.lp.solve_lp`)
but is never required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["LPResult", "simplex_solve"]

#: Feasibility / optimality tolerance for the dense simplex.
TOLERANCE = 1e-9

#: Rebuild the basis inverse from scratch every this many pivots.
REFACTOR_EVERY = 64

#: Hard pivot ceiling (Bland's rule terminates long before this on the
#: small master LPs this module exists for).
MAX_PIVOTS = 50_000


@dataclass(frozen=True)
class LPResult:
    """Outcome of a :func:`simplex_solve` call.

    Attributes:
        status: ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
        x: Primal solution (zeros unless ``status == "optimal"``).
        objective: ``c @ x`` at the optimum (``nan`` otherwise).
        duals_ub: One multiplier per inequality row (nonpositive).
        duals_eq: One multiplier per equality row (free sign).
        iterations: Total simplex pivots across both phases.
    """

    status: str
    x: np.ndarray
    objective: float
    duals_ub: np.ndarray
    duals_eq: np.ndarray
    iterations: int

    @property
    def optimal(self) -> bool:
        return self.status == "optimal"


def _as_matrix(a: Optional[np.ndarray], n: int) -> np.ndarray:
    if a is None:
        return np.zeros((0, n), dtype=float)
    matrix = np.asarray(a, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] != n:
        raise ValueError(f"constraint matrix shape {matrix.shape} != (m, {n})")
    return matrix


def _as_vector(b: Optional[np.ndarray], m: int) -> np.ndarray:
    if b is None:
        return np.zeros(0, dtype=float)
    vector = np.asarray(b, dtype=float).ravel()
    if vector.shape[0] != m:
        raise ValueError(f"rhs length {vector.shape[0]} != {m}")
    return vector


def _pivot(
    a: np.ndarray,
    basis: np.ndarray,
    b_inv: np.ndarray,
    x_b: np.ndarray,
    entering: int,
    leaving_row: int,
    direction: np.ndarray,
) -> None:
    """Replace ``basis[leaving_row]`` with *entering* and update B⁻¹."""
    step = x_b[leaving_row] / direction[leaving_row]
    x_b -= step * direction
    x_b[leaving_row] = step
    # Eta update: eliminate the entering column from every other row.
    pivot_value = direction[leaving_row]
    b_inv[leaving_row] /= pivot_value
    for row in range(b_inv.shape[0]):
        if row != leaving_row and abs(direction[row]) > 0.0:
            b_inv[row] -= direction[row] * b_inv[leaving_row]
    basis[leaving_row] = entering


def _run_phase(
    a: np.ndarray,
    b: np.ndarray,
    cost: np.ndarray,
    basis: np.ndarray,
    b_inv: np.ndarray,
    x_b: np.ndarray,
    allowed: np.ndarray,
    start_iteration: int,
) -> Tuple[str, int]:
    """Bland-rule simplex loop on one phase; mutates basis/b_inv/x_b."""
    m = a.shape[0]
    iterations = start_iteration
    pivots_since_refactor = 0
    while True:
        if iterations - start_iteration > MAX_PIVOTS:  # pragma: no cover
            raise RuntimeError("simplex pivot limit exceeded")
        y = cost[basis] @ b_inv
        reduced = cost - y @ a
        reduced[basis] = 0.0
        candidates = np.flatnonzero(allowed & (reduced < -TOLERANCE))
        if candidates.size == 0:
            return "optimal", iterations
        entering = int(candidates[0])  # Bland: smallest eligible index
        direction = b_inv @ a[:, entering]
        positive = direction > TOLERANCE
        if not positive.any():
            return "unbounded", iterations
        ratios = np.full(m, np.inf)
        ratios[positive] = x_b[positive] / direction[positive]
        best = ratios.min()
        # Bland tie-break: among minimizing rows, evict the basic
        # variable with the smallest index.
        tied = np.flatnonzero(ratios <= best + TOLERANCE)
        leaving_row = int(tied[np.argmin(basis[tied])])
        _pivot(a, basis, b_inv, x_b, entering, leaving_row, direction)
        iterations += 1
        pivots_since_refactor += 1
        if pivots_since_refactor >= REFACTOR_EVERY:
            b_inv[:, :] = np.linalg.inv(a[:, basis])
            x_b[:] = b_inv @ b
            pivots_since_refactor = 0


def simplex_solve(
    c: np.ndarray,
    a_ub: Optional[np.ndarray] = None,
    b_ub: Optional[np.ndarray] = None,
    a_eq: Optional[np.ndarray] = None,
    b_eq: Optional[np.ndarray] = None,
) -> LPResult:
    """Solve ``min c@x s.t. A_ub@x <= b_ub, A_eq@x == b_eq, x >= 0``."""
    c = np.asarray(c, dtype=float).ravel()
    n = c.shape[0]
    a_ub = _as_matrix(a_ub, n)
    b_ub = _as_vector(b_ub, a_ub.shape[0])
    a_eq = _as_matrix(a_eq, n)
    b_eq = _as_vector(b_eq, a_eq.shape[0])
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    if m == 0:
        # No constraints: optimum is all-zeros unless some cost is
        # negative, in which case the problem is unbounded.
        if (c < -TOLERANCE).any():
            return LPResult(
                "unbounded", np.zeros(n), float("nan"),
                np.zeros(0), np.zeros(0), 0,
            )
        return LPResult(
            "optimal", np.zeros(n), 0.0, np.zeros(0), np.zeros(0), 0
        )

    # Standard form: structural columns, then slacks, then artificials.
    # Inequality rows get a +1 slack; rows whose slack cannot start
    # basic (negative rhs) and every equality row get an artificial
    # with sign matching the rhs, so the all-identity-ish starting
    # basis is primal feasible without negating any row (which keeps
    # dual extraction in the original row orientation).
    rows = np.vstack([a_ub, a_eq]) if m_ub and m_eq else (
        a_ub if m_ub else a_eq
    )
    rhs = np.concatenate([b_ub, b_eq])
    slack_block = np.zeros((m, m_ub))
    for i in range(m_ub):
        slack_block[i, i] = 1.0
    needs_artificial = [
        i for i in range(m)
        if i >= m_ub or rhs[i] < -TOLERANCE
    ]
    art_block = np.zeros((m, len(needs_artificial)))
    for col, row in enumerate(needs_artificial):
        art_block[row, col] = 1.0 if rhs[row] >= 0.0 else -1.0
    a = np.hstack([rows, slack_block, art_block])
    total = a.shape[1]
    art_start = n + m_ub

    basis = np.empty(m, dtype=int)
    for col, row in enumerate(needs_artificial):
        basis[row] = art_start + col
    for i in range(m_ub):
        if rhs[i] >= -TOLERANCE:
            basis[i] = n + i  # slack starts basic
    b_inv = np.linalg.inv(a[:, basis])
    x_b = b_inv @ rhs

    iterations = 0
    if needs_artificial:
        phase1_cost = np.zeros(total)
        phase1_cost[art_start:] = 1.0
        allowed = np.ones(total, dtype=bool)
        status, iterations = _run_phase(
            a, rhs, phase1_cost, basis, b_inv, x_b, allowed, iterations
        )
        if status != "optimal":  # pragma: no cover - phase 1 is bounded
            raise RuntimeError(f"phase-1 simplex returned {status}")
        if float(phase1_cost[basis] @ x_b) > 1e-7:
            return LPResult(
                "infeasible", np.zeros(n), float("nan"),
                np.zeros(m_ub), np.zeros(m_eq), iterations,
            )
        # Drive artificials still basic at zero out of the basis with
        # degenerate pivots; a later phase-2 pivot could otherwise push
        # one positive and silently violate its row.  Rows where no
        # structural/slack column has a nonzero tableau entry are
        # redundant: their artificial stays pinned at zero forever.
        np.maximum(x_b, 0.0, out=x_b)
        in_basis = set(int(v) for v in basis)
        for row in range(m):
            if basis[row] < art_start:
                continue
            tableau_row = b_inv[row] @ a[:, :art_start]
            for j in np.flatnonzero(np.abs(tableau_row) > 1e-7):
                if int(j) in in_basis:
                    continue
                direction = b_inv @ a[:, int(j)]
                in_basis.discard(int(basis[row]))
                in_basis.add(int(j))
                _pivot(a, basis, b_inv, x_b, int(j), row, direction)
                np.maximum(x_b, 0.0, out=x_b)
                break

    phase2_cost = np.zeros(total)
    phase2_cost[:n] = c
    allowed = np.ones(total, dtype=bool)
    allowed[art_start:] = False  # artificials may never re-enter
    status, iterations = _run_phase(
        a, rhs, phase2_cost, basis, b_inv, x_b, allowed, iterations
    )
    if status == "unbounded":
        return LPResult(
            "unbounded", np.zeros(n), float("nan"),
            np.zeros(m_ub), np.zeros(m_eq), iterations,
        )

    x = np.zeros(total)
    x[basis] = np.maximum(x_b, 0.0)
    y = phase2_cost[basis] @ b_inv
    objective = float(c @ x[:n])
    return LPResult(
        status="optimal",
        x=x[:n].copy(),
        objective=objective,
        duals_ub=y[:m_ub].copy(),
        duals_eq=y[m_ub:].copy(),
        iterations=iterations,
    )
