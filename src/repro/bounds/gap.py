"""Optimality-gap helpers: solver rates against certified LP bounds.

The gap of a solution against a :class:`~repro.bounds.lp.BoundCertificate`
is the relative shortfall in linear-rate space::

    gap = 1 − rate / bound_rate        ∈ [0, 1] for a sound bound

A gap of ``0.03`` reads "this tree is certified to be within 3% of the
best achievable rate".  Negative gaps beyond :data:`SOUNDNESS_TOLERANCE`
mean the solver *beat* the bound — impossible for a sound certificate,
so :func:`aggregate_gaps` counts them as violations (the CI soundness
gate asserts there are none; capacity-exempt methods must be compared
against an uncapacitated certificate, see
:data:`repro.core.registry.CAPACITY_EXEMPT_METHODS`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Union

from repro.bounds.lp import BoundCertificate
from repro.core.problem import MUERPSolution

__all__ = [
    "SOUNDNESS_TOLERANCE",
    "GapAggregate",
    "aggregate_gaps",
    "gap_percent",
    "optimality_gap",
]

#: Relative slack allowed before a negative gap counts as a soundness
#: violation (floating-point noise between rate and bound arithmetic).
SOUNDNESS_TOLERANCE = 1e-7

RateLike = Union[MUERPSolution, float]
BoundLike = Union[BoundCertificate, float]


def _as_rate(value: RateLike) -> float:
    if isinstance(value, MUERPSolution):
        return value.rate
    return float(value)


def _as_bound_rate(value: BoundLike) -> float:
    if isinstance(value, BoundCertificate):
        return value.rate_bound
    return float(value)


def optimality_gap(solution: RateLike, bound: BoundLike) -> float:
    """Relative gap ``1 − rate/bound`` of *solution* against *bound*.

    Accepts :class:`~repro.core.problem.MUERPSolution` or a raw rate,
    and :class:`~repro.bounds.lp.BoundCertificate` or a raw bound rate.
    Conventions for the degenerate cases:

    * bound 0, rate 0 → gap 0 (both certify "nothing achievable");
    * bound 0, rate > 0 → ``−inf`` (an unambiguous soundness violation);
    * otherwise the plain ratio — negative gaps *within*
      :data:`SOUNDNESS_TOLERANCE` are snapped to 0 (they are
      floating-point noise on a tight bound, e.g. a heuristic finding
      the LP-optimal tree exactly), while anything more negative is
      kept so soundness checks surface it.
    """
    rate = _as_rate(solution)
    bound_rate = _as_bound_rate(bound)
    if rate < 0.0 or bound_rate < 0.0:
        raise ValueError(
            f"rates must be nonnegative, got rate={rate!r} "
            f"bound={bound_rate!r}"
        )
    if bound_rate == 0.0:
        return 0.0 if rate == 0.0 else -math.inf
    gap = 1.0 - rate / bound_rate
    if -SOUNDNESS_TOLERANCE <= gap < 0.0:
        return 0.0
    return gap


def gap_percent(solution: RateLike, bound: BoundLike) -> float:
    """:func:`optimality_gap` scaled to percent."""
    return 100.0 * optimality_gap(solution, bound)


@dataclass(frozen=True)
class GapAggregate:
    """Per-method gap statistics across a set of trials."""

    method: str
    n_trials: int
    mean_gap: float
    min_gap: float
    max_gap: float
    violations: int

    @property
    def mean_gap_percent(self) -> float:
        return 100.0 * self.mean_gap

    @property
    def sound(self) -> bool:
        """No trial beat its bound beyond numerical tolerance."""
        return self.violations == 0


def aggregate_gaps(
    rates_by_method: Mapping[str, Sequence[float]],
    bounds: Sequence[float],
    tolerance: float = SOUNDNESS_TOLERANCE,
) -> Dict[str, GapAggregate]:
    """Per-method gap aggregation over aligned per-trial bounds.

    ``rates_by_method[m][t]`` is method *m*'s rate on trial *t* and
    ``bounds[t]`` the certified bound for the same trial's network.
    """
    aggregates: Dict[str, GapAggregate] = {}
    for method, rates in rates_by_method.items():
        if len(rates) != len(bounds):
            raise ValueError(
                f"method {method!r} has {len(rates)} rates but "
                f"{len(bounds)} bounds"
            )
        gaps = [
            optimality_gap(rate, bound)
            for rate, bound in zip(rates, bounds)
        ]
        violations = sum(1 for g in gaps if g < -tolerance)
        if gaps:
            mean_gap = math.fsum(gaps) / len(gaps)
            min_gap, max_gap = min(gaps), max(gaps)
        else:
            mean_gap = min_gap = max_gap = math.nan
        aggregates[method] = GapAggregate(
            method=method,
            n_trials=len(gaps),
            mean_gap=mean_gap,
            min_gap=min_gap,
            max_gap=max_gap,
            violations=violations,
        )
    return aggregates
