"""Certified quality bounds for the MUERP.

``repro.bounds`` turns "our heuristics look good" into "our heuristics
are within X% of a certified bound":

* :mod:`repro.bounds.lp` — the multi-commodity-flow LP relaxation,
  solved by column generation over a dependency-free revised simplex
  (:mod:`repro.bounds.simplex`) or the optional scipy backend,
  emitting a :class:`~repro.bounds.lp.BoundCertificate`.
* :mod:`repro.bounds.rounding` — the ``"lp_rounding"`` approximate
  solver: randomized rounding of the fractional tree, ledger-checked
  and verifier-audited.
* :mod:`repro.bounds.gap` — optimality-gap helpers the experiment
  tables and benchmarks report.

See ``docs/BOUNDS.md`` for the formulation and a gap-table reading
guide.
"""

from repro.bounds.gap import (
    GapAggregate,
    aggregate_gaps,
    gap_percent,
    optimality_gap,
)
from repro.bounds.lp import (
    BoundCertificate,
    LPRelaxationResult,
    PathColumn,
    compute_bound,
    scipy_available,
    solve_relaxation,
)
from repro.bounds.rounding import solve_lp_rounding
from repro.bounds.simplex import LPResult, simplex_solve

__all__ = [
    "BoundCertificate",
    "GapAggregate",
    "LPRelaxationResult",
    "LPResult",
    "PathColumn",
    "aggregate_gaps",
    "compute_bound",
    "gap_percent",
    "optimality_gap",
    "scipy_available",
    "simplex_solve",
    "solve_lp_rounding",
    "solve_relaxation",
]
