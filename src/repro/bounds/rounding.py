"""Randomized rounding: integral entanglement trees from the LP.

The ``"lp_rounding"`` solver (registered in
:mod:`repro.core.registry`, appended to :func:`solve_robust`'s default
fallback chain) extracts a spanning tree from the fractional optimum
of :func:`repro.bounds.lp.solve_relaxation`:

1. Solve the LP relaxation once; its columns are concrete
   :class:`~repro.core.problem.Channel` objects with fractional mass.
2. Run a weighted Kruskal pass over the columns — attempt 0 visits
   them in deterministic descending-rate order, attempt 1 prefers the
   fractional support, and later attempts draw a mass-biased random
   order from the caller's rng stream (the standard exponential-key
   weighted shuffle, so same seed ⇒ byte-identical attempt
   sequence).  A column is accepted iff its endpoints are in
   different user components *and* the
   :class:`~repro.core.ledger.CapacityLedger` can still host it; each
   attempt runs inside a ledger transaction so a failed attempt rolls
   back to a clean slate.
3. If the accepted columns do not span every user (their mass sat on
   switches another column already drained), repair greedily with
   Algorithm 1 best-channel searches against the *residual* ledger —
   the same completion step Algorithm 2 uses.
4. Audit the result with :class:`~repro.verify.verifier.SolutionVerifier`
   (capacity enforced) and keep the best verified tree across attempts.

Because accepted channels only ever enter through
``try_reserve_channel`` / ``can_host`` checks against one ledger, the
output can never overbook a switch; the audit in step 4 re-derives
that from scratch anyway.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.bounds.lp import LPRelaxationResult, solve_relaxation
from repro.core.channel import best_channels_from
from repro.core.ledger import CapacityLedger
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
import repro.obs.metrics as obs_metrics
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.unionfind import UnionFind
from repro.verify.verifier import SolutionVerifier

__all__ = ["solve_lp_rounding", "DEFAULT_ATTEMPTS"]

#: Rounding attempts per solve (1 deterministic + the rest randomized).
DEFAULT_ATTEMPTS = 8

#: Columns with at least this much LP mass get a deterministic-pass
#: priority boost; pure-zero columns still participate (they are real
#: channels and the repair step may want them).
_MASS_FLOOR = 1e-4


class _AttemptFailed(Exception):
    """Raised inside a ledger transaction to roll an attempt back."""


def _attempt_order(
    attempt: int,
    relaxation: LPRelaxationResult,
    weights: np.ndarray,
    rng: np.random.Generator,
) -> List[int]:
    """Column visit order for one rounding attempt.

    Attempt 0 is a pure rate-greedy pass (empirically the strongest
    single ordering — it recovers the Algorithm-2 tree whenever the LP
    support contains it), attempt 1 prefers the fractional support and
    orders by rate within it, and later attempts draw a mass-biased
    random order (exponential-key weighted shuffle) from the caller's
    rng stream.
    """
    columns = relaxation.columns
    n = len(columns)
    if attempt == 0:
        return sorted(
            range(n), key=lambda j: (-columns[j].channel.log_rate, j)
        )
    if attempt == 1:
        return sorted(
            range(n),
            key=lambda j: (
                0 if weights[j] > _MASS_FLOOR else 1,
                -columns[j].channel.log_rate,
                j,
            ),
        )
    draws = rng.random(n)
    keys = draws ** (1.0 / weights)
    return sorted(
        range(n),
        key=lambda j: (-keys[j], -columns[j].channel.log_rate, j),
    )


def _kruskal_pass(
    network: QuantumNetwork,
    users: List[Hashable],
    relaxation: LPRelaxationResult,
    order: List[int],
    ledger: CapacityLedger,
) -> Tuple[List[Channel], UnionFind]:
    """One capacity-checked Kruskal sweep over the LP columns."""
    unions = UnionFind(users)
    chosen: List[Channel] = []
    for j in order:
        column = relaxation.columns[j]
        a, b = column.pair
        if unions.connected(a, b):
            continue
        if ledger.try_reserve_channel(column.channel):
            unions.union(a, b)
            chosen.append(column.channel)
        if len(chosen) == len(users) - 1:
            break
    return chosen, unions


def _repair(
    network: QuantumNetwork,
    users: List[Hashable],
    chosen: List[Channel],
    unions: UnionFind,
    ledger: CapacityLedger,
) -> int:
    """Greedy Algorithm-1 completion against the residual ledger.

    Returns the number of repair channels added; raises
    :class:`_AttemptFailed` when the remaining components cannot be
    joined under the residual capacities.
    """
    added = 0
    while unions.n_components > 1:
        best: Optional[Channel] = None
        for source in users:
            targets = [
                u for u in users if not unions.connected(source, u)
            ]
            if not targets:
                continue
            found = best_channels_from(network, source, targets, ledger)
            for channel in found.values():
                if best is None or channel.log_rate > best.log_rate:
                    best = channel
        if best is None:
            raise _AttemptFailed("components cannot be reconnected")
        if not ledger.try_reserve_channel(best):  # pragma: no cover
            raise _AttemptFailed("residual search returned a full switch")
        a, b = best.endpoints
        unions.union(a, b)
        chosen.append(best)
        added += 1
    return added


def solve_lp_rounding(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    rng: RngLike = None,
    *,
    backend: str = "auto",
    attempts: int = DEFAULT_ATTEMPTS,
    relaxation: Optional[LPRelaxationResult] = None,
) -> MUERPSolution:
    """Round the LP relaxation into a verified entanglement tree.

    Args:
        network: The quantum network.
        users: User subset to span (defaults to all network users).
        rng: Seed or generator for the randomized attempts; the stream
            is consumed deterministically, so a fixed seed reproduces
            the solution byte for byte.
        backend: LP backend passed to :func:`solve_relaxation`.
        attempts: Total rounding attempts (first is deterministic).
        relaxation: Reuse an already-solved relaxation (the CLI and
            benchmarks do this to avoid paying for the LP twice).

    Returns:
        The best verified tree found, or the canonical infeasible
        solution when the LP itself is infeasible or every attempt
        fails.
    """
    started = time.perf_counter()
    user_list = sorted(resolve_users(network, users), key=repr)
    generator = ensure_rng(rng)
    metrics = obs_metrics.active()
    if metrics is not None:
        metrics.inc("bounds.rounding.calls")

    if relaxation is None:
        relaxation = solve_relaxation(network, user_list, backend=backend)
    if not relaxation.certificate.feasible or not relaxation.columns:
        if metrics is not None:
            metrics.inc("bounds.rounding.infeasible")
        return infeasible_solution(user_list, "lp_rounding")

    weights = np.maximum(
        np.asarray(relaxation.values, dtype=float), _MASS_FLOOR
    )
    verifier = SolutionVerifier()
    ledger = CapacityLedger.from_network(network)
    best_solution: Optional[MUERPSolution] = None
    attempts = max(1, attempts)
    failures = 0
    repairs = 0

    for attempt in range(attempts):
        order = _attempt_order(attempt, relaxation, weights, generator)
        try:
            with ledger.transaction():
                chosen, unions = _kruskal_pass(
                    network, user_list, relaxation, order, ledger
                )
                if unions.n_components > 1:
                    repairs += _repair(
                        network, user_list, chosen, unions, ledger
                    )
                candidate = MUERPSolution(
                    channels=tuple(chosen),
                    users=frozenset(user_list),
                    method="lp_rounding",
                )
                if verifier.audit(
                    network, candidate, users=user_list,
                    enforce_capacity=True,
                ):
                    raise _AttemptFailed("verifier rejected candidate")
                # Roll the reservations back either way: the solution
                # carries its own usage and callers own the real ledger.
                raise _AttemptFailed("unwind")
        except _AttemptFailed as failure:
            if str(failure) != "unwind":
                failures += 1
                continue
        if (
            best_solution is None
            or candidate.log_rate > best_solution.log_rate
        ):
            best_solution = candidate

    if metrics is not None:
        metrics.inc("bounds.rounding.attempts", attempts)
        metrics.inc("bounds.rounding.retries", failures)
        metrics.inc("bounds.rounding.repair_channels", repairs)
        metrics.observe(
            "bounds.rounding.solve_seconds", time.perf_counter() - started
        )
    if best_solution is None:
        if metrics is not None:
            metrics.inc("bounds.rounding.exhausted")
        return infeasible_solution(user_list, "lp_rounding")
    return best_solution
