"""MUERP LP relaxation — a certified upper bound on the tree rate.

The relaxation is the path-based (column) form of the multi-commodity
flow LP: one variable ``y_π ∈ [0, 1]`` per candidate channel ``π``
(a user–switch–…–user path), with cost ``c_π = −log rate(π)`` from
Eq. (1), minimized subject to exactly the constraints the
:class:`~repro.verify.verifier.SolutionVerifier` re-derives for
integral trees:

* **capacity** — per switch ``r``: ``Σ_π 2·[r transits π]·y_π ≤ Q_r``
  (Def. 3, two qubits per transit channel);
* **pair**     — per unordered user pair ``p``: ``Σ_{π ∈ p} y_π ≤ 1``
  (a tree never uses parallel edges);
* **coverage** — per user ``u``: ``Σ_{π ∋ u} y_π ≥ 1`` (every user has
  degree ≥ 1 in the entanglement tree);
* **tree count** — ``Σ_π y_π = |U| − 1`` (a spanning tree over ``U``).

Every verified integral solution is a 0/1 point of this polytope and
``−Σ c_π y_π`` is then exactly the Eq. (2) log rate, so the LP optimum
is a sound upper bound on any registered solver's achieved rate
(capacity-exempt methods are bounded by the ``capacitated=False``
variant, which drops the capacity rows).

Because the path universe is exponential, the LP is solved by column
generation: a restricted master over the columns found so far, priced
by an exact Dijkstra (the same weight space as Algorithm 1, plus a
per-switch penalty of ``−2·y_cap[r]`` from the capacity duals).  At
*any* round — converged or not — weak duality gives the certificate

    z_full  ≥  y·b + Σ_p min(0, c̄*_p)

for sign-corrected duals ``y`` and exact per-pair minimum reduced
costs ``c̄*_p``, hence ``log bound = −(y·b + Σ_p min(0, c̄*_p))``.
Early-stopped bounds are merely looser, never unsound.

Everything here is deterministic: users, switches and pairs are
iterated in ``repr``-sorted order, the dense simplex uses Bland's
rule, and no randomness is consumed — identical inputs produce
byte-identical certificates.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import Channel, resolve_users
from repro.core.rates import swap_log_rate
from repro.network.graph import QuantumNetwork
import repro.obs.metrics as obs_metrics
from repro.bounds.simplex import LPResult, simplex_solve
from repro.utils.heap import IndexedMinHeap

__all__ = [
    "BoundCertificate",
    "LPRelaxationResult",
    "PathColumn",
    "compute_bound",
    "solve_lp",
    "solve_relaxation",
    "scipy_available",
]

#: Dual / reduced-cost tolerance for declaring column generation done.
PRICING_TOLERANCE = 1e-7

#: Column-generation round ceiling (a loose safety net; the certified
#: bound stays valid when it trips, just slightly looser).
MAX_ROUNDS = 60

#: Backends accepted by :func:`solve_lp` / :func:`solve_relaxation`.
BACKENDS = ("auto", "simplex", "scipy")

#: Cost of the restricted master's artificial columns.  It must
#: dominate the cost of any feasible fractional tree for the
#: infeasibility proof in :meth:`_Master.matrices` to hold; real
#: column costs beyond ~746 already mean rates that underflow to 0.0
#: in float, so 10⁶ dominates every tree whose rate is representable
#: while keeping master reduced costs well-conditioned.
BIG_M = 1.0e6

#: Artificial mass above this (post-solve) counts as "still positive".
_ARTIFICIAL_TOLERANCE = 1e-6


def scipy_available() -> bool:
    """Whether the optional ``scipy`` backend can be imported."""
    try:  # pragma: no cover - trivially environment-dependent
        import scipy.optimize  # noqa: F401
    except ImportError:
        return False
    return True


def _resolve_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown LP backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        return "scipy" if scipy_available() else "simplex"
    if backend == "scipy" and not scipy_available():
        raise ImportError(
            "LP backend 'scipy' requested but scipy is not installed; "
            "install the optional dependency group (pip install "
            "repro[bounds]) or use backend='simplex'"
        )
    return backend


def solve_lp(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    a_eq: Optional[np.ndarray],
    b_eq: Optional[np.ndarray],
    backend: str = "auto",
) -> LPResult:
    """Solve one dense LP with the resolved backend.

    Both backends return the same :class:`~repro.bounds.simplex.LPResult`
    shape, with duals under the ``c − y·A ≥ 0`` convention (scipy's
    HiGHS marginals already follow it).
    """
    resolved = _resolve_backend(backend)
    if resolved == "simplex":
        return simplex_solve(c, a_ub, b_ub, a_eq, b_eq)
    from scipy.optimize import linprog

    result = linprog(
        c,
        A_ub=a_ub if a_ub is not None and len(a_ub) else None,
        b_ub=b_ub if b_ub is not None and len(b_ub) else None,
        A_eq=a_eq if a_eq is not None and len(a_eq) else None,
        b_eq=b_eq if b_eq is not None and len(b_eq) else None,
        bounds=(0, None),
        method="highs",
    )
    m_ub = 0 if a_ub is None else len(a_ub)
    m_eq = 0 if a_eq is None else len(a_eq)
    if result.status == 2:
        return LPResult(
            "infeasible", np.zeros(len(c)), float("nan"),
            np.zeros(m_ub), np.zeros(m_eq), int(result.nit),
        )
    if result.status == 3:  # pragma: no cover - our LPs are bounded
        return LPResult(
            "unbounded", np.zeros(len(c)), float("nan"),
            np.zeros(m_ub), np.zeros(m_eq), int(result.nit),
        )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"scipy linprog failed: {result.message}")
    duals_ub = (
        np.asarray(result.ineqlin.marginals, dtype=float)
        if m_ub
        else np.zeros(0)
    )
    duals_eq = (
        np.asarray(result.eqlin.marginals, dtype=float)
        if m_eq
        else np.zeros(0)
    )
    return LPResult(
        "optimal",
        np.asarray(result.x, dtype=float),
        float(result.fun),
        duals_ub,
        duals_eq,
        int(result.nit),
    )


@dataclass(frozen=True)
class PathColumn:
    """One LP column: a candidate channel for a canonical user pair."""

    pair: Tuple[Hashable, Hashable]
    channel: Channel

    @property
    def cost(self) -> float:
        """LP cost ``−log rate`` (nonnegative since rates are ≤ 1)."""
        return -self.channel.log_rate


@dataclass(frozen=True)
class BoundCertificate:
    """A certified upper bound on the achievable MUERP tree rate.

    Attributes:
        log_bound: Natural-log upper bound on Eq. (2); ``−inf`` when no
            spanning tree exists at all.
        objective: The final restricted-master optimum in log space
            (equals ``log_bound`` when ``dual_feasible``).
        pricing_slack: Log-space looseness added by an early stop
            (0 when converged).
        feasible: Whether the LP is feasible (a fractional tree exists).
        dual_feasible: ``True`` when pricing found no improving column,
            i.e. the bound *is* the LP optimum of the full formulation.
        capacitated: Whether per-switch capacity rows were enforced.
        backend: Resolved LP backend (``"simplex"`` or ``"scipy"``).
        rounds: Column-generation rounds performed.
        pivots: Total LP pivots/iterations across all master solves.
        n_columns: Columns in the final restricted master.
        n_users: Size of the user set the bound certifies.
        solve_seconds: Wall-clock time spent in :func:`solve_relaxation`.
        switch_duals: Capacity shadow prices per switch (log-rate gained
            per extra qubit; empty when ``capacitated`` is ``False``).
    """

    log_bound: float
    objective: float
    pricing_slack: float
    feasible: bool
    dual_feasible: bool
    capacitated: bool
    backend: str
    rounds: int
    pivots: int
    n_columns: int
    n_users: int
    solve_seconds: float
    switch_duals: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def rate_bound(self) -> float:
        """The bound in linear-rate space (0 when infeasible)."""
        if not self.feasible:
            return 0.0
        return math.exp(self.log_bound)


@dataclass(frozen=True)
class LPRelaxationResult:
    """Certificate plus the fractional solution that produced it."""

    certificate: BoundCertificate
    columns: Tuple[PathColumn, ...]
    values: Tuple[float, ...]

    def support(self, cutoff: float = 1e-9) -> List[Tuple[PathColumn, float]]:
        """Columns with mass above *cutoff*, heaviest first."""
        pairs = [
            (column, value)
            for column, value in zip(self.columns, self.values)
            if value > cutoff
        ]
        pairs.sort(key=lambda item: (-item[1], repr(item[0].pair)))
        return pairs


def _pricing_search(
    network: QuantumNetwork,
    source: Hashable,
    penalties: Dict[Hashable, float],
    budgets: Optional[Dict[Hashable, int]],
) -> Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]:
    """Exact pricing: min-cost user→user paths under dual penalties.

    Mirrors :func:`repro.core.channel.dijkstra` (same ``α·L − ln q``
    weight space, users never relay) but charges an extra nonnegative
    ``penalties[r]`` when transiting switch ``r``.  With *budgets*
    given, only switches holding ≥ 2 qubits may relay (the capacitated
    universe); with ``None`` every switch may relay (the uncapacitated
    universe used to bound capacity-exempt methods).
    """
    alpha = network.params.alpha
    minus_ln_q = -swap_log_rate(network.params.swap_prob)

    dist: Dict[Hashable, float] = {source: 0.0}
    prev: Dict[Hashable, Hashable] = {}
    visited: set = set()
    heap = IndexedMinHeap()
    heap.push(source, 0.0)
    while len(heap):
        node, node_dist = heap.pop_min()
        if node in visited:
            continue
        visited.add(node)
        if node != source:
            if not network.is_switch(node):
                continue
            if budgets is not None and budgets.get(node, 0) < 2:
                continue
        transit_cost = (
            0.0
            if node == source
            else minus_ln_q + penalties.get(node, 0.0)
        )
        if math.isinf(transit_cost):
            continue  # q = 0: only the source's own fibers are usable
        for fiber in network.incident_fibers(node):
            neighbor = fiber.other_end(node)
            if neighbor in visited:
                continue
            if (
                network.is_switch(neighbor)
                and budgets is not None
                and budgets.get(neighbor, 0) < 2
            ):
                continue
            candidate = node_dist + transit_cost + alpha * fiber.length
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heap.push(neighbor, candidate)
    return dist, prev


def _trace(prev: Dict[Hashable, Hashable], source, target) -> Tuple:
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return tuple(path)


class _Master:
    """The restricted master LP over the columns found so far."""

    def __init__(
        self,
        users: Sequence[Hashable],
        switches: Sequence[Hashable],
        budgets: Dict[Hashable, int],
        capacitated: bool,
    ) -> None:
        self.users = list(users)
        self.switches = list(switches) if capacitated else []
        self.budgets = budgets
        self.capacitated = capacitated
        self.pairs: List[Tuple[Hashable, Hashable]] = [
            (a, b)
            for i, a in enumerate(self.users)
            for b in self.users[i + 1:]
        ]
        self.pair_row = {pair: i for i, pair in enumerate(self.pairs)}
        self.switch_row = {s: i for i, s in enumerate(self.switches)}
        self.user_row = {u: i for i, u in enumerate(self.users)}
        self.columns: List[PathColumn] = []
        self.seen_paths: set = set()

    def canonical_pair(self, a: Hashable, b: Hashable) -> Tuple:
        return (a, b) if repr(a) <= repr(b) else (b, a)

    def add_column(self, column: PathColumn) -> bool:
        key = (column.pair, column.channel.path)
        reverse = (column.pair, tuple(reversed(column.channel.path)))
        if key in self.seen_paths or reverse in self.seen_paths:
            return False
        self.seen_paths.add(key)
        self.columns.append(column)
        return True

    def matrices(self):
        """Dense (c, A_ub, b_ub, A_eq, b_eq) for the current columns.

        Beyond the real path columns, one big-M artificial column is
        appended per coverage row and one for the tree-count row, so
        the *restricted* master is always feasible — the seed columns
        may jam a bottleneck switch even though other (not yet
        generated) paths would satisfy every row, and an infeasible
        restricted master proves nothing about the full LP.  Pricing
        then drives the artificials out; artificial mass still
        positive at *convergence* soundly proves the full LP
        infeasible (any feasible point would cost < BIG_M, below the
        converged optimum).
        """
        n = len(self.columns)
        n_cap = len(self.switches)
        n_pair = len(self.pairs)
        n_user = len(self.users)
        n_total = n + n_user + 1  # + coverage artificials + tree artificial
        m_ub = n_cap + n_pair + n_user
        c = np.full(n_total, BIG_M)
        c[:n] = [col.cost for col in self.columns]
        a_ub = np.zeros((m_ub, n_total))
        b_ub = np.empty(m_ub)
        for i, switch in enumerate(self.switches):
            b_ub[i] = float(self.budgets.get(switch, 0))
        b_ub[n_cap:n_cap + n_pair] = 1.0
        b_ub[n_cap + n_pair:] = -1.0  # coverage: −Σ y ≤ −1
        for j, col in enumerate(self.columns):
            if self.capacitated:
                for switch in col.channel.switches:
                    a_ub[self.switch_row[switch], j] += 2.0
            a_ub[n_cap + self.pair_row[col.pair], j] = 1.0
            a, b = col.pair
            a_ub[n_cap + n_pair + self.user_row[a], j] = -1.0
            a_ub[n_cap + n_pair + self.user_row[b], j] = -1.0
        for i in range(n_user):  # coverage artificials
            a_ub[n_cap + n_pair + i, n + i] = -1.0
        a_eq = np.zeros((1, n_total))
        a_eq[0, :n] = 1.0
        a_eq[0, n_total - 1] = 1.0  # tree-count artificial (deficit)
        b_eq = np.array([float(len(self.users) - 1)])
        return c, a_ub, b_ub, a_eq, b_eq


def solve_relaxation(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    *,
    backend: str = "auto",
    capacitated: bool = True,
    max_rounds: int = MAX_ROUNDS,
    tolerance: float = PRICING_TOLERANCE,
) -> LPRelaxationResult:
    """Solve the LP relaxation by column generation.

    Returns the :class:`BoundCertificate` together with the final
    fractional solution (columns + values), which
    :func:`repro.bounds.rounding.solve_lp_rounding` rounds into an
    integral tree.
    """
    started = time.perf_counter()
    resolved_backend = _resolve_backend(backend)
    user_list = sorted(resolve_users(network, users), key=repr)
    budgets = network.residual_qubits()
    switches = sorted(budgets, key=repr)
    master = _Master(user_list, switches, budgets, capacitated)
    relay_budgets = budgets if capacitated else None

    total_pivots = 0
    rounds = 0
    dual_feasible = False
    objective_log = -math.inf
    best_bound_log = math.inf
    final_slack = math.inf
    artificial_mass = 0.0
    n_solved = 0
    solution: Optional[LPResult] = None

    zero_penalties: Dict[Hashable, float] = {}
    penalties: Dict[Hashable, float] = zero_penalties
    duals: Optional[LPResult] = None
    dual_value = 0.0

    for rounds in range(1, max_rounds + 1):
        # --- pricing: one single-source search per non-final user ----
        new_columns = 0
        slack = 0.0
        worst = 0.0
        for i, source in enumerate(user_list[:-1]):
            dist, prev = _pricing_search(
                network, source, penalties, relay_budgets
            )
            for target in user_list[i + 1:]:
                if target not in dist:
                    continue
                pair = master.canonical_pair(source, target)
                if duals is None:
                    # Seed round: the best channel per reachable pair
                    # unconditionally (reduced costs need duals).
                    path = _trace(prev, source, target)
                    if master.add_column(
                        PathColumn(pair, Channel.from_path(network, path))
                    ):
                        new_columns += 1
                    continue
                n_cap = len(master.switches)
                n_pair = len(master.pairs)
                y_ub = duals.duals_ub
                const = (
                    -float(duals.duals_eq[0])
                    - y_ub[n_cap + master.pair_row[pair]]
                    + y_ub[n_cap + n_pair + master.user_row[source]]
                    + y_ub[n_cap + n_pair + master.user_row[target]]
                )
                reduced = dist[target] + const
                slack += min(0.0, reduced)
                worst = min(worst, reduced)
                if reduced < -tolerance:
                    path = _trace(prev, source, target)
                    column = PathColumn(
                        pair, Channel.from_path(network, path)
                    )
                    if master.add_column(column):
                        new_columns += 1

        if duals is not None:
            # Certified bound valid at ANY round: z ≥ y·b + Σ min(0, c̄*)
            bound_log = -(dual_value + slack)
            if bound_log < best_bound_log:
                best_bound_log = bound_log
                final_slack = -slack
            if worst >= -tolerance:
                dual_feasible = True
                break
            if new_columns == 0:
                # Numerics: pricing saw a violation but only on paths
                # already in the master.  The slack-certified bound
                # above stays valid; stop rather than loop forever.
                break

        if not master.columns:
            break  # no user pair is connected at all

        # --- restricted master solve -------------------------------
        c, a_ub, b_ub, a_eq, b_eq = master.matrices()
        n_solved = len(master.columns)
        solution = solve_lp(c, a_ub, b_ub, a_eq, b_eq, resolved_backend)
        total_pivots += solution.iterations
        if not solution.optimal:  # pragma: no cover - defensive; the
            break  # artificial columns keep the master feasible
        artificial_mass = float(np.sum(solution.x[n_solved:]))
        # Objective over the real columns only — residual artificial
        # mass up to the tolerance would otherwise leak ~BIG_M·mass.
        objective_log = -float(c[:n_solved] @ solution.x[:n_solved])
        # Sign-correct the inequality duals (valid for any y ≤ 0) and
        # compute y·b explicitly so the certificate never leans on the
        # backend's duals being exactly optimal.
        duals = LPResult(
            status=solution.status,
            x=solution.x,
            objective=solution.objective,
            duals_ub=np.minimum(solution.duals_ub, 0.0),
            duals_eq=solution.duals_eq,
            iterations=solution.iterations,
        )
        dual_value = float(
            duals.duals_ub @ b_ub + duals.duals_eq @ b_eq
        )
        penalties = {
            switch: -2.0 * float(duals.duals_ub[master.switch_row[switch]])
            for switch in master.switches
        }

    solved = solution is not None and solution.optimal
    if not solved:
        feasible = False  # not even a seed column: no pair connected
    elif artificial_mass > _ARTIFICIAL_TOLERANCE:
        # Artificial columns survived the final master solve.  At
        # convergence that *proves* the full LP infeasible — any
        # fractional tree would cost < BIG_M, strictly below the
        # converged big-M optimum.  Mid-run it proves nothing (pricing
        # might still displace them), so stay conservatively feasible
        # with the certified (possibly trivial) bound below.
        feasible = not dual_feasible
    else:
        feasible = True

    if not feasible:
        log_bound = -math.inf
        objective_log = -math.inf
        final_slack = 0.0
        dual_feasible = True  # vacuously: no tree exists, bound exact
    elif dual_feasible:
        # Converged with zero artificial mass: the master optimum is
        # the full-LP optimum.  (Rates never exceed 1, so neither does
        # the bound exceed log 1 = 0.)
        log_bound = min(objective_log, 0.0)
        final_slack = 0.0
    else:
        # Early stop: the weak-duality certificate from the best round,
        # falling back to the trivial rate ≤ 1 bound when no round
        # priced against duals.  (The restricted master optimum is NOT
        # a valid fallback — over a column subset it *under*-estimates
        # the full optimum.)
        log_bound = min(best_bound_log, 0.0)
        final_slack = (
            max(final_slack, 0.0) if math.isfinite(final_slack) else 0.0
        )

    switch_duals: Dict[Hashable, float] = {}
    if feasible and capacitated and duals is not None:
        switch_duals = {
            switch: -float(duals.duals_ub[master.switch_row[switch]])
            for switch in master.switches
            if abs(duals.duals_ub[master.switch_row[switch]]) > 1e-12
        }

    elapsed = time.perf_counter() - started
    certificate = BoundCertificate(
        log_bound=log_bound,
        objective=objective_log,
        pricing_slack=final_slack,
        feasible=feasible,
        dual_feasible=dual_feasible,
        capacitated=capacitated,
        backend=resolved_backend,
        rounds=rounds,
        pivots=total_pivots,
        n_columns=len(master.columns),
        n_users=len(user_list),
        solve_seconds=elapsed,
        switch_duals=switch_duals,
    )
    metrics = obs_metrics.active()
    if metrics is not None:
        metrics.inc("bounds.lp.solves")
        metrics.inc("bounds.lp.rounds", rounds)
        metrics.inc("bounds.lp.pivots", total_pivots)
        metrics.max_gauge("bounds.lp.columns", len(master.columns))
        metrics.observe("bounds.lp.solve_seconds", elapsed)
        if not feasible:
            metrics.inc("bounds.lp.infeasible")
        if feasible and not dual_feasible:
            metrics.inc("bounds.lp.early_stops")

    values = (
        tuple(float(v) for v in solution.x[:n_solved])
        if feasible and solution is not None
        else tuple(0.0 for _ in master.columns)
    )
    # The master can have gained columns after its last solve (the
    # final pricing round adds none when converged, but the numeric
    # early-stop path can).  Pad values to match.
    if len(values) < len(master.columns):
        values = values + tuple(
            0.0 for _ in range(len(master.columns) - len(values))
        )
    return LPRelaxationResult(
        certificate=certificate,
        columns=tuple(master.columns),
        values=values,
    )


def compute_bound(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    *,
    backend: str = "auto",
    capacitated: bool = True,
    max_rounds: int = MAX_ROUNDS,
) -> BoundCertificate:
    """Certified upper bound on the MUERP tree rate (see module docs)."""
    return solve_relaxation(
        network,
        users,
        backend=backend,
        capacitated=capacitated,
        max_rounds=max_rounds,
    ).certificate
