"""Deterministic partitioning of experiment grids into shards.

A *shard* is an independent unit of work: a subset of the item indices
of some grid (experiment trial numbers, Monte-Carlo run indices, fig7b
replica indices).  The plan is a pure function of ``(item indices,
n_shards)`` — never of worker scheduling — and every item carries its
original index, so the merge step can reassemble results in canonical
item order.  That is the whole determinism argument: per-item RNGs are
index-seeded (:func:`repro.utils.rng.spawn_rngs`), shard membership is
index-arithmetic, and aggregation sorts by index, so ``--workers N``
yields byte-identical aggregates for every N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

__all__ = ["Shard", "ShardPlan"]


@dataclass(frozen=True)
class Shard:
    """One independent work unit of a :class:`ShardPlan`.

    Attributes:
        index: Position of this shard within its plan (0-based).
        n_shards: Total shards in the plan.
        items: Original item indices assigned to this shard, ascending.
    """

    index: int
    n_shards: int
    items: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shard({self.index + 1}/{self.n_shards}, "
            f"{len(self.items)} item(s))"
        )


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic round-robin partition of item indices.

    Item ``i`` (in sorted order of the requested indices) lands in shard
    ``i % n_shards``.  Round-robin keeps shards balanced to within one
    item for any grid size, and — unlike contiguous blocking — spreads
    a grid's expensive tail (large topologies usually come last in a
    sweep) across all workers.

    Empty shards are never emitted: the effective shard count is
    ``min(n_shards, n_items)`` (and 1 when there are no items at all,
    represented as an empty plan).
    """

    n_items: int
    shards: Tuple[Shard, ...]

    @classmethod
    def over(
        cls, indices: Sequence[int], n_shards: int
    ) -> "ShardPlan":
        """Partition the given item *indices* into at most *n_shards*.

        Indices are deduplicated and sorted first, so the plan is
        independent of the order the caller discovered them in (e.g.
        checkpoint-resume scans).
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        ordered = sorted(set(int(i) for i in indices))
        if any(i < 0 for i in ordered):
            raise ValueError("item indices must be non-negative")
        effective = min(n_shards, len(ordered))
        buckets: Tuple[list, ...] = tuple([] for _ in range(effective))
        for position, item in enumerate(ordered):
            buckets[position % effective].append(item)
        shards = tuple(
            Shard(index=k, n_shards=effective, items=tuple(bucket))
            for k, bucket in enumerate(buckets)
        )
        return cls(n_items=len(ordered), shards=shards)

    @classmethod
    def build(cls, n_items: int, n_shards: int) -> "ShardPlan":
        """Partition the full range ``0 .. n_items-1``."""
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        return cls.over(range(n_items), n_shards)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def describe(self) -> str:
        """One-line human summary (CLI / log output)."""
        sizes = ", ".join(str(len(s)) for s in self.shards) or "-"
        return (
            f"{self.n_items} item(s) across {self.n_shards} shard(s) "
            f"[{sizes}]"
        )
