"""Sharded Monte-Carlo slots-to-success measurement.

The serial :meth:`~repro.sim.engine.SlottedEntanglementSimulator.
slots_to_success_summary` threads one RNG stream through all runs, which
is inherently order-dependent.  The parallel measurement defined here
derives each run's generator independently with
:func:`~repro.utils.rng.spawn_rngs` (index-seeded), so run *i* flips the
same coins no matter which worker executes it or in which order — the
merged :class:`~repro.sim.engine.SlotsToSuccessSummary` is identical for
every worker count, including ``workers=1``.

Only *plain* simulations parallelize: a
:class:`~repro.resilience.faults.FaultInjector` or
:class:`~repro.resilience.retry.RetryPolicy` carries mutable state
across runs (fault timelines, budgets), which breaks run independence —
those simulations must stay on the serial method.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exec.shard import Shard, ShardPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import MUERPSolution
    from repro.exec.engine import ExecutionEngine
    from repro.network.graph import QuantumNetwork
    from repro.sim.engine import SlotsToSuccessSummary

__all__ = ["parallel_slots_to_success"]


def _run_mc_shard(
    shard: Shard,
    network: "QuantumNetwork",
    solution: "MUERPSolution",
    seed: int,
    runs: int,
    max_slots: int,
    progress: Optional[Callable[[int], None]] = None,
) -> "ShardResult":
    """Execute the protocol runs of *shard*; one index-seeded RNG each.

    *progress* is the supervisor-injected heartbeat callback (see
    :mod:`repro.exec.supervisor`).
    """
    from repro.exec.engine import ShardResult, _cache_stats_snapshot
    from repro.sim.engine import SlottedEntanglementSimulator
    from repro.utils.rng import spawn_rngs

    before = _cache_stats_snapshot()
    rngs = spawn_rngs(seed, runs)
    results: Dict[int, Tuple[bool, int]] = {}
    for done, run in enumerate(shard.items, start=1):
        simulator = SlottedEntanglementSimulator(
            network, solution, rng=rngs[run]
        )
        outcome = simulator.run(max_slots)
        results[run] = (outcome.succeeded, outcome.slots_used)
        if progress is not None:
            progress(done)
    return ShardResult(
        shard_index=shard.index,
        results=results,
        cache_stats=_cache_stats_snapshot().delta(before),
    )


if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.engine import ShardResult


def parallel_slots_to_success(
    network: "QuantumNetwork",
    solution: "MUERPSolution",
    runs: int = 100,
    seed: int = 0,
    max_slots: int = 1_000_000,
    workers: int = 1,
    engine: Optional["ExecutionEngine"] = None,
) -> "SlotsToSuccessSummary":
    """Measure slots-to-success over *runs* sharded protocol executions.

    Args:
        network: The network the plan was computed for.
        solution: The feasible routed tree to execute.
        runs: Independent protocol runs (each with an index-seeded RNG).
        seed: Root seed for :func:`~repro.utils.rng.spawn_rngs`.
        max_slots: Per-run slot cap; capped runs count as failures.
        workers: Shard the runs over this many processes (ignored when
            *engine* is given).
        engine: Reuse an existing :class:`~repro.exec.engine.
            ExecutionEngine` (and its warm pool) instead of making one.

    Returns:
        The merged summary, assembled in run-index order — identical
        for every worker count.
    """
    from repro.exec.engine import ExecutionEngine
    from repro.sim.engine import SlotsToSuccessSummary

    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    owned = engine is None
    if engine is None:
        engine = ExecutionEngine(workers=workers)
    try:
        plan = ShardPlan.build(runs, engine.workers)
        shard_args = [
            (shard, network, solution, seed, runs, max_slots)
            for shard in plan
        ]
        shard_results = engine.run_shards(_run_mc_shard, shard_args)
    finally:
        if owned:
            engine.close()

    by_run: Dict[int, Tuple[bool, int]] = {}
    for shard_result in shard_results:
        by_run.update(shard_result.results)
    successes = 0
    failures = 0
    totals: List[int] = []
    for run in range(runs):
        succeeded, slots_used = by_run[run]
        if succeeded:
            successes += 1
            totals.append(slots_used)
        else:
            failures += 1
    mean = float(np.mean(totals)) if totals else math.nan
    return SlotsToSuccessSummary(
        runs=runs,
        successes=successes,
        failures=failures,
        mean_successful_slots=mean,
    )
