"""Deterministic memoization of Algorithm-1 channel searches.

Every solver, baseline, and serving loop in the repo funnels through
:func:`repro.core.channel.dijkstra`.  Across one experiment sweep the
same search is recomputed thousands of times: the five plotted methods
all open with identical full-capacity searches on the same network, a
qubit-budget sweep (fig8a) regenerates the *same* fiber plant per trial
index, and the online scheduler re-plans over a slowly-changing residual
state.  :class:`ChannelCache` memoizes the ``(dist, prev)`` result of
each search under an **exact** key, so a cache hit is provably
byte-identical to a recomputation:

* **graph fingerprint** — :meth:`QuantumNetwork.fingerprint` with
  ``scope="routing"``: a content hash over everything the search weights
  read (node ids/kinds, fiber keys/lengths, ``alpha``, ``swap_prob``).
  Mutating the topology changes the fingerprint, so stale entries can
  never be hit.
* **blocked-switch signature** — the search reads residual capacities
  only through the predicate "has the switch at least 2 free qubits?"
  (Algorithm 1, line 11).  The key therefore carries the *set of blocked
  switches*, not the raw counts: two residual states that agree on the
  predicate share cache entries, which is exactly when their search
  results coincide.
* **search shape** — source vertex, forbidden-fiber set (Yen-style spur
  searches, the edge-removal study) and the ``allow_switch_source``
  flag.

Entries are LRU-bounded.  Invalidation is wired into the places residual
state and topology actually change: :class:`~repro.core.ledger.
CapacityLedger` notifies the active cache when a reserve/release crosses
the 2-qubit relay threshold, :class:`~repro.network.graph.QuantumNetwork`
notifies on structural mutation, and
:class:`~repro.resilience.faults.FaultInjector` notifies when structural
faults fire or repair.  (Correctness never depends on these hooks — the
exact key already guarantees it — they bound staleness so dead entries
do not crowd live ones out of the LRU window.)

Activation mirrors the metrics registry: hot paths consult the
module-level *active cache* (one ``None`` check when disabled)::

    from repro.exec import cache as exec_cache

    with exec_cache.caching() as cache:
        run_experiment(config)
    print(cache.stats())

Metrics (``repro.exec.cache.hits`` / ``.misses`` / ``.evictions`` /
``.invalidations``) are published to the active
:class:`~repro.obs.metrics.MetricsRegistry`; see docs/PARALLELISM.md for
the catalog.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import repro.obs.metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import QuantumNetwork

__all__ = [
    "CacheStats",
    "ChannelCache",
    "INVALIDATION_CAUSES",
    "active",
    "enable",
    "disable",
    "caching",
]

#: Minimum free qubits a switch needs to relay a channel (Def. 3);
#: mirrors ``repro.core.ledger.QUBITS_PER_CHANNEL`` (not imported to
#: keep this module dependency-free for the lazy hooks that call it).
_RELAY_QUBITS = 2

#: A fully-resolved cache key: (routing fingerprint, source, blocked
#: switches, forbidden fiber keys, allow_switch_source).
CacheKey = Tuple[
    str,
    Hashable,
    FrozenSet[Hashable],
    FrozenSet[Tuple[Hashable, Hashable]],
    bool,
]

#: A cached search result: the (dist, prev) maps of one Dijkstra run.
CacheValue = Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]


#: The invalidation causes broken out in :class:`CacheStats`.
INVALIDATION_CAUSES = (
    "graph_fingerprint",
    "switch_region",
    "capacity_crossing",
    "manual",
)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`ChannelCache`.

    ``hit_rate`` is hits over lookups (0.0 before the first lookup).
    ``invalidations_by_cause`` breaks the invalidation total out by why
    entries were dropped (see :data:`INVALIDATION_CAUSES`), so the
    region-scoping win of the incremental layer stays measurable.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0
    max_entries: int = 0
    invalidations_by_cause: Dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def cause(self, name: str) -> int:
        """Invalidations attributed to *name* (0 when never seen)."""
        return self.invalidations_by_cause.get(name, 0)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated between *since* and this snapshot."""
        causes = {
            cause: count - since.invalidations_by_cause.get(cause, 0)
            for cause, count in self.invalidations_by_cause.items()
            if count - since.invalidations_by_cause.get(cause, 0)
        }
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            evictions=self.evictions - since.evictions,
            invalidations=self.invalidations - since.invalidations,
            entries=self.entries,
            max_entries=self.max_entries,
            invalidations_by_cause=causes,
        )

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum (aggregating per-worker cache stats)."""
        causes = dict(self.invalidations_by_cause)
        for cause, count in other.invalidations_by_cause.items():
            causes[cause] = causes.get(cause, 0) + count
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
            entries=max(self.entries, other.entries),
            max_entries=max(self.max_entries, other.max_entries),
            invalidations_by_cause=causes,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
            "invalidations_by_cause": {
                cause: self.invalidations_by_cause[cause]
                for cause in sorted(self.invalidations_by_cause)
            },
        }


class ChannelCache:
    """LRU-bounded, exact-key memo of Algorithm-1 search results.

    Thread-safe (the solver watchdog runs solvers on worker threads).
    Values are stored and returned as copies, so neither the caller nor
    the cache can corrupt the other through shared dicts.

    Args:
        max_entries: LRU bound on resident entries (>= 1).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, CacheValue]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._invalidations_by_cause: Dict[str, int] = {}
        #: Optional :class:`~repro.incremental.warmstart.WarmStartIndex`
        #: consulted (via :meth:`warm_lookup`) after an exact-key miss
        #: and fed by :meth:`put`.  ``None`` disables warm starts.
        self.warmstart = None

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(
        network: "QuantumNetwork",
        qubits: Mapping[Hashable, int],
        source: Hashable,
        forbidden_fibers: Optional[Set[Tuple[Hashable, Hashable]]] = None,
        allow_switch_source: bool = False,
    ) -> CacheKey:
        """The exact cache key of one search.

        *qubits* is the effective residual map the search will consult
        (a plain dict or a :class:`~repro.core.ledger.CapacityLedger`).
        """
        blocked = frozenset(
            switch
            for switch in network.switch_ids
            if qubits.get(switch, 0) < _RELAY_QUBITS
        )
        forbidden = (
            frozenset(forbidden_fibers) if forbidden_fibers else frozenset()
        )
        return (
            network.fingerprint(scope="routing"),
            source,
            blocked,
            forbidden,
            allow_switch_source,
        )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[CacheValue]:
        """The cached ``(dist, prev)`` for *key*, or ``None`` on a miss.

        Returns fresh dict copies; hits refresh LRU recency.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                hit = True
                dist, prev = value
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc(
                "repro.exec.cache.hits" if hit else "repro.exec.cache.misses"
            )
        if not hit:
            return None
        return dict(dist), dict(prev)

    def put(self, key: CacheKey, value: CacheValue) -> None:
        """Store ``(dist, prev)`` under *key*, evicting LRU overflow.

        Also records the result in the attached warm-start index (if
        any), so later searches in the same family can reuse it across
        blocked-set drift.
        """
        dist, prev = value
        evicted = 0
        with self._lock:
            self._entries[key] = (dict(dist), dict(prev))
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        warmstart = self.warmstart
        if warmstart is not None:
            warmstart.record(key, value)
        if evicted:
            metrics = obs_metrics.active()
            if metrics is not None:
                metrics.inc("repro.exec.cache.evictions", evicted)

    def warm_lookup(
        self, key: CacheKey, network: "QuantumNetwork"
    ) -> Optional[CacheValue]:
        """Provably-identical result from the warm-start index, or None.

        Consulted by the channel search after an exact-key miss; a warm
        hit is re-stored under *key* so the exact cache serves repeats.
        """
        warmstart = self.warmstart
        if warmstart is None:
            return None
        value = warmstart.lookup(key, network)
        if value is None:
            return None
        self.put(key, value)
        return value

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _drop(self, keys, cause: str) -> int:
        """Remove *keys* (already materialized) and count invalidations."""
        for key in keys:
            del self._entries[key]
        self._invalidations += len(keys)
        if keys:
            self._invalidations_by_cause[cause] = (
                self._invalidations_by_cause.get(cause, 0) + len(keys)
            )
        return len(keys)

    def _publish_invalidations(self, count: int, cause: str) -> None:
        if count:
            metrics = obs_metrics.active()
            if metrics is not None:
                metrics.inc("repro.exec.cache.invalidations", count)
                metrics.inc(
                    f"repro.exec.cache.invalidations.{cause}", count
                )

    def invalidate_graph(
        self, fingerprint: str, cause: str = "graph_fingerprint"
    ) -> int:
        """Drop every entry computed over *fingerprint* (routing scope).

        Called when a topology mutates or a structural fault fires: the
        mutated graph hashes differently, so these entries can only be
        hit again if the exact previous topology is restored — usually
        never.  Returns the number of entries dropped.
        """
        with self._lock:
            doomed = [k for k in self._entries if k[0] == fingerprint]
            dropped = self._drop(doomed, cause)
        self._publish_invalidations(dropped, cause)
        return dropped

    def invalidate_region(
        self,
        nodes: Iterable[Hashable],
        fingerprint: Optional[str] = None,
    ) -> int:
        """Drop entries plausibly stranded by a change inside *nodes*.

        The incremental delta layer calls this instead of
        :meth:`invalidate_graph` on single-element structural events:
        only entries whose source lies in the region or whose
        blocked-set intersects it are dropped.  *fingerprint* (when
        given) further restricts the sweep to entries computed over that
        routing fingerprint.  Correctness never depends on the choice —
        exact keys already guarantee stale entries cannot be hit — this
        only trades LRU hygiene for retained useful entries.  Returns
        the number of entries dropped.
        """
        region = frozenset(nodes)
        with self._lock:
            doomed = [
                k
                for k in self._entries
                if (fingerprint is None or k[0] == fingerprint)
                and (k[1] in region or not region.isdisjoint(k[2]))
            ]
            dropped = self._drop(doomed, "switch_region")
        self._publish_invalidations(dropped, "switch_region")
        return dropped

    def invalidate_switch(
        self,
        switch: Hashable,
        now_blocked: Optional[bool] = None,
        cause: str = "capacity_crossing",
    ) -> int:
        """Drop entries stranded by a relay-capability flip at *switch*.

        A :class:`~repro.core.ledger.CapacityLedger` reserve/release that
        crosses the 2-qubit threshold makes entries keyed under the
        *previous* polarity unreachable until the switch flips back.
        With ``now_blocked`` given, only entries disagreeing with the
        new state are dropped; without it, every entry whose blocked-set
        polarity could involve *switch* is dropped (conservative).
        Returns the number of entries dropped.
        """
        with self._lock:
            if now_blocked is None:
                doomed = [k for k in self._entries if switch in k[2]]
            else:
                doomed = [
                    k
                    for k in self._entries
                    if (switch in k[2]) != now_blocked
                ]
            dropped = self._drop(doomed, cause)
        self._publish_invalidations(dropped, cause)
        return dropped

    def invalidate_all(self, cause: str = "manual") -> int:
        """Drop everything (e.g. on an unattributable mutation)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._invalidations += count
            if count:
                self._invalidations_by_cause[cause] = (
                    self._invalidations_by_cause.get(cause, 0) + count
                )
        self._publish_invalidations(count, cause)
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """Snapshot of the cache's counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                entries=len(self._entries),
                max_entries=self.max_entries,
                invalidations_by_cause=dict(self._invalidations_by_cause),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"ChannelCache(entries={s.entries}/{s.max_entries}, "
            f"hits={s.hits}, misses={s.misses}, "
            f"hit_rate={s.hit_rate:.1%})"
        )


# ----------------------------------------------------------------------
# Active-cache plumbing (module-level so the disabled check on the
# search hot path is one global load + None comparison).
# ----------------------------------------------------------------------
_active_cache: Optional[ChannelCache] = None
_state_lock = threading.Lock()


def active() -> Optional[ChannelCache]:
    """The cache consulted by channel searches, or ``None`` if disabled."""
    return _active_cache


def enable(cache: Optional[ChannelCache] = None) -> ChannelCache:
    """Route channel searches through *cache* (a new one if omitted)."""
    global _active_cache
    with _state_lock:
        _active_cache = cache if cache is not None else ChannelCache()
        return _active_cache


def disable() -> Optional[ChannelCache]:
    """Stop caching; returns the cache that was active (if any)."""
    global _active_cache
    with _state_lock:
        cache, _active_cache = _active_cache, None
        return cache


@contextmanager
def caching(
    cache: Optional[ChannelCache] = None,
) -> Iterator[ChannelCache]:
    """Scope channel-search caching; restores the prior state on exit.

    Nested scopes compose: the innermost cache wins while its block is
    open and the outer one resumes afterwards.
    """
    global _active_cache
    with _state_lock:
        previous = _active_cache
        current = cache if cache is not None else ChannelCache()
        _active_cache = current
    try:
        yield current
    finally:
        with _state_lock:
            _active_cache = previous
