"""Deterministic chaos injection for the execution engine.

PR 1 built fault injection for the *quantum network* (fiber cuts, node
failures); this module injects faults into the *compute substrate*
running it, so the :class:`~repro.exec.supervisor.ShardSupervisor`'s
recovery paths are exercised on demand rather than waiting for a real
OOM kill.  Three actions, matching the three real-world failure modes
the supervisor recovers from:

* ``kill`` — the worker process exits with a nonzero status at shard
  entry (models a crash / OOM kill; the pool breaks, the shard and any
  collateral peers are retried on a rebuilt pool);
* ``hang`` — the worker stalls without heartbeating (models a wedged
  process; the hang watchdog recycles the pool);
* ``truncate`` — the shard's private checkpoint file is torn after a
  successful run (models a torn write / disk fault; the merge-side
  self-healing quarantines the file and re-records from memory).

Two injectors share the ``draw(shard_key, attempt, has_checkpoint)``
protocol the supervisor consults on every pool submission:

* :class:`ChaosSchedule` targets exact ``(shard, attempt)`` pairs —
  the surgical form used by unit and property tests;
* :class:`ChaosInjector` spreads a fault *budget* across a soak run —
  the form behind ``repro exec --chaos``.

Recoverability by construction: :class:`ChaosInjector` only ever
injects into a shard's **first** attempt, so with the default
supervision policy (three pool attempts, then serial quarantine) every
injected fault is survivable and the sweep's merged results stay
byte-identical to a fault-free run.  Which submission receives which
fault depends on scheduling, but the *results* never do — retries
re-run the same pure shard function on the same arguments.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.utils.rng import ensure_rng

logger = logging.getLogger("repro.exec.chaos")

__all__ = ["CHAOS_ACTIONS", "ChaosInjector", "ChaosSchedule"]

#: Supported injection actions.
CHAOS_ACTIONS = ("kill", "hang", "truncate")


def _check_action(action: str) -> str:
    if action not in CHAOS_ACTIONS:
        raise ValueError(
            f"unknown chaos action {action!r}; expected one of {CHAOS_ACTIONS}"
        )
    return action


class ChaosSchedule:
    """Inject exact faults at exact ``(shard_key, attempt)`` pairs.

    Args:
        actions: ``(shard_key, attempt) → action`` map; attempts are
            1-based, actions one of :data:`CHAOS_ACTIONS`.
        hang_sleep_s: How long an injected hang stalls the worker.
            Must exceed the supervision policy's ``hang_timeout_s`` for
            the watchdog to fire before the sleep ends.
        truncate_fraction: Fraction of the checkpoint file kept by an
            injected truncation.
    """

    def __init__(
        self,
        actions: Dict[Tuple[int, int], str],
        hang_sleep_s: float = 30.0,
        truncate_fraction: float = 0.5,
    ) -> None:
        self.actions = {
            key: _check_action(action) for key, action in actions.items()
        }
        self.hang_sleep_s = hang_sleep_s
        self.truncate_fraction = truncate_fraction

    def draw(
        self, shard_key: int, attempt: int, has_checkpoint: bool
    ) -> Optional[str]:
        action = self.actions.get((shard_key, attempt))
        if action == "truncate" and not has_checkpoint:
            return None
        return action


class ChaosInjector:
    """Spread a budget of faults across a soak run, deterministically.

    The budget (``kills + hangs + truncations`` actions, shuffled by a
    seeded generator) is drained across first-attempt submissions, one
    action every *spacing* submissions, so faults land spread through
    the sweep rather than clustered at its start.  Retried attempts are
    never injected — every fault is recoverable by construction.

    Args:
        kills: Worker-kill budget.
        hangs: Worker-hang budget.
        truncations: Checkpoint-truncation budget.
        seed: Shuffle seed for the action order.
        spacing: Inject into every *spacing*-th first-attempt
            submission (1 = every submission until the budget drains).
        hang_sleep_s: See :class:`ChaosSchedule`.
        truncate_fraction: See :class:`ChaosSchedule`.
    """

    def __init__(
        self,
        kills: int = 0,
        hangs: int = 0,
        truncations: int = 0,
        seed: int = 0,
        spacing: int = 2,
        hang_sleep_s: float = 30.0,
        truncate_fraction: float = 0.5,
    ) -> None:
        if min(kills, hangs, truncations) < 0:
            raise ValueError("chaos budgets must be >= 0")
        if spacing < 1:
            raise ValueError(f"spacing must be >= 1, got {spacing}")
        plan = (
            ["kill"] * kills + ["hang"] * hangs + ["truncate"] * truncations
        )
        rng = ensure_rng(seed)
        order = rng.permutation(len(plan))
        self._queue: Deque[str] = deque(plan[i] for i in order)
        self.spacing = spacing
        self.hang_sleep_s = hang_sleep_s
        self.truncate_fraction = truncate_fraction
        self.injected: Dict[str, int] = {a: 0 for a in CHAOS_ACTIONS}
        self._seen = 0

    @property
    def remaining(self) -> int:
        """Actions still waiting to be injected."""
        return len(self._queue)

    @property
    def exhausted(self) -> bool:
        return not self._queue

    def draw(
        self, shard_key: int, attempt: int, has_checkpoint: bool
    ) -> Optional[str]:
        if attempt != 1 or not self._queue:
            return None
        self._seen += 1
        if (self._seen - 1) % self.spacing != 0:
            return None
        # Truncation needs a checkpoint file to tear; if this shard has
        # none, look deeper into the queue for an applicable action.
        for offset in range(len(self._queue)):
            action = self._queue[offset]
            if action == "truncate" and not has_checkpoint:
                continue
            del self._queue[offset]
            self.injected[action] += 1
            logger.info(
                "chaos: %s → shard %d attempt %d (%d action(s) left)",
                action,
                shard_key,
                attempt,
                len(self._queue),
            )
            return action
        return None

    def summary(self) -> str:
        spent = ", ".join(
            f"{count} {action}(s)"
            for action, count in self.injected.items()
            if count
        )
        return (
            f"chaos: injected {spent or 'nothing'}; "
            f"{len(self._queue)} action(s) unspent"
        )
