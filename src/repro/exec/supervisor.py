"""Shard supervision: crash/hang recovery, bounded retry, quarantine.

The process-pool backend of :class:`~repro.exec.engine.ExecutionEngine`
used to assume every worker stays alive and returns — one crashed or
wedged process aborted an entire fig5–fig8 sweep.  The
:class:`ShardSupervisor` applies the :mod:`repro.resilience` discipline
to the *compute substrate* itself:

* **Heartbeats.**  Every supervised shard writes a per-attempt heartbeat
  file on entry and after each completed item.  The parent polls the
  files; a heartbeat older than
  :attr:`SupervisionPolicy.hang_timeout_s` marks the shard *hung*, the
  pool's worker processes are terminated, and the shard is retried on a
  fresh pool.  Healthy shards that died alongside a hung peer are
  recorded as ``collateral`` and retried immediately without charging
  their retry budget.
* **Crash detection.**  A worker dying (``os._exit``, segfault, OOM
  kill) breaks the ``ProcessPoolExecutor``; every in-flight future then
  raises ``BrokenProcessPool``.  The supervisor records a ``crash``
  failure for each affected shard, discards the broken pool, and
  retries on a rebuilt one.
* **Bounded retry with backoff.**  Each shard owns a
  :class:`~repro.resilience.retry.RetryPolicy` (by default an
  :class:`~repro.resilience.retry.ExponentialBackoffPolicy`); delays
  are measured in slots of :attr:`SupervisionPolicy.backoff_unit_s`.
* **Poison-shard quarantine + graceful degradation.**  A shard that
  exhausts its retry budget is *quarantined*: it never touches the pool
  again and instead degrades to in-process serial execution — the same
  pure ``shard_fn`` on the same index-keyed arguments, so a successful
  degraded run is byte-identical to a healthy pool run.  Only when even
  the serial fallback raises does the sweep fail, with a typed
  :class:`ShardExecutionError` carrying the shard's full disposition.

Every recovery step is attributed in a :class:`ShardDisposition`
(collected engine-wide in a :class:`DispositionReport`) and published to
the active metrics registry under ``repro.exec.supervisor.*``.

Determinism: retries and serial degradation re-run the *same*
deterministic shard function on the same index-derived arguments, so a
sweep that survives any number of kills, hangs, and truncations merges
to byte-identical results (`tests/exec/test_supervisor_properties.py`
proves this over random fault schedules).
"""

from __future__ import annotations

import inspect
import json
import logging
import os
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import repro.obs.metrics as obs_metrics
from repro.exec import cache as exec_cache
from repro.exec.shard import Shard
from repro.resilience.retry import ExponentialBackoffPolicy, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.engine import ExecutionEngine, ShardResult

logger = logging.getLogger("repro.exec.supervisor")

__all__ = [
    "CRASH",
    "HANG",
    "ERROR",
    "COLLATERAL",
    "TRUNCATION",
    "DispositionReport",
    "ShardDisposition",
    "ShardExecutionError",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisionPolicy",
]

#: Failure kinds recorded in :class:`ShardFailure`.
CRASH = "crash"  #: worker process died (BrokenProcessPool / nonzero exit)
HANG = "hang"  #: heartbeat went stale past the hang watchdog
ERROR = "error"  #: the shard function raised an exception
COLLATERAL = "collateral"  #: healthy shard lost when its pool was recycled
TRUNCATION = "truncation"  #: shard checkpoint was torn/corrupt; re-executed

#: Terminal shard outcomes.
PENDING = "pending"
COMPLETED = "completed"  #: first pool attempt succeeded
RECOVERED = "recovered"  #: a pool retry (or checkpoint heal) succeeded
DEGRADED = "degraded"  #: quarantined, then completed via serial fallback
FAILED = "failed"  #: even the serial fallback raised

#: Exit status used by chaos worker kills (any nonzero code works; a
#: recognizable one helps post-mortems).
_CHAOS_EXIT_CODE = 43


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the shard supervisor.

    Attributes:
        max_attempts: Pool attempts per shard before quarantine (the
            retry policy's attempt cap).
        backoff_unit_s: Seconds per backoff *slot* — the
            :class:`~repro.resilience.retry.RetryPolicy` family counts
            delays in integer slots, and the supervisor converts them
            to wall-clock with this unit.
        backoff_factor: Geometric growth factor between retries.
        backoff_cap_slots: Hard per-retry delay cap, in slots.
        hang_timeout_s: Seconds without shard progress (no heartbeat
            update) before the pool is recycled and the shard retried.
            ``None`` disables the hang watchdog.  This is a *progress*
            timeout: heartbeats tick per completed grid item, so it
            must comfortably exceed the slowest single item.
        poll_interval_s: Parent-side future/heartbeat polling cadence.
        quarantine_serial: Degrade quarantined shards to in-process
            serial execution (``True``, the default) instead of failing
            the run immediately.
    """

    max_attempts: int = 3
    backoff_unit_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap_slots: int = 8
    hang_timeout_s: Optional[float] = 120.0
    poll_interval_s: float = 0.05
    quarantine_serial: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_unit_s < 0:
            raise ValueError("backoff_unit_s must be >= 0")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be > 0 (or None)")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be > 0")

    def retry_policy(self) -> RetryPolicy:
        """A fresh per-shard retry policy from the resilience family."""
        return ExponentialBackoffPolicy(
            base_delay=1,
            factor=self.backoff_factor,
            max_delay=self.backoff_cap_slots,
            max_attempts=self.max_attempts,
        )


@dataclass(frozen=True)
class ShardFailure:
    """One attributed failure of one shard attempt."""

    kind: str
    attempt: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "attempt": self.attempt, "detail": self.detail}

    def __str__(self) -> str:
        return f"attempt {self.attempt}: {self.kind} ({self.detail})"


@dataclass
class ShardDisposition:
    """Everything that happened to one shard of one engine run.

    A healthy shard reads ``attempts=1, outcome='completed'``; every
    recovery path (pool retry, quarantine + serial degrade, checkpoint
    heal) leaves an attributable trail in :attr:`failures`.
    """

    run: int
    index: int
    items: int = 0
    attempts: int = 0
    failures: List[ShardFailure] = field(default_factory=list)
    outcome: str = PENDING
    backend: Optional[str] = None
    quarantined: bool = False
    recovery_seconds: float = 0.0
    healed_trials: int = 0

    @property
    def clean(self) -> bool:
        return not self.failures and not self.quarantined

    def to_dict(self) -> Dict[str, object]:
        return {
            "run": self.run,
            "shard": self.index,
            "items": self.items,
            "attempts": self.attempts,
            "outcome": self.outcome,
            "backend": self.backend,
            "quarantined": self.quarantined,
            "recovery_seconds": self.recovery_seconds,
            "healed_trials": self.healed_trials,
            "failures": [f.to_dict() for f in self.failures],
        }

    def describe(self) -> str:
        trail = "; ".join(str(f) for f in self.failures) or "no failures"
        extra = ""
        if self.quarantined:
            extra += ", quarantined"
        if self.healed_trials:
            extra += f", {self.healed_trials} trial(s) healed"
        return (
            f"run {self.run} shard {self.index}: {self.outcome} "
            f"via {self.backend or '-'} after {self.attempts} attempt(s)"
            f"{extra} [{trail}]"
        )


class DispositionReport:
    """Engine-lifetime ledger of per-shard dispositions.

    Keyed by ``(run sequence, shard index)`` so a sweep — many
    ``run_shards`` calls on one engine — keeps every point's story.
    """

    def __init__(self) -> None:
        self.dispositions: Dict[Tuple[int, int], ShardDisposition] = {}

    def ensure(self, run: int, index: int, items: int = 0) -> ShardDisposition:
        key = (run, index)
        disposition = self.dispositions.get(key)
        if disposition is None:
            disposition = ShardDisposition(run=run, index=index, items=items)
            self.dispositions[key] = disposition
        elif items and not disposition.items:
            disposition.items = items
        return disposition

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.dispositions)

    @property
    def clean(self) -> bool:
        return all(d.clean for d in self.dispositions.values())

    @property
    def troubled(self) -> List[ShardDisposition]:
        """Dispositions that needed any recovery, in (run, shard) order."""
        return [
            self.dispositions[key]
            for key in sorted(self.dispositions)
            if not self.dispositions[key].clean
        ]

    def failure_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for disposition in self.dispositions.values():
            for failure in disposition.failures:
                counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "shards": [
                self.dispositions[key].to_dict()
                for key in sorted(self.dispositions)
            ],
            "failure_counts": self.failure_counts(),
            "n_quarantined": sum(
                1 for d in self.dispositions.values() if d.quarantined
            ),
            "n_recovered": sum(
                1
                for d in self.dispositions.values()
                if d.outcome in (RECOVERED, DEGRADED)
            ),
            "clean": self.clean,
        }

    def render(self, only_troubled: bool = True) -> str:
        """Human summary: one header line plus one line per shard."""
        counts = self.failure_counts()
        trail = (
            ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            or "no failures"
        )
        lines = [
            f"shard dispositions: {len(self.dispositions)} shard(s), {trail}"
        ]
        rows = self.troubled if only_troubled else [
            self.dispositions[key] for key in sorted(self.dispositions)
        ]
        lines.extend(f"  {d.describe()}" for d in rows)
        return "\n".join(lines)


class ShardExecutionError(RuntimeError):
    """A shard failed even after quarantine's serial fallback.

    Carries the shard's :class:`ShardDisposition` so callers (and the
    CLI) can attribute exactly what was tried before giving up.
    """

    def __init__(self, disposition: ShardDisposition) -> None:
        super().__init__(
            f"shard {disposition.index} failed permanently after "
            f"{disposition.attempts} attempt(s): {disposition.describe()}"
        )
        self.disposition = disposition


# ----------------------------------------------------------------------
# Worker-side plumbing (everything submitted must be picklable).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _TaskContext:
    """Per-submission context shipped to the worker process."""

    shard_key: int
    attempt: int
    heartbeat_path: Optional[str]
    pass_progress: bool
    chaos_action: Optional[str] = None
    hang_sleep_s: float = 0.0
    checkpoint_path: Optional[str] = None
    truncate_fraction: float = 0.5


def _write_heartbeat(path: str, items_done: int) -> None:
    """Worker-side progress tick: rewrite the heartbeat file.

    The parent only reads the file's mtime; the JSON body is for humans
    debugging a stuck run.  Heartbeat I/O must never fail a shard.
    """
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"pid": os.getpid(), "items_done": items_done, "ts": time.time()},
                handle,
            )
    except OSError:  # pragma: no cover - heartbeat loss is tolerable
        pass


def _truncate_file(path: str, fraction: float) -> None:
    """Chaos helper: tear the tail off a checkpoint file."""
    try:
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(max(0, int(size * fraction)))
    except OSError:  # pragma: no cover - file vanished; nothing to tear
        pass


def _execute_supervised(
    ctx: _TaskContext,
    shard_fn: Callable[..., "ShardResult"],
    shard_args: Tuple,
) -> "ShardResult":
    """Pool-side wrapper: heartbeat + deterministic chaos injection.

    Chaos actions model the three real-world failure modes this module
    recovers from: ``kill`` exits the worker process with a nonzero
    status *before* any work (so retries lose nothing), ``hang`` stalls
    without heartbeating until the watchdog recycles the pool, and
    ``truncate`` tears the shard's checkpoint file *after* a successful
    run (exercising the merge-side self-healing path).
    """
    if ctx.heartbeat_path:
        _write_heartbeat(ctx.heartbeat_path, 0)
    if ctx.chaos_action == "kill":
        os._exit(_CHAOS_EXIT_CODE)
    if ctx.chaos_action == "hang":
        time.sleep(ctx.hang_sleep_s)
    kwargs: Dict[str, Any] = {}
    if ctx.pass_progress and ctx.heartbeat_path:
        heartbeat_path = ctx.heartbeat_path

        def progress(items_done: int) -> None:
            _write_heartbeat(heartbeat_path, items_done)

        kwargs["progress"] = progress
    result = shard_fn(*shard_args, **kwargs)
    if ctx.chaos_action == "truncate" and ctx.checkpoint_path:
        _truncate_file(ctx.checkpoint_path, ctx.truncate_fraction)
    return result


# ----------------------------------------------------------------------
# Parent-side supervision
# ----------------------------------------------------------------------


@dataclass
class _ShardState:
    """Parent-side bookkeeping for one shard of one run."""

    position: int
    key: int
    args: Tuple
    disposition: ShardDisposition
    policy: RetryPolicy
    heartbeat_path: Optional[str] = None
    submitted_at: float = 0.0
    ready_at: float = 0.0
    first_failure_at: Optional[float] = None
    charged_failures: int = 0
    result: Optional["ShardResult"] = None
    done: bool = False


class ShardSupervisor:
    """Runs one grid of shards on the engine's pool, with recovery.

    Created per ``run_shards`` call by
    :class:`~repro.exec.engine.ExecutionEngine`; reads the pool through
    the engine so a recycled pool is shared with subsequent runs.
    """

    def __init__(
        self,
        engine: "ExecutionEngine",
        policy: SupervisionPolicy,
        dispositions: Dict[int, ShardDisposition],
        chaos: Optional[object] = None,
        checkpoint_paths: Optional[Dict[int, str]] = None,
    ) -> None:
        self.engine = engine
        self.policy = policy
        self.dispositions = dispositions
        self.chaos = chaos
        self.checkpoint_paths = checkpoint_paths or {}
        self._shard_fn: Optional[Callable[..., "ShardResult"]] = None
        self._on_shard_done: Optional[Callable[["ShardResult"], None]] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        shard_fn: Callable[..., "ShardResult"],
        shard_args: Sequence[Tuple],
        on_shard_done: Optional[Callable[["ShardResult"], None]] = None,
    ) -> List["ShardResult"]:
        self._shard_fn = shard_fn
        self._on_shard_done = on_shard_done
        heartbeat_dir = tempfile.mkdtemp(prefix="repro-exec-hb-")
        try:
            return self._run(heartbeat_dir, shard_fn, shard_args)
        finally:
            shutil.rmtree(heartbeat_dir, ignore_errors=True)

    def _run(
        self,
        heartbeat_dir: str,
        shard_fn: Callable[..., "ShardResult"],
        shard_args: Sequence[Tuple],
    ) -> List["ShardResult"]:
        pass_progress = self._accepts_progress(shard_fn)
        states: List[_ShardState] = []
        for position, args in enumerate(shard_args):
            first = args[0] if args else None
            key = first.index if isinstance(first, Shard) else position
            states.append(
                _ShardState(
                    position=position,
                    key=key,
                    args=tuple(args),
                    disposition=self.dispositions[key],
                    policy=self.policy.retry_policy(),
                )
            )
        waiting = list(states)
        running: Dict[Any, _ShardState] = {}
        try:
            while waiting or running:
                now = time.time()
                self._submit_ready(
                    waiting, running, heartbeat_dir, pass_progress, now
                )
                if running:
                    done, _ = wait(
                        set(running),
                        timeout=self.policy.poll_interval_s,
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    done = ()
                    time.sleep(self.policy.poll_interval_s)
                for future in done:
                    state = running.pop(future)
                    try:
                        result = future.result()
                    except Exception as exc:
                        self._handle_failure(state, exc, waiting)
                    else:
                        self._complete(state, result, backend="pool")
                self._check_hangs(running, waiting)
        except BaseException:
            # Interrupt / permanent failure: cancel what has not run,
            # terminate the pool (no orphaned or wedged worker outlives
            # the run), and propagate.
            for future in running:
                future.cancel()
            self.engine._abandon_pool(terminate=True)
            raise
        return [state.result for state in states]  # type: ignore[misc]

    @staticmethod
    def _accepts_progress(shard_fn: Callable[..., Any]) -> bool:
        try:
            return "progress" in inspect.signature(shard_fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _submit_ready(
        self,
        waiting: List[_ShardState],
        running: Dict[Any, _ShardState],
        heartbeat_dir: str,
        pass_progress: bool,
        now: float,
    ) -> None:
        """Move due shards into the pool, capped at one per worker.

        The in-flight cap keeps queue wait ≈ 0, which lets the hang
        watchdog measure time-since-submission fairly for shards whose
        first heartbeat never lands.
        """
        for state in list(waiting):
            if len(running) >= self.engine.workers:
                return
            if state.ready_at > now:
                continue
            if not self._submit(state, running, heartbeat_dir, pass_progress):
                return  # pool broke while submitting; rebuild next tick
            waiting.remove(state)

    def _submit(
        self,
        state: _ShardState,
        running: Dict[Any, _ShardState],
        heartbeat_dir: str,
        pass_progress: bool,
    ) -> bool:
        attempt = state.disposition.attempts + 1
        heartbeat_path = os.path.join(
            heartbeat_dir, f"hb-{state.key}-{attempt}"
        )
        checkpoint_path = self.checkpoint_paths.get(state.key)
        chaos_action = None
        if self.chaos is not None:
            chaos_action = self.chaos.draw(
                state.key, attempt, checkpoint_path is not None
            )
        ctx = _TaskContext(
            shard_key=state.key,
            attempt=attempt,
            heartbeat_path=heartbeat_path,
            pass_progress=pass_progress,
            chaos_action=chaos_action,
            hang_sleep_s=float(getattr(self.chaos, "hang_sleep_s", 0.0)),
            checkpoint_path=checkpoint_path,
            truncate_fraction=float(
                getattr(self.chaos, "truncate_fraction", 0.5)
            ),
        )
        try:
            pool = self.engine._ensure_pool()
            future = pool.submit(
                _execute_supervised, ctx, self._shard_fn, state.args
            )
        except BrokenExecutor:
            self.engine._abandon_pool(terminate=False)
            return False
        state.disposition.attempts = attempt
        state.heartbeat_path = heartbeat_path
        state.submitted_at = time.time()
        running[future] = state
        if chaos_action is not None:
            logger.info(
                "chaos: injecting %s into shard %d attempt %d",
                chaos_action,
                state.key,
                attempt,
            )
        return True

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _handle_failure(
        self, state: _ShardState, exc: Exception, waiting: List[_ShardState]
    ) -> None:
        if isinstance(exc, BrokenExecutor):
            # The pool is unusable for everyone; drop it so the next
            # submission rebuilds.  Peers in flight fail the same way
            # and are retried through the same path.
            self.engine._abandon_pool(terminate=False)
            kind = CRASH
        else:
            kind = ERROR
        self._record_failure(
            state, kind, f"{type(exc).__name__}: {exc}", waiting
        )

    def _record_failure(
        self,
        state: _ShardState,
        kind: str,
        detail: str,
        waiting: List[_ShardState],
    ) -> None:
        now = time.time()
        if state.first_failure_at is None:
            state.first_failure_at = now
        state.disposition.failures.append(
            ShardFailure(kind=kind, attempt=state.disposition.attempts, detail=detail)
        )
        self._inc(f"repro.exec.supervisor.failures.{kind}")
        logger.warning(
            "shard %d attempt %d failed (%s): %s",
            state.key,
            state.disposition.attempts,
            kind,
            detail,
        )
        if kind == COLLATERAL:
            # The shard itself was healthy — its pool was recycled to
            # recover a peer.  Requeue immediately, budget untouched.
            state.ready_at = now
            waiting.append(state)
            return
        state.charged_failures += 1
        delay_slots = state.policy.next_delay(state.charged_failures)
        if delay_slots is None:
            self._quarantine(state)
            return
        state.ready_at = now + delay_slots * self.policy.backoff_unit_s
        self.engine.stats.retries += 1
        self._inc("repro.exec.supervisor.retries")
        waiting.append(state)

    def _quarantine(self, state: _ShardState) -> None:
        """Poison shard: leave the pool for good, degrade to serial."""
        state.disposition.quarantined = True
        self.engine.stats.quarantines += 1
        self._inc("repro.exec.supervisor.quarantines")
        logger.error(
            "shard %d quarantined after %d charged failure(s)",
            state.key,
            state.charged_failures,
        )
        if not self.policy.quarantine_serial:
            state.disposition.outcome = FAILED
            raise ShardExecutionError(state.disposition)
        state.disposition.attempts += 1
        scope = (
            exec_cache.caching(self.engine._serial_cache)
            if self.engine._serial_cache is not None
            else nullcontext()
        )
        try:
            with scope:
                result = self._shard_fn(*state.args)
        except Exception as exc:
            state.disposition.failures.append(
                ShardFailure(
                    kind=ERROR,
                    attempt=state.disposition.attempts,
                    detail=f"serial fallback: {type(exc).__name__}: {exc}",
                )
            )
            state.disposition.outcome = FAILED
            raise ShardExecutionError(state.disposition) from exc
        self._complete(state, result, backend="serial")

    # ------------------------------------------------------------------
    # Hang watchdog
    # ------------------------------------------------------------------
    def _check_hangs(
        self, running: Dict[Any, _ShardState], waiting: List[_ShardState]
    ) -> None:
        if self.policy.hang_timeout_s is None or not running:
            return
        now = time.time()
        hung: List[_ShardState] = []
        for state in running.values():
            age = self._heartbeat_age(state, now)
            self._observe("repro.exec.supervisor.heartbeat_age_seconds", age)
            if age > self.policy.hang_timeout_s:
                hung.append(state)
        if not hung:
            return
        # A wedged worker cannot be recalled individually — terminate
        # the whole pool and retry everything that was in flight.  The
        # hung shard is charged; its healthy peers are collateral.
        self.engine._abandon_pool(terminate=True)
        for future, state in list(running.items()):
            future.cancel()
            if state in hung:
                age = self._heartbeat_age(state, now)
                self._record_failure(
                    state,
                    HANG,
                    f"no heartbeat for {age:.2f}s "
                    f"(timeout {self.policy.hang_timeout_s}s)",
                    waiting,
                )
            else:
                self._record_failure(
                    state,
                    COLLATERAL,
                    "pool recycled to recover a hung peer",
                    waiting,
                )
        running.clear()

    @staticmethod
    def _heartbeat_age(state: _ShardState, now: float) -> float:
        try:
            last = os.stat(state.heartbeat_path).st_mtime
        except (OSError, TypeError):
            last = state.submitted_at
        return max(0.0, now - last)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete(
        self, state: _ShardState, result: "ShardResult", backend: str
    ) -> None:
        state.result = result
        state.done = True
        disposition = state.disposition
        disposition.backend = backend
        if disposition.failures:
            disposition.outcome = (
                DEGRADED if backend == "serial" else RECOVERED
            )
            if state.first_failure_at is not None:
                disposition.recovery_seconds = (
                    time.time() - state.first_failure_at
                )
                self._observe(
                    "repro.exec.supervisor.recovery_seconds",
                    disposition.recovery_seconds,
                )
        else:
            disposition.outcome = COMPLETED
        self.engine._absorb(result)
        if self._on_shard_done is not None:
            self._on_shard_done(result)

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _inc(name: str, amount: int = 1) -> None:
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc(name, amount)

    @staticmethod
    def _observe(name: str, value: float) -> None:
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.observe(name, value)
