"""The execution engine: shards × backends × deterministic merge.

:class:`ExecutionEngine` takes any index-addressable grid of work —
experiment trials, fig7b replicas, Monte-Carlo runs — partitions it with
a :class:`~repro.exec.shard.ShardPlan`, runs the shards on a backend,
and reassembles results in canonical item order.  Two backends:

* **serial** (``workers=1``, the default): shards run in-process, in
  shard order, sharing the engine's persistent
  :class:`~repro.exec.cache.ChannelCache`.  Because the plan and the
  per-item RNGs are index-derived, this produces byte-identical results
  to the pre-engine serial code path.
* **process** (``workers>1``): shards run on a lazily-created
  ``ProcessPoolExecutor``.  Each worker process owns one process-global
  channel cache (installed by the pool initializer), so repeated-graph
  sweeps keep their hit rate across shards and sweep points.  Shard
  results carry the per-shard cache-stat deltas back to the parent,
  which aggregates them into the active metrics registry
  (``repro.exec.*``).

Checkpoint discipline: concurrent writers must never share one
atomic-rename JSONL target, so each shard writes a private sibling file
(``<store>.shards/shard-<k>.jsonl``) which the parent merges through
:meth:`~repro.experiments.checkpoint.CheckpointStore.merge_from` — after
success, and for completed shards on ``KeyboardInterrupt`` (outstanding
futures are cancelled, the pool is torn down, finished work is flushed,
and the interrupt re-raises).  The merge is *self-healing*: a corrupt
or torn shard file is quarantined to ``<store>.shards/quarantine/`` and
its trials are re-recorded from the in-memory shard result (or simply
re-executed on the next resume), so one bad file never poisons a sweep.

Fault tolerance: the process backend is driven by a
:class:`~repro.exec.supervisor.ShardSupervisor` — per-shard heartbeat
files with a hang watchdog, crash detection, bounded retry with
backoff reusing the :mod:`repro.resilience` policy family, and
poison-shard quarantine with graceful degradation to in-process serial
execution.  Every recovery is attributed in the engine-lifetime
:attr:`ExecutionEngine.report` (a
:class:`~repro.exec.supervisor.DispositionReport`).

The engine can be made *ambient* with :func:`executing`, mirroring the
checkpoint/metrics idiom, so sweep drivers that call
:func:`repro.experiments.runner.run_experiment` internally parallelize
without threading an engine through every signature::

    with ExecutionEngine(workers=4) as engine:
        with executing(engine):
            run_fig6a()                # trials now shard across 4 procs
    print(engine.stats.describe())
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import repro.obs.metrics as obs_metrics
from repro.exec.cache import CacheStats, ChannelCache
from repro.exec import cache as exec_cache
from repro.exec.shard import Shard, ShardPlan
from repro.exec.supervisor import (
    COMPLETED,
    DispositionReport,
    ShardDisposition,
    ShardSupervisor,
    SupervisionPolicy,
)

__all__ = [
    "EngineStats",
    "ExecutionEngine",
    "ShardResult",
    "active_engine",
    "executing",
    "result_payload",
]


@dataclass
class EngineStats:
    """Cumulative accounting of everything an engine has executed."""

    shards_run: int = 0
    items_run: int = 0
    items_resumed: int = 0
    retries: int = 0
    quarantines: int = 0
    checkpoint_heals: int = 0
    checkpoint_records_skipped: int = 0
    #: Trial indices whose results never reached the checkpoint store
    #: when a run was interrupted — exactly what ``--resume`` re-runs.
    unflushed_trials: List[int] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)

    def absorb_cache(self, delta: CacheStats) -> None:
        self.cache = self.cache.merged(delta)

    def describe(self) -> str:
        text = (
            f"{self.items_run} item(s) in {self.shards_run} shard(s), "
            f"{self.items_resumed} resumed; cache: "
            f"{self.cache.hits}/{self.cache.lookups} hits "
            f"({self.cache.hit_rate:.1%}), "
            f"{self.cache.invalidations} invalidation(s), "
            f"{self.cache.evictions} eviction(s)"
        )
        if (
            self.retries
            or self.quarantines
            or self.checkpoint_heals
            or self.checkpoint_records_skipped
        ):
            text += (
                f"; recovery: {self.retries} retry(ies), "
                f"{self.quarantines} quarantine(s), "
                f"{self.checkpoint_heals} trial(s) healed, "
                f"{self.checkpoint_records_skipped} corrupt record(s) "
                f"skipped"
            )
        if self.unflushed_trials:
            text += (
                f"; {len(self.unflushed_trials)} unflushed trial(s) "
                f"re-run on resume: {self.unflushed_trials}"
            )
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "shards_run": self.shards_run,
            "items_run": self.items_run,
            "items_resumed": self.items_resumed,
            "retries": self.retries,
            "quarantines": self.quarantines,
            "checkpoint_heals": self.checkpoint_heals,
            "checkpoint_records_skipped": self.checkpoint_records_skipped,
            "unflushed_trials": list(self.unflushed_trials),
            "cache": self.cache.to_dict(),
        }


@dataclass(frozen=True)
class ShardResult:
    """What one executed shard hands back to the engine.

    Attributes:
        shard_index: Which shard of the plan this is.
        results: item index → the item's result payload.
        cache_stats: Channel-cache counter deltas attributable to this
            shard (zeros when caching was disabled).
    """

    shard_index: int
    results: Dict[int, Any]
    cache_stats: CacheStats = field(default_factory=CacheStats)


# ----------------------------------------------------------------------
# Worker-side plumbing.  Everything submitted to the pool must be a
# module-level callable with picklable arguments.
# ----------------------------------------------------------------------

#: Per-process channel cache installed by :func:`_worker_init`.
_worker_cache: Optional[ChannelCache] = None


def _worker_init(use_cache: bool, cache_size: int) -> None:
    """Pool initializer: give the worker process its own channel cache.

    The cache is process-global (enabled for the worker's whole life),
    so hits accumulate across every shard and sweep point the worker
    serves — that persistence is where repeated-graph sweeps earn their
    hit rate.
    """
    # Forked workers inherit the parent's executor-manager wakeup
    # registry; their exit hook would then write to a pipe fd that is
    # not valid in the child, printing a spurious "Bad file descriptor"
    # traceback at shutdown (CPython fork-mode quirk).  The registry is
    # meaningless in a worker — drop the inherited entries.
    try:
        import concurrent.futures.process as _cf_process

        _cf_process._threads_wakeups.clear()
    except (ImportError, AttributeError):  # pragma: no cover
        pass
    global _worker_cache
    if use_cache:
        _worker_cache = ChannelCache(max_entries=cache_size)
        exec_cache.enable(_worker_cache)
    else:
        _worker_cache = None
        exec_cache.disable()


def _cache_stats_snapshot() -> CacheStats:
    cache = exec_cache.active()
    return cache.stats() if cache is not None else CacheStats()


def _run_generic_shard(
    shard: Shard,
    fn: Callable[[Any], Any],
    payloads: Dict[int, Any],
    progress: Optional[Callable[[int], None]] = None,
) -> ShardResult:
    """Run ``fn(payload)`` for every item of *shard*, in item order.

    *progress* (injected by the shard supervisor) is called with the
    number of completed items after each one — the worker-side
    heartbeat that feeds the hang watchdog.
    """
    before = _cache_stats_snapshot()
    results: Dict[int, Any] = {}
    for done, item in enumerate(shard.items, start=1):
        results[item] = fn(payloads[item])
        if progress is not None:
            progress(done)
    return ShardResult(
        shard_index=shard.index,
        results=results,
        cache_stats=_cache_stats_snapshot().delta(before),
    )


def _run_experiment_shard(
    shard: Shard,
    config: "ExperimentConfig",
    checkpoint_path: Optional[str],
    progress: Optional[Callable[[int], None]] = None,
) -> ShardResult:
    """Run the experiment trials of *shard*; checkpoint each locally.

    Uses :func:`repro.experiments.runner.run_trial`, the same work unit
    the serial runner executes, so a shard's rates are bit-equal to the
    serial loop's for the same trial indices.  *progress* is the
    supervisor-injected heartbeat callback.
    """
    from repro.experiments.checkpoint import CheckpointStore
    from repro.experiments.runner import run_trial

    before = _cache_stats_snapshot()
    store = (
        CheckpointStore(checkpoint_path) if checkpoint_path is not None else None
    )
    results: Dict[int, Dict[str, float]] = {}
    for done, trial in enumerate(shard.items, start=1):
        rates = run_trial(config, trial)
        results[trial] = rates
        if store is not None:
            store.record(config, trial, rates)
        if progress is not None:
            progress(done)
    return ShardResult(
        shard_index=shard.index,
        results=results,
        cache_stats=_cache_stats_snapshot().delta(before),
    )


if False:  # pragma: no cover - import-time typing only
    from repro.experiments.config import ExperimentConfig  # noqa: F401


class ExecutionEngine:
    """Runs sharded work grids serially or across a process pool.

    Args:
        workers: Process count.  ``1`` (default) runs in-process and is
            byte-identical to the legacy serial path; ``N > 1`` uses a
            ``ProcessPoolExecutor`` with ``N`` workers.
        use_cache: Memoize channel searches (serial: one engine-lifetime
            cache; process: one cache per worker process).
        cache_size: LRU bound per cache.
        supervision: Fault-tolerance knobs for the process backend
            (retry budget, backoff, hang watchdog, quarantine).  The
            default :class:`~repro.exec.supervisor.SupervisionPolicy`
            retries each shard up to three pool attempts, then
            quarantines it to in-process serial execution.
        chaos: Optional fault injector (see :mod:`repro.exec.chaos`)
            consulted on every pool submission — used by the chaos-soak
            harness and tests, ``None`` in production.

    The engine is reusable across calls (the pool and the serial cache
    persist) and is a context manager; :meth:`close` tears the pool
    down.  Determinism contract: for a fixed grid, results and
    aggregates are identical for every ``workers`` value and for
    ``use_cache`` on or off — parallelism and caching are pure
    wall-clock optimizations.  Recovery preserves the contract: retries
    and quarantine fallbacks re-run the same pure shard function on the
    same index-derived arguments.
    """

    def __init__(
        self,
        workers: int = 1,
        use_cache: bool = True,
        cache_size: int = 4096,
        supervision: Optional[SupervisionPolicy] = None,
        chaos: Optional[object] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.use_cache = use_cache
        self.cache_size = cache_size
        self.supervision = (
            supervision if supervision is not None else SupervisionPolicy()
        )
        self.chaos = chaos
        self.stats = EngineStats()
        #: Engine-lifetime ledger of what happened to every shard.
        self.report = DispositionReport()
        self._run_seq = 0
        self._current_dispositions: Dict[int, ShardDisposition] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._serial_cache: Optional[ChannelCache] = (
            ChannelCache(max_entries=cache_size) if use_cache else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self.use_cache, self.cache_size),
            )
        return self._pool

    def _abandon_pool(self, terminate: bool) -> None:
        """Discard the current pool (it broke, or a worker is wedged).

        With ``terminate=True`` the worker processes are killed first —
        the only way to reclaim a hung worker, since a submitted call
        cannot be recalled.  The next :meth:`_ensure_pool` builds a
        fresh pool; the supervisor resubmits affected shards to it.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if terminate:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except (OSError, AttributeError):  # pragma: no cover
                    pass
        pool.shutdown(wait=True, cancel_futures=True)
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("repro.exec.supervisor.pool_rebuilds")

    @property
    def cache(self) -> Optional[ChannelCache]:
        """The serial-backend cache (``None`` for process backends)."""
        return self._serial_cache

    # ------------------------------------------------------------------
    # Core shard execution
    # ------------------------------------------------------------------
    def run_shards(
        self,
        shard_fn: Callable[..., ShardResult],
        shard_args: Sequence[Tuple],
        on_shard_done: Optional[Callable[[ShardResult], None]] = None,
        checkpoint_paths: Optional[Dict[int, str]] = None,
    ) -> List[ShardResult]:
        """Execute ``shard_fn(*args)`` for every entry of *shard_args*.

        Returns results ordered by submission index (not completion
        order).  *on_shard_done* fires in the parent as each shard
        completes — the engine uses it to flush merged checkpoints
        incrementally.  *checkpoint_paths* (shard index → private
        checkpoint file) lets the supervisor's chaos harness target
        shard checkpoints for truncation injection.

        On the process backend each shard runs under the
        :class:`~repro.exec.supervisor.ShardSupervisor`: worker crashes
        and hangs are detected, the shard is retried with backoff, and
        a poison shard degrades to in-process serial execution instead
        of failing the run.  Every shard's story lands in
        :attr:`report`.

        ``KeyboardInterrupt`` while shards are outstanding cancels the
        queued ones, tears the pool down (no orphaned workers), then
        re-raises; completed shards' callbacks have already run, so
        their checkpoints are safe.  A ``KeyboardInterrupt`` raised
        *inside* a worker propagates out of its future and is treated
        identically.
        """
        self._run_seq += 1
        dispositions: Dict[int, ShardDisposition] = {}
        for position, args in enumerate(shard_args):
            first = args[0] if args else None
            if isinstance(first, Shard):
                key, items = first.index, len(first)
            else:
                key, items = position, 1
            dispositions[key] = self.report.ensure(self._run_seq, key, items)
        self._current_dispositions = dispositions
        if self.workers == 1:
            return self._run_shards_serial(shard_fn, shard_args, on_shard_done)
        supervisor = ShardSupervisor(
            self,
            self.supervision,
            dispositions,
            chaos=self.chaos,
            checkpoint_paths=checkpoint_paths,
        )
        return supervisor.run(shard_fn, shard_args, on_shard_done)

    def _absorb(self, result: ShardResult) -> None:
        self.stats.shards_run += 1
        self.stats.items_run += len(result.results)
        self.stats.absorb_cache(result.cache_stats)
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("repro.exec.shards_run")
            metrics.inc("repro.exec.items_run", len(result.results))
            delta = result.cache_stats
            # Worker processes have their own (inactive) registries, so
            # their cache deltas are republished here; the serial
            # backend's cache already published per-lookup counters.
            if self.workers > 1:
                if delta.hits:
                    metrics.inc("repro.exec.cache.hits", delta.hits)
                if delta.misses:
                    metrics.inc("repro.exec.cache.misses", delta.misses)
                if delta.evictions:
                    metrics.inc("repro.exec.cache.evictions", delta.evictions)
                if delta.invalidations:
                    metrics.inc(
                        "repro.exec.cache.invalidations", delta.invalidations
                    )

    def _run_shards_serial(
        self,
        shard_fn: Callable[..., ShardResult],
        shard_args: Sequence[Tuple],
        on_shard_done: Optional[Callable[[ShardResult], None]],
    ) -> List[ShardResult]:
        scope = (
            exec_cache.caching(self._serial_cache)
            if self._serial_cache is not None
            else nullcontext()
        )
        results: List[ShardResult] = []
        with scope:
            for args in shard_args:
                # In-process shard functions compute their own cache
                # deltas against the shared serial cache.
                result = shard_fn(*args)
                results.append(result)
                disposition = self._current_dispositions.get(
                    result.shard_index
                )
                if disposition is not None:
                    disposition.attempts = max(disposition.attempts, 1)
                    disposition.backend = "serial"
                    disposition.outcome = COMPLETED
                self._absorb(result)
                if on_shard_done is not None:
                    on_shard_done(result)
        return results

    # ------------------------------------------------------------------
    # Generic item mapping
    # ------------------------------------------------------------------
    def map_items(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> List[Any]:
        """``[fn(p) for p in payloads]``, sharded across the backend.

        *fn* must be a module-level (picklable) callable.  Results come
        back in payload order regardless of shard scheduling.
        """
        if not payloads:
            return []
        plan = ShardPlan.build(len(payloads), self.workers)
        payload_map = dict(enumerate(payloads))
        shard_args = [
            (shard, fn, {i: payload_map[i] for i in shard.items})
            for shard in plan
        ]
        results = self.run_shards(_run_generic_shard, shard_args)
        merged: Dict[int, Any] = {}
        for shard_result in results:
            merged.update(shard_result.results)
        return [merged[i] for i in range(len(payloads))]

    # ------------------------------------------------------------------
    # Experiment orchestration
    # ------------------------------------------------------------------
    def run_experiment(
        self,
        config: "ExperimentConfig",
        checkpoint: Optional["CheckpointStore"] = None,
    ) -> "ExperimentResult":
        """Sharded, checkpointed equivalent of the serial runner.

        Byte-identical aggregates for every worker count: trials are
        keyed by index, shards are index-arithmetic, and the merge
        assembles rates in trial order before aggregation.
        """
        from repro.experiments.checkpoint import active_store
        from repro.experiments.runner import (
            ExperimentResult,
            MethodOutcome,
            resumable_rates,
        )

        store = checkpoint if checkpoint is not None else active_store()
        metrics = obs_metrics.active()
        # Self-healing pass: a previous run that died between a shard's
        # completion and its merge leaves shard-*.jsonl files behind.
        # Absorb them (tolerantly — corrupt files are quarantined) so
        # their trials resume instead of re-running, and so corrupt
        # records simply fall into the pending set below and re-execute.
        self._absorb_leftover_shards(store)
        rates_by_trial: Dict[int, Dict[str, float]] = {}
        pending: List[int] = []
        for trial in range(config.n_networks):
            recorded = resumable_rates(store, config, trial)
            if recorded is not None:
                rates_by_trial[trial] = recorded
            else:
                pending.append(trial)
        if rates_by_trial:
            self.stats.items_resumed += len(rates_by_trial)
            if metrics is not None:
                metrics.inc("experiments.trials_resumed", len(rates_by_trial))

        if pending:
            plan = ShardPlan.over(pending, self.workers)
            shard_dir = self._shard_checkpoint_dir(store)
            shard_paths = self._shard_checkpoint_paths(shard_dir, plan)

            def flush(result: ShardResult) -> None:
                for trial, rates in result.results.items():
                    rates_by_trial[trial] = rates
                self._merge_shard_checkpoint(
                    store, shard_paths.get(result.shard_index)
                )
                self._heal_shard_records(store, config, result)

            shard_args = [
                (shard, config, shard_paths.get(shard.index))
                for shard in plan
            ]
            try:
                self.run_shards(
                    _run_experiment_shard,
                    shard_args,
                    on_shard_done=flush,
                    checkpoint_paths=shard_paths,
                )
            except BaseException:
                # Late flush: shards that completed after the failing /
                # interrupted one may have checkpoints on disk that the
                # callback never saw — absorb whatever exists before
                # propagating, so no finished trial is forfeited.
                for path in shard_paths.values():
                    self._merge_shard_checkpoint(store, path)
                self._cleanup_shard_dir(shard_dir, shard_paths)
                # Surface what was lost: trials with no flushed
                # checkpoint are exactly what --resume re-runs.
                if store is not None:
                    unflushed = [
                        t for t in pending if not store.has(config, t)
                    ]
                else:
                    unflushed = list(pending)
                self.stats.unflushed_trials = sorted(unflushed)
                if metrics is not None:
                    metrics.set_gauge(
                        "repro.exec.checkpoint.unflushed_trials",
                        len(unflushed),
                    )
                raise
            self._cleanup_shard_dir(shard_dir, shard_paths)
            if metrics is not None:
                metrics.inc("experiments.trials", len(pending))

        outcomes = tuple(
            MethodOutcome(
                method,
                tuple(
                    rates_by_trial[trial][method]
                    for trial in range(config.n_networks)
                ),
            )
            for method in config.methods
        )
        bounds: tuple = ()
        uncap_bounds: tuple = ()
        if config.bound == "lp":
            # The certified LP bounds ride through shard results and
            # checkpoints under reserved keys, exactly like methods.
            from repro.experiments.runner import BOUND_KEY, UNCAP_BOUND_KEY

            bounds = tuple(
                rates_by_trial[trial][BOUND_KEY]
                for trial in range(config.n_networks)
            )
            uncap_bounds = tuple(
                rates_by_trial[trial][UNCAP_BOUND_KEY]
                for trial in range(config.n_networks)
            )
        return ExperimentResult(
            config=config,
            outcomes=outcomes,
            bounds=bounds,
            uncap_bounds=uncap_bounds,
        )

    def run_sweep(
        self,
        base: "ExperimentConfig",
        parameter: str,
        values: Sequence[object],
    ) -> "SweepResult":
        """Sweep *parameter* over *values*, sharding each point's trials.

        Sweep points run in order (their shards fan out within each
        point), so checkpoint/resume layout matches the serial sweep.
        """
        from repro.experiments.sweeps import SweepResult

        if not values:
            raise ValueError("sweep needs at least one value")
        results = [
            self.run_experiment(base.replace(**{parameter: value}))
            for value in values
        ]
        return SweepResult(
            parameter=parameter,
            values=tuple(values),
            results=tuple(results),
        )

    # ------------------------------------------------------------------
    # Shard-checkpoint helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _shard_checkpoint_dir(store) -> Optional[Path]:
        if store is None:
            return None
        return Path(str(store.path) + ".shards")

    @staticmethod
    def _shard_checkpoint_paths(
        shard_dir: Optional[Path], plan: ShardPlan
    ) -> Dict[int, str]:
        if shard_dir is None:
            return {}
        shard_dir.mkdir(parents=True, exist_ok=True)
        return {
            shard.index: str(shard_dir / f"shard-{shard.index}.jsonl")
            for shard in plan
        }

    def _merge_shard_checkpoint(self, store, path: Optional[str]):
        """Fold one shard checkpoint into the main store, tolerantly.

        A clean file merges and is removed; a corrupt or torn one has
        its valid records salvaged, then the file itself is quarantined
        to ``<store>.shards/quarantine/`` for post-mortems instead of
        poisoning the merge.  Returns the
        :class:`~repro.experiments.checkpoint.MergeReport` (or ``None``
        when there was nothing to merge).
        """
        if store is None or path is None or not os.path.exists(path):
            return None
        report = store.merge_from(path)
        if report.clean:
            os.unlink(path)
        else:
            self.stats.checkpoint_records_skipped += report.skipped
            self._quarantine_checkpoint_file(store, path)
        return report

    @staticmethod
    def _quarantine_checkpoint_file(store, path: str) -> Path:
        quarantine_dir = (
            Path(str(store.path) + ".shards") / "quarantine"
        )
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        source = Path(path)
        target = quarantine_dir / source.name
        serial = 1
        while target.exists():
            target = quarantine_dir / f"{source.stem}-{serial}{source.suffix}"
            serial += 1
        os.replace(path, target)
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("repro.exec.checkpoint.files_quarantined")
        return target

    def _heal_shard_records(self, store, config, result: ShardResult) -> None:
        """Re-record trials the shard's checkpoint file failed to carry.

        The in-memory :class:`ShardResult` is authoritative — if the
        on-disk shard file was truncated or corrupted (torn write,
        chaos injection, disk fault), the missing trials are simply
        written again from memory, so the main store stays complete
        without re-executing anything.
        """
        if store is None:
            return
        healed = 0
        for trial in sorted(result.results):
            if not store.has(config, trial):
                store.record(config, trial, result.results[trial])
                healed += 1
        if not healed:
            return
        self.stats.checkpoint_heals += healed
        disposition = self._current_dispositions.get(result.shard_index)
        if disposition is not None:
            disposition.healed_trials += healed
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("repro.exec.supervisor.checkpoint_heals", healed)

    def _absorb_leftover_shards(self, store) -> None:
        shard_dir = self._shard_checkpoint_dir(store)
        if shard_dir is None or not shard_dir.is_dir():
            return
        for path in sorted(shard_dir.glob("shard-*.jsonl")):
            self._merge_shard_checkpoint(store, str(path))

    @staticmethod
    def _cleanup_shard_dir(
        shard_dir: Optional[Path], shard_paths: Dict[int, str]
    ) -> None:
        if shard_dir is None:
            return
        for path in shard_paths.values():
            if os.path.exists(path):
                os.unlink(path)
        try:
            shard_dir.rmdir()
        except OSError:  # pragma: no cover - non-empty/external files
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = "serial" if self.workers == 1 else f"pool×{self.workers}"
        return (
            f"ExecutionEngine({backend}, cache="
            f"{'on' if self.use_cache else 'off'})"
        )


if False:  # pragma: no cover - import-time typing only
    from repro.experiments.checkpoint import CheckpointStore  # noqa: F401
    from repro.experiments.runner import ExperimentResult  # noqa: F401
    from repro.experiments.sweeps import SweepResult  # noqa: F401


def result_payload(result: Any) -> Any:
    """A JSON-serializable, canonical view of an experiment result.

    Covers every shape the experiment catalogue returns
    (:class:`~repro.experiments.runner.ExperimentResult`,
    :class:`~repro.experiments.sweeps.SweepResult`,
    :class:`~repro.experiments.fig7_edges.EdgeRemovalResult`) plus
    nested tuples/lists of them.  Determinism checks serialize this
    payload with sorted keys and compare bytes — byte equality of the
    payloads is the definition of "``--workers N`` produced identical
    results".
    """
    from repro.experiments.fig7_edges import EdgeRemovalResult
    from repro.experiments.runner import ExperimentResult
    from repro.experiments.sweeps import SweepResult

    if isinstance(result, ExperimentResult):
        return {
            "kind": "experiment",
            "rates": {o.method: list(o.rates) for o in result.outcomes},
        }
    if isinstance(result, SweepResult):
        return {
            "kind": "sweep",
            "parameter": result.parameter,
            "values": list(result.values),
            "points": [result_payload(r) for r in result.results],
        }
    if isinstance(result, EdgeRemovalResult):
        return {
            "kind": "edge-removal",
            "ratios": list(result.ratios),
            "series": {m: list(v) for m, v in result.series.items()},
        }
    if isinstance(result, (tuple, list)):
        return [result_payload(r) for r in result]
    return result


# ----------------------------------------------------------------------
# Ambient-engine plumbing (mirrors checkpointing()/collecting()).
# ----------------------------------------------------------------------
_ACTIVE_ENGINES: List[ExecutionEngine] = []


def active_engine() -> Optional[ExecutionEngine]:
    """The innermost engine activated by :func:`executing`, if any."""
    return _ACTIVE_ENGINES[-1] if _ACTIVE_ENGINES else None


@contextmanager
def executing(engine: ExecutionEngine) -> Iterator[ExecutionEngine]:
    """Make *engine* ambient for every ``run_experiment`` in the block.

    Sweep drivers call :func:`repro.experiments.runner.run_experiment`
    internally with no engine parameter; wrapping the sweep in
    ``executing`` parallelizes every trial they run without threading
    the engine through each call signature.  The engine's pool is left
    alive on exit (the engine is reusable); call :meth:`close` or use
    the engine itself as a context manager to tear it down.
    """
    _ACTIVE_ENGINES.append(engine)
    try:
        yield engine
    finally:
        popped = _ACTIVE_ENGINES.pop()
        assert popped is engine, "executing stack corrupted"
