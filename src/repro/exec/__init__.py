"""Parallel execution engine: sharded runs + channel-computation cache.

Two pillars (docs/PARALLELISM.md):

* :mod:`repro.exec.shard` / :mod:`repro.exec.engine` — deterministic
  partitioning of experiment grids into independent shards and an
  :class:`~repro.exec.engine.ExecutionEngine` that runs them serially
  (the default — byte-identical to the pre-parallel code path) or
  across a ``ProcessPoolExecutor``, with per-shard checkpoint files
  merged through :class:`~repro.experiments.checkpoint.CheckpointStore`
  so ``--workers N`` produces the same aggregates for every N.
* :mod:`repro.exec.cache` — :class:`~repro.exec.cache.ChannelCache`, an
  exact-key LRU memo of Algorithm-1 channel searches, invalidated by
  ledger reserve/release threshold crossings, topology mutations and
  structural fault events.

This ``__init__`` stays import-light on purpose: the channel-search hot
path (:mod:`repro.core.channel`) imports :mod:`repro.exec.cache` at
module load, so pulling the engine (which imports the experiment layer)
here would create an import cycle.  Engine symbols resolve lazily via
PEP 562.
"""

from __future__ import annotations

from repro.exec.cache import CacheStats, ChannelCache, caching
from repro.exec.shard import Shard, ShardPlan

__all__ = [
    "CacheStats",
    "ChannelCache",
    "caching",
    "Shard",
    "ShardPlan",
    "ExecutionEngine",
    "EngineStats",
    "executing",
    "active_engine",
    "parallel_slots_to_success",
    "ChaosInjector",
    "ChaosSchedule",
    "DispositionReport",
    "ShardDisposition",
    "ShardExecutionError",
    "SupervisionPolicy",
]

#: Lazily-resolved engine-layer exports: name → defining submodule.
_LAZY = {
    "ExecutionEngine": "repro.exec.engine",
    "EngineStats": "repro.exec.engine",
    "executing": "repro.exec.engine",
    "active_engine": "repro.exec.engine",
    "parallel_slots_to_success": "repro.exec.montecarlo",
    "ChaosInjector": "repro.exec.chaos",
    "ChaosSchedule": "repro.exec.chaos",
    "DispositionReport": "repro.exec.supervisor",
    "ShardDisposition": "repro.exec.supervisor",
    "ShardExecutionError": "repro.exec.supervisor",
    "SupervisionPolicy": "repro.exec.supervisor",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)
