"""Online entanglement-request scheduling over a shared network.

The paper plans routes *offline* for one user set (Sec. II-B).  A
deployed quantum Internet serves a stream of requests: entanglement
groups arrive over time, hold their switch qubits while the application
runs, and release them on departure.  This module adds that operational
layer on top of the routing algorithms:

* :class:`EntanglementRequest` — a user group with an arrival slot, a
  holding time, and (optionally) an absolute service deadline;
* :class:`OnlineScheduler` — slot-driven loss system: on each slot it
  releases expired reservations, then tries to route that slot's
  arrivals with the current residual capacity (optionally retrying
  blocked requests for a bounded wait).  Blocked-and-expired requests
  are lost;
* :class:`OnlineResult` — acceptance ratio, rates, and qubit-utilization
  telemetry, the metrics an operator dimensioning switch memory cares
  about.

**Resilient mode** (the robustness layer): give the scheduler a
:class:`~repro.resilience.faults.FaultInjector` and/or a
:class:`~repro.resilience.retry.RetryPolicy` and the run loop becomes
fault-aware:

* injected faults fire *mid-service*; reservations whose tree loses a
  fiber or switch are re-routed in place via capacity-aware incremental
  repair (:func:`repro.extensions.recovery.repair_solution`), keeping
  their surviving channels' qubits reserved;
* when no full repair exists, the scheduler **degrades gracefully**: it
  keeps serving the largest user subset still spanned by the surviving
  channels instead of hard-failing the whole group;
* blocked requests are paced by the retry policy (backoff instead of
  hammering every slot) and abandoned when their deadline passes;
* everything is accounted in a deterministic
  :class:`~repro.resilience.report.ResilienceReport` attached to the
  result — every abandoned request is attributable to a cause.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import repro.obs.metrics as obs_metrics
import repro.obs.trace as obs_trace
from repro.core.conflict_free import solve_conflict_free
from repro.core.ledger import CapacityError, CapacityLedger
from repro.core.prim_based import solve_prim
from repro.core.problem import Channel, MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.network.link import fiber_key
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.unionfind import UnionFind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.admission.control import AdmissionController
    from repro.resilience.faults import FaultInjector
    from repro.resilience.report import ResilienceReport
    from repro.resilience.retry import RetryPolicy
    from repro.tenancy.replicas import ReplicaSet, ReplicationPolicy

logger = logging.getLogger("repro.sim.online")


@dataclass(frozen=True)
class EntanglementRequest:
    """One entanglement request in the arrival stream.

    Attributes:
        name: Unique request id.
        users: The quantum users to entangle (≥ 2).
        arrival: Slot index at which the request arrives.
        hold: Number of slots the reservation is held once routed.
        max_wait: Slots the request may wait when blocked (0 = pure
            loss system).
        deadline: Optional absolute slot by which service must have
            *started*; supersedes ``arrival + max_wait`` as the give-up
            point when set.  Must be ``>= arrival``.
        tenant: Optional tenant/account label; per-tenant admission
            limiters key on it (``None`` = the global bucket).
    """

    name: str
    users: Tuple[Hashable, ...]
    arrival: int
    hold: int = 1
    max_wait: int = 0
    deadline: Optional[int] = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.users) < 2:
            raise ValueError(f"request {self.name!r} needs >= 2 users")
        if len(set(self.users)) != len(self.users):
            raise ValueError(f"request {self.name!r} has duplicate users")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.hold < 1:
            raise ValueError("hold must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.deadline is not None:
            if self.deadline < 0:
                raise ValueError(
                    f"request {self.name!r}: deadline must be >= 0"
                )
            if self.deadline < self.arrival:
                raise ValueError(
                    f"request {self.name!r}: deadline {self.deadline} "
                    f"precedes arrival {self.arrival}"
                )

    @property
    def last_start_slot(self) -> int:
        """Latest slot at which service may still start."""
        if self.deadline is not None:
            return self.deadline
        return self.arrival + self.max_wait


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one request.

    ``accepted`` means the request ended *served* (possibly degraded to
    a user subset); a request that was admitted but abandoned after a
    mid-service fault counts as not accepted, with the attribution in
    the run's resilience report.
    """

    request: EntanglementRequest
    accepted: bool
    solution: Optional[MUERPSolution]
    start_slot: Optional[int]
    release_slot: Optional[int]
    disposition: str = "served"
    degraded: bool = False
    served_users: Tuple[Hashable, ...] = ()
    reroutes: int = 0
    #: Mid-service standby promotions (k-redundant serving only).
    failovers: int = 0

    @property
    def waited(self) -> int:
        if self.start_slot is None:
            return 0
        return self.start_slot - self.request.arrival


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate outcome of an online run."""

    outcomes: Tuple[RequestOutcome, ...]
    slots_simulated: int
    peak_qubit_usage: Dict[Hashable, int]
    resilience: Optional["ResilienceReport"] = None
    #: Admission-control telemetry (populated only when the scheduler
    #: ran with an :class:`~repro.admission.AdmissionController`).
    admission: Optional[Dict[str, object]] = None

    @property
    def n_accepted(self) -> int:
        return sum(1 for o in self.outcomes if o.accepted)

    @property
    def n_degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def n_shed(self) -> int:
        return sum(1 for o in self.outcomes if o.disposition == "shed")

    @property
    def acceptance_ratio(self) -> float:
        # An empty stream has no accepted requests: 0.0, by definition,
        # rather than a vacuous 1.0 or a ZeroDivisionError.
        if not self.outcomes:
            return 0.0
        return self.n_accepted / len(self.outcomes)

    @property
    def mean_accepted_rate(self) -> float:
        rates = [
            o.solution.rate
            for o in self.outcomes
            if o.accepted and o.solution is not None
        ]
        if not rates:
            return 0.0
        return sum(rates) / len(rates)

    def outcome_for(self, name: str) -> RequestOutcome:
        for outcome in self.outcomes:
            if outcome.request.name == name:
                return outcome
        raise KeyError(f"no outcome for request {name!r}")


@dataclass
class _Reservation:
    """Mutable in-flight service record (resilient loop only)."""

    request: EntanglementRequest
    solution: MUERPSolution
    usage: Dict[Hashable, int]
    start_slot: int
    release_slot: int
    retries: int = 0
    reroutes: int = 0
    degraded: bool = False
    hit_by_fault: bool = False
    #: Live replica set under k-redundant serving (``usage`` then
    #: covers *all* replicas, and ``solution`` mirrors the serving one).
    replicas: Optional["ReplicaSet"] = None
    failovers: int = 0


@dataclass
class _Waiter:
    """A blocked request waiting for its next admission attempt."""

    request: EntanglementRequest
    next_slot: int
    attempts: int = 0
    retries: int = 0


def _solution_broken(
    solution: MUERPSolution,
    cuts: Set[Tuple[Hashable, Hashable]],
    darks: Set[Hashable],
) -> bool:
    """Whether any channel of *solution* uses a failed element."""
    for channel in solution.channels:
        if any(s in darks for s in channel.switches):
            return True
        if any(
            fiber_key(u, v) in cuts
            for u, v in zip(channel.path, channel.path[1:])
        ):
            return True
    return False


def _largest_served_component(
    users, channels: Sequence[Channel]
) -> Tuple[Hashable, ...]:
    """Largest user subset still spanned by *channels* (deterministic).

    Ties break toward the lexicographically-smallest member set so two
    same-seed runs always degrade identically.
    """
    unions = UnionFind(sorted(users, key=repr))
    for channel in channels:
        unions.union(*channel.endpoints)
    best: Tuple[Hashable, ...] = ()
    for group in unions.groups():
        members = tuple(sorted(group, key=repr))
        if (len(members), [repr(m) for m in members]) > (
            len(best),
            [repr(m) for m in best],
        ) and len(members) >= 2:
            best = members
    return best


class OnlineScheduler:
    """Slot-driven online admission and routing.

    Args:
        network: The shared quantum network.
        method: Per-request solver: ``"prim"`` (default) or
            ``"conflict_free"``.
        rng: Random source forwarded to the solver.
        fault_injector: Optional
            :class:`~repro.resilience.faults.FaultInjector`; enables the
            fault-aware run loop (mid-service repair + degradation).
        retry_policy: Optional
            :class:`~repro.resilience.retry.RetryPolicy` pacing blocked
            requests' re-admission attempts.
        allow_degradation: Serve the largest surviving user subset when
            a mid-service fault makes a full repair impossible (instead
            of abandoning the whole group).
        verify: Independently re-check repaired and degraded trees with
            the :class:`~repro.verify.verifier.SolutionVerifier` before
            they go back into service; a tree that fails verification is
            treated as unrepairable (checks are counted in the run's
            resilience report).
        admission: Optional
            :class:`~repro.admission.AdmissionController` consulted
            before any qubits are reserved: requests can be throttled
            into a bounded shed queue, shed outright (each with an
            attributable ``shed`` disposition), served degraded under
            brownout, or hedged with alternate solvers near their
            deadline.  ``None`` preserves the historical
            admit-everything behaviour byte for byte.
        replication: Optional
            :class:`~repro.tenancy.replicas.ReplicationPolicy`; each
            admitted group is served by up to *k* redundant trees
            reserved through the shared ledger.  A mid-service fault
            that breaks only some replicas **fails over** to a
            surviving standby in place; the structural repair /
            degradation ladder is invoked only once every replica is
            dead.  ``None`` keeps single-tree serving byte for byte.
    """

    def __init__(
        self,
        network: QuantumNetwork,
        method: str = "prim",
        rng: RngLike = None,
        fault_injector: Optional["FaultInjector"] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        allow_degradation: bool = True,
        verify: bool = True,
        admission: Optional["AdmissionController"] = None,
        replication: Optional["ReplicationPolicy"] = None,
    ) -> None:
        if method not in ("prim", "conflict_free"):
            raise ValueError(f"unsupported method {method!r}")
        self.network = network
        self.method = method
        self.rng = ensure_rng(rng)
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.allow_degradation = allow_degradation
        self.verify = verify
        self.admission = admission
        self.replication = replication

    def run(self, requests: Sequence[EntanglementRequest]) -> OnlineResult:
        """Simulate the whole arrival stream; returns the telemetry."""
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise ValueError("request names must be unique")
        resilient = (
            self.fault_injector is not None
            or self.retry_policy is not None
            or self.admission is not None
            or self.replication is not None
            or any(r.deadline is not None for r in requests)
        )
        with obs_trace.span(
            "online.run",
            method=self.method,
            requests=len(requests),
            resilient=resilient,
        ):
            if resilient:
                return self._run_resilient(requests)
            return self._run_legacy(requests)

    # ------------------------------------------------------------------
    # Legacy (fault-free) loop — the paper-faithful loss system.
    # ------------------------------------------------------------------
    def _run_legacy(
        self, requests: Sequence[EntanglementRequest]
    ) -> OnlineResult:
        metrics = obs_metrics.active()
        residual = self.network.residual_qubits()
        budgets = dict(residual)
        peak_usage: Dict[Hashable, int] = {s: 0 for s in residual}

        #: (release_slot, usage dict) of active reservations.
        active: List[Tuple[int, Dict[Hashable, int]]] = []
        #: requests waiting for capacity, with their give-up slot.
        waiting: List[Tuple[int, EntanglementRequest]] = []
        outcomes: Dict[str, RequestOutcome] = {}

        by_arrival: Dict[int, List[EntanglementRequest]] = {}
        for request in requests:
            by_arrival.setdefault(request.arrival, []).append(request)
        if not requests:
            return OnlineResult((), 0, peak_usage)
        horizon = max(r.arrival + r.max_wait for r in requests) + 1

        last_activity = 0
        for slot in range(horizon + 1):
            # 1. Release expired reservations.
            still_active = []
            for release_slot, usage in active:
                if release_slot <= slot:
                    for switch, qubits in usage.items():
                        residual[switch] += qubits
                else:
                    still_active.append((release_slot, usage))
            active = still_active

            # 2. Gather this slot's candidates: new arrivals + waiters.
            candidates = list(by_arrival.get(slot, []))
            retained: List[Tuple[int, EntanglementRequest]] = []
            for give_up, request in waiting:
                candidates.append(request)
            waiting = []

            # 3. Try to admit each candidate (arrival order).
            for request in candidates:
                solution = self._route(request, residual)
                if solution is not None:
                    usage = solution.switch_usage()
                    for switch, qubits in usage.items():
                        residual[switch] -= qubits
                        used_now = budgets[switch] - residual[switch]
                        peak_usage[switch] = max(peak_usage[switch], used_now)
                    release_slot = slot + request.hold
                    active.append((release_slot, usage))
                    if metrics is not None:
                        metrics.inc("sim.online.admitted")
                        metrics.observe(
                            "sim.online.queue_wait_slots",
                            slot - request.arrival,
                        )
                    outcomes[request.name] = RequestOutcome(
                        request=request,
                        accepted=True,
                        solution=solution,
                        start_slot=slot,
                        release_slot=release_slot,
                        disposition="served",
                        served_users=tuple(sorted(request.users, key=repr)),
                    )
                    last_activity = max(last_activity, release_slot)
                elif slot < request.arrival + request.max_wait:
                    retained.append((request.arrival + request.max_wait, request))
                else:
                    if metrics is not None:
                        metrics.inc("sim.online.rejected")
                    outcomes[request.name] = RequestOutcome(
                        request=request,
                        accepted=False,
                        solution=None,
                        start_slot=None,
                        release_slot=None,
                        disposition="rejected",
                    )
            waiting = retained

        ordered = tuple(outcomes[r.name] for r in requests)
        return OnlineResult(
            outcomes=ordered,
            slots_simulated=max(horizon, last_activity),
            peak_qubit_usage=peak_usage,
        )

    # ------------------------------------------------------------------
    # Resilient loop — faults, retries, deadlines, degradation.
    # ------------------------------------------------------------------
    def _run_resilient(
        self, requests: Sequence[EntanglementRequest]
    ) -> OnlineResult:
        from repro.admission.backpressure import (
            TIER_DEGRADED,
            TIER_FULL,
            TIER_SHED,
        )
        from repro.extensions.recovery import apply_failures, repair_solution
        from repro.resilience import report as report_mod
        from repro.resilience.faults import _FIBER_KINDS, FaultKind
        from repro.resilience.report import (
            RequestDisposition,
            ResilienceReport,
        )
        from repro.tenancy.slo import tenant_label

        replication = self.replication
        plan_replicas = None
        if replication is not None and replication.k > 1:
            from repro.tenancy.replicas import (
                EXHAUSTED,
                FAILOVER,
                INTACT,
                plan_replica_set,
            )

            plan_replicas = plan_replica_set

        metrics = obs_metrics.active()
        injector = self.fault_injector
        if injector is not None:
            injector.reset()
        admission = self.admission
        if admission is not None:
            admission.reset()
        report = ResilienceReport()

        base = self.network
        # The transactional capacity account: reserve on admission,
        # release on completion; the repair path swaps reservations
        # inside a transaction so an exception can never leak qubits.
        ledger = CapacityLedger.from_network(base)
        verifier = None
        if self.verify:
            from repro.verify.verifier import SolutionVerifier

            verifier = SolutionVerifier()

        reservations: List[_Reservation] = []
        waiting: List[_Waiter] = []
        outcomes: Dict[str, RequestOutcome] = {}

        by_arrival: Dict[int, List[EntanglementRequest]] = {}
        for request in requests:
            by_arrival.setdefault(request.arrival, []).append(request)
        if not requests:
            return OnlineResult(
                (),
                0,
                ledger.peak_usage(),
                report,
                admission.stats() if admission is not None else None,
            )
        horizon = max(r.last_start_slot for r in requests) + 1
        if injector is not None:
            horizon = max(horizon, injector.schedule.last_slot)

        def _close_served(res: _Reservation, slot: int) -> None:
            served = tuple(sorted(res.solution.users, key=repr))
            status = report_mod.DEGRADED if res.degraded else report_mod.SERVED
            reason = (
                f"degraded to {len(served)}/{len(res.request.users)} users"
                if res.degraded
                else ""
            )
            outcomes[res.request.name] = RequestOutcome(
                request=res.request,
                accepted=True,
                solution=res.solution,
                start_slot=res.start_slot,
                release_slot=res.release_slot,
                disposition=status,
                degraded=res.degraded,
                served_users=served,
                reroutes=res.reroutes,
                failovers=res.failovers,
            )
            report.close_request(
                RequestDisposition(
                    name=res.request.name,
                    status=status,
                    reason=reason,
                    slot=slot,
                    retries=res.retries,
                    reroutes=res.reroutes,
                    served_users=served,
                    tenant=res.request.tenant or "",
                    failovers=res.failovers,
                )
            )
            if metrics is not None:
                metrics.inc(f"sim.online.dispositions.{status}")
                if res.request.tenant:
                    metrics.inc(
                        f"sim.online.tenant.{res.request.tenant}"
                        f".dispositions.{status}"
                    )
            if admission is not None:
                admission.on_closed(res.request, slot, status)
            if res.hit_by_fault and not res.degraded:
                report.record_recovery(res.request.name)

        def _close_lost(
            request: EntanglementRequest,
            status: str,
            reason: str,
            slot: int,
            retries: int = 0,
            reroutes: int = 0,
            start_slot: Optional[int] = None,
            failovers: int = 0,
        ) -> None:
            outcomes[request.name] = RequestOutcome(
                request=request,
                accepted=False,
                solution=None,
                start_slot=start_slot,
                release_slot=None,
                disposition=status,
                reroutes=reroutes,
                failovers=failovers,
            )
            report.close_request(
                RequestDisposition(
                    name=request.name,
                    status=status,
                    reason=reason,
                    slot=slot,
                    retries=retries,
                    reroutes=reroutes,
                    tenant=request.tenant or "",
                    failovers=failovers,
                )
            )
            if metrics is not None:
                metrics.inc(f"sim.online.dispositions.{status}")
                if request.tenant:
                    metrics.inc(
                        f"sim.online.tenant.{request.tenant}"
                        f".dispositions.{status}"
                    )
            if admission is not None:
                admission.on_closed(request, slot, status)
            logger.info(
                "request %s lost at slot %d: %s (%s)",
                request.name,
                slot,
                status,
                reason,
            )

        damaged = base
        active_sig: Tuple[frozenset, frozenset] = (frozenset(), frozenset())
        slot = 0
        while True:
            end = horizon
            if reservations:
                end = max(end, max(r.release_slot for r in reservations))
            if waiting:
                end = max(end, max(w.next_slot for w in waiting))
            if slot > end:
                break

            # 0. Advance the fault clock; refresh the damaged view.
            fired = []
            if injector is not None:
                repaired_before = injector.faults_repaired
                fired = injector.advance(slot)
                for event in fired:
                    report.record_fault(event.describe())
                report.record_repairs(
                    injector.faults_repaired - repaired_before
                )
                sig = (
                    frozenset(injector.active_fiber_cuts),
                    frozenset(injector.active_dark_switches),
                )
                if sig != active_sig:
                    active_sig = sig
                    damaged = (
                        apply_failures(base, sig[0], sig[1])
                        if (sig[0] or sig[1])
                        else base
                    )

            # 1. Release expired reservations (service completed).
            still: List[_Reservation] = []
            for res in reservations:
                if res.release_slot <= slot:
                    ledger.release(res.usage)
                    _close_served(res, slot)
                else:
                    still.append(res)
            reservations = still

            # 2. Mid-service faults: repair, degrade, or abandon.
            #
            # Tree-disjoint pre-check (the incremental fast path): only
            # elements that fired *this jump* and are *still active* can
            # newly break a serving tree — every surviving reservation
            # was routed, repaired, or degraded on a damaged view that
            # already excluded the previously-active elements.  The
            # intersection with the active sets matters: a transient
            # that fires and expires within one clock jump shows up in
            # ``fired`` but is back up, so it must not trigger repairs.
            fired_cuts: Set[Tuple[Hashable, Hashable]] = set()
            fired_darks: Set[Hashable] = set()
            if injector is not None and fired:
                cuts, darks = active_sig
                fired_cuts = {
                    e.target for e in fired if e.kind in _FIBER_KINDS
                } & cuts
                fired_darks = {
                    e.target
                    for e in fired
                    if e.kind is FaultKind.SWITCH_DARK
                } & darks
            if fired_cuts or fired_darks:
                cuts, darks = active_sig
                surviving: List[_Reservation] = []
                for res in reservations:
                    if res.replicas is not None:
                        # k-redundant serving: absorb the fault at the
                        # replica layer first.  Only when every replica
                        # is dead does the request fall through to the
                        # structural repair ladder below.
                        event, released = res.replicas.handle_faults(
                            fired_cuts, fired_darks
                        )
                        if released:
                            with ledger.transaction():
                                for extra_usage in released:
                                    ledger.release(extra_usage)
                        if event == INTACT:
                            if metrics is not None:
                                metrics.inc(
                                    "repro.incremental.online.disjoint_noop"
                                )
                            surviving.append(res)
                            continue
                        res.hit_by_fault = True
                        res.usage = res.replicas.total_usage()
                        if event != EXHAUSTED:
                            res.solution = res.replicas.serving_solution
                            if event == FAILOVER:
                                res.failovers += 1
                                if metrics is not None:
                                    metrics.inc("sim.online.failovers")
                                    if res.request.tenant:
                                        metrics.inc(
                                            "sim.online.tenant."
                                            f"{res.request.tenant}"
                                            ".failovers"
                                        )
                                if (
                                    admission is not None
                                    and admission.slo is not None
                                ):
                                    admission.slo.record_failover(
                                        tenant_label(res.request)
                                    )
                                report.record_failover(
                                    res.request.name,
                                    f"slot {slot}: promoted standby "
                                    f"({res.replicas.k} replicas left)",
                                )
                            elif metrics is not None:
                                metrics.inc("sim.online.replicas_pruned")
                            surviving.append(res)
                            continue
                        # All replicas dead: collapse to a plain
                        # single-tree reservation and escalate.
                        res.replicas = None
                        if metrics is not None:
                            metrics.inc("sim.online.replicas_exhausted")
                    if not _solution_broken(
                        res.solution, fired_cuts, fired_darks
                    ):
                        if metrics is not None:
                            metrics.inc(
                                "repro.incremental.online.disjoint_noop"
                            )
                        surviving.append(res)
                        continue
                    res.hit_by_fault = True
                    # Capacity-aware repair: the reservation's own
                    # qubits plus the global residual are available.
                    avail = ledger.as_dict()
                    for switch, qubits in res.usage.items():
                        avail[switch] = avail.get(switch, 0) + qubits
                    rep = repair_solution(
                        base,
                        res.solution,
                        cuts,
                        darks,
                        residual=avail,
                        # Step 0 rebuilt the damaged view for this fault
                        # signature; reuse it instead of re-copying the
                        # topology once per broken reservation.
                        damaged=damaged,
                    )
                    repaired_ok = rep.repaired
                    if repaired_ok and verifier is not None:
                        # Trust-but-verify: a hand-stitched repair must
                        # pass the same independent audit as any solver
                        # output before it re-enters service.
                        issues = verifier.audit(
                            base, rep.solution, users=res.solution.users
                        )
                        report.record_verification(
                            res.request.name,
                            not issues,
                            "; ".join(v.code for v in issues),
                        )
                        repaired_ok = not issues
                    if repaired_ok:
                        new_usage = rep.solution.switch_usage()
                        # Swap reservations atomically: an exception
                        # between release and reserve can never leak.
                        with ledger.transaction():
                            ledger.release(res.usage)
                            ledger.reserve(new_usage)
                        res.solution = rep.solution
                        res.usage = new_usage
                        res.reroutes += 1
                        if metrics is not None:
                            metrics.inc("sim.online.repairs")
                        report.record_reroute(
                            res.request.name,
                            f"slot {slot}: "
                            f"{len(rep.broken_channels)} broken channels "
                            f"re-routed",
                        )
                        surviving.append(res)
                        continue
                    served_subset: Tuple[Hashable, ...] = ()
                    if self.allow_degradation:
                        served_subset = _largest_served_component(
                            res.solution.users, rep.kept_channels
                        )
                    degraded_solution: Optional[MUERPSolution] = None
                    if len(served_subset) >= 2:
                        members = set(served_subset)
                        channels = tuple(
                            c
                            for c in rep.kept_channels
                            if c.endpoints[0] in members
                        )
                        degraded_solution = MUERPSolution(
                            channels=channels,
                            users=frozenset(served_subset),
                            method=res.solution.method + "+degraded",
                            feasible=True,
                        )
                        if verifier is not None:
                            issues = verifier.audit(
                                base,
                                degraded_solution,
                                users=served_subset,
                            )
                            report.record_verification(
                                res.request.name,
                                not issues,
                                "; ".join(v.code for v in issues),
                            )
                            if issues:
                                degraded_solution = None
                    if degraded_solution is not None:
                        new_usage = degraded_solution.switch_usage()
                        with ledger.transaction():
                            ledger.release(res.usage)
                            ledger.reserve(new_usage)
                        res.solution = degraded_solution
                        res.usage = new_usage
                        res.degraded = True
                        if metrics is not None:
                            metrics.inc("sim.online.degradations")
                        report.record_degradation(
                            res.request.name,
                            f"slot {slot}: serving "
                            f"{len(served_subset)}/{len(res.request.users)} "
                            f"users after unrepairable fault",
                        )
                        surviving.append(res)
                        continue
                    # Abandon: no repair, no viable subset.
                    ledger.release(res.usage)
                    detail_parts = []
                    if cuts:
                        detail_parts.append(
                            f"cut fibers {sorted(cuts, key=repr)!r}"
                        )
                    if darks:
                        detail_parts.append(
                            f"dark switches {sorted(darks, key=repr)!r}"
                        )
                    _close_lost(
                        res.request,
                        report_mod.ABANDONED,
                        f"mid-service fault at slot {slot} "
                        f"({' and '.join(detail_parts)}); repair infeasible "
                        "and no >=2-user subset survives",
                        slot,
                        retries=res.retries,
                        reroutes=res.reroutes,
                        start_slot=res.start_slot,
                        failovers=res.failovers,
                    )
                reservations = surviving

            # 2b. Admission housekeeping: with releases and fault
            # handling settled, expire overdue queue entries and refresh
            # the brownout tier from the fresh load signal.
            tier = TIER_FULL
            if admission is not None:
                aqueue = admission.queue
                if aqueue is not None:
                    for entry in aqueue.expired(slot):
                        admission.count_expired()
                        admission.observe_queue_wait(
                            entry.request, slot - entry.enqueued_slot
                        )
                        status = (
                            report_mod.DEADLINE_EXCEEDED
                            if entry.request.deadline is not None
                            else report_mod.SHED
                        )
                        _close_lost(
                            entry.request,
                            status,
                            "expired in admission queue after "
                            f"{slot - entry.enqueued_slot} slots without "
                            "a limiter slot",
                            slot,
                        )
                tier = admission.begin_slot(slot, ledger)

            # 3. Admission: queued backlog, new arrivals, due waiters.
            candidates: List[_Waiter] = []
            if (
                admission is not None
                and admission.queue is not None
                and tier != TIER_SHED
            ):
                # Drain the backlog in policy order while the limiter
                # chain has headroom; the first throttle ends the drain
                # (no later entry may jump the priority order).
                for entry in admission.queue.drain_order():
                    decision = admission.decide(entry.request, slot)
                    if not decision.admitted:
                        break
                    admission.queue.remove(entry)
                    admission.observe_queue_wait(
                        entry.request, slot - entry.enqueued_slot
                    )
                    candidates.append(
                        _Waiter(request=entry.request, next_slot=slot)
                    )
            for request in by_arrival.get(slot, []):
                if admission is None:
                    candidates.append(
                        _Waiter(request=request, next_slot=slot)
                    )
                    continue
                admission.on_arrival(request, slot)
                if tier == TIER_SHED:
                    # SLO guard: arrivals within their tenant's
                    # contracted rate are spared the wholesale brownout
                    # refusal and still face the limiter chain — a
                    # compliant tenant is never starved by a flooding
                    # neighbour.
                    slo = admission.slo
                    if slo is not None and slo.within_guarantee(
                        tenant_label(request), slot
                    ):
                        if metrics is not None:
                            metrics.inc(
                                "sim.online.admission.slo_guard_passes"
                            )
                    else:
                        admission.count_shed("brownout", request=request)
                        _close_lost(
                            request,
                            report_mod.SHED,
                            f"brownout tier {TIER_SHED!r} at slot {slot}: "
                            "new arrivals refused under overload",
                            slot,
                        )
                        continue
                decision = admission.decide(request, slot)
                if decision.admitted:
                    candidates.append(
                        _Waiter(request=request, next_slot=slot)
                    )
                    continue
                if decision.action == "shed":
                    _close_lost(
                        request,
                        report_mod.SHED,
                        f"shed by admission policy {decision.policy!r}"
                        + (f": {decision.reason}" if decision.reason else ""),
                        slot,
                    )
                    continue
                # Throttled: park in the bounded queue (or shed if none).
                aqueue = admission.queue
                if aqueue is None:
                    admission.count_shed("no-queue", request=request)
                    _close_lost(
                        request,
                        report_mod.SHED,
                        f"throttled by {decision.policy!r} "
                        f"({decision.reason}) with no admission queue "
                        "configured",
                        slot,
                    )
                    continue
                queued, victim = aqueue.offer(request, slot)
                if victim is not None:
                    admission.count_shed(
                        aqueue.shed_policy, request=victim.request
                    )
                    if queued:
                        admission.observe_queue_wait(
                            victim.request, slot - victim.enqueued_slot
                        )
                    _close_lost(
                        victim.request,
                        report_mod.SHED,
                        f"evicted from full admission queue at slot "
                        f"{slot} ({aqueue.shed_policy})",
                        slot,
                    )
            due = [w for w in waiting if w.next_slot <= slot]
            waiting = [w for w in waiting if w.next_slot > slot]
            candidates.extend(due)

            for waiter in candidates:
                request = waiter.request
                if slot > request.last_start_slot:
                    status = (
                        report_mod.DEADLINE_EXCEEDED
                        if request.deadline is not None
                        else report_mod.REJECTED
                    )
                    _close_lost(
                        request,
                        status,
                        f"not started by slot {request.last_start_slot}",
                        slot,
                        retries=waiter.retries,
                    )
                    continue
                solution = self._route(request, ledger, network=damaged)
                degraded_admit = False
                if solution is None and admission is not None:
                    hedge = admission.hedge
                    if hedge is not None and hedge.should_hedge(
                        request, slot
                    ):
                        # Near its give-up point a failed attempt is
                        # fatal, so spend alternate solvers now.
                        for alt in hedge.methods:
                            if alt == self.method:
                                continue
                            hedge.record_attempt()
                            if metrics is not None:
                                metrics.inc("sim.online.admission.hedges")
                            solution = self._route(
                                request,
                                ledger,
                                network=damaged,
                                method=alt,
                            )
                            if solution is not None:
                                hedge.record_win(request.name, alt)
                                if metrics is not None:
                                    metrics.inc(
                                        "sim.online.admission.hedge_wins"
                                    )
                                break
                    if (
                        solution is None
                        and tier == TIER_DEGRADED
                        and self.allow_degradation
                        and len(request.users) > 2
                    ):
                        # Brownout degradation: admit the largest
                        # routable user subset instead of blocking.
                        ordered_users = sorted(request.users, key=repr)
                        for size in range(len(ordered_users) - 1, 1, -1):
                            sub = self._route(
                                request,
                                ledger,
                                network=damaged,
                                users=tuple(ordered_users[:size]),
                            )
                            if sub is not None:
                                solution = replace(
                                    sub, method=sub.method + "+degraded"
                                )
                                degraded_admit = True
                                break
                if solution is not None:
                    rset = None
                    if plan_replicas is not None and not degraded_admit:
                        rset = plan_replicas(
                            damaged,
                            solution,
                            ledger,
                            replication,
                            lambda view: self._route(
                                request, ledger, network=view
                            ),
                        )
                        usage = rset.total_usage()
                        if metrics is not None:
                            metrics.inc(
                                "sim.online.replicas_planned", rset.k
                            )
                            if rset.shortfall:
                                metrics.inc(
                                    "sim.online.replica_shortfall",
                                    rset.shortfall,
                                )
                    else:
                        usage = solution.switch_usage()
                        ledger.reserve(usage)
                    release_slot = slot + request.hold
                    if metrics is not None:
                        metrics.inc("sim.online.admitted")
                        metrics.observe(
                            "sim.online.queue_wait_slots",
                            slot - request.arrival,
                        )
                    if degraded_admit:
                        if metrics is not None:
                            metrics.inc(
                                "sim.online.admission.brownout_degradations"
                            )
                        report.record_degradation(
                            request.name,
                            f"slot {slot}: admitted under brownout "
                            f"serving {len(solution.users)}/"
                            f"{len(request.users)} users",
                        )
                    reservations.append(
                        _Reservation(
                            request=request,
                            solution=solution,
                            usage=usage,
                            start_slot=slot,
                            release_slot=release_slot,
                            retries=waiter.retries,
                            degraded=degraded_admit,
                            replicas=rset,
                        )
                    )
                    logger.debug(
                        "request %s admitted at slot %d (release %d)",
                        request.name,
                        slot,
                        release_slot,
                    )
                    continue
                # Blocked: consult the retry policy (or retry next slot).
                waiter.attempts += 1
                if self.retry_policy is not None:
                    delay = self.retry_policy.next_delay(waiter.attempts)
                    if delay is None:
                        _close_lost(
                            request,
                            report_mod.REJECTED,
                            f"retry policy exhausted after "
                            f"{waiter.attempts} attempts",
                            slot,
                            retries=waiter.retries,
                        )
                        continue
                else:
                    delay = 0
                next_slot = slot + 1 + delay
                if next_slot > request.last_start_slot:
                    status = (
                        report_mod.DEADLINE_EXCEEDED
                        if request.deadline is not None
                        else report_mod.REJECTED
                    )
                    _close_lost(
                        request,
                        status,
                        "blocked until give-up slot "
                        f"{request.last_start_slot}",
                        slot,
                        retries=waiter.retries,
                    )
                    continue
                if self.retry_policy is not None:
                    waiter.retries += 1
                    report.record_retries()
                    if metrics is not None:
                        metrics.inc("sim.online.retries")
                waiter.next_slot = next_slot
                waiting.append(waiter)
            slot += 1

        if metrics is not None:
            metrics.inc("sim.online.slots", slot)
        ordered = tuple(outcomes[r.name] for r in requests)
        if metrics is not None:
            # Fairness gauge: Jain's index over per-tenant acceptance
            # fractions (only meaningful when requests carry tenants).
            arrivals: Dict[str, int] = {}
            accepted: Dict[str, int] = {}
            for outcome in ordered:
                tenant = outcome.request.tenant
                if not tenant:
                    continue
                arrivals[tenant] = arrivals.get(tenant, 0) + 1
                if outcome.accepted:
                    accepted[tenant] = accepted.get(tenant, 0) + 1
            if arrivals:
                from repro.tenancy.fairness import jain_index

                fractions = [
                    accepted.get(tenant, 0) / count
                    for tenant, count in sorted(arrivals.items())
                ]
                metrics.set_gauge(
                    "sim.online.tenant.jain_index",
                    jain_index(fractions),
                )
        return OnlineResult(
            outcomes=ordered,
            slots_simulated=slot - 1,
            peak_qubit_usage=ledger.peak_usage(),
            resilience=report,
            admission=admission.stats() if admission is not None else None,
        )

    def _route(
        self,
        request: EntanglementRequest,
        residual: "Dict[Hashable, int] | CapacityLedger",
        network: Optional[QuantumNetwork] = None,
        method: Optional[str] = None,
        users: Optional[Tuple[Hashable, ...]] = None,
    ) -> Optional[MUERPSolution]:
        """Route one request against *residual* without mutating it.

        *method* overrides the scheduler's solver (hedged attempts);
        *users* overrides the request's group (brownout degradation).
        """
        net = self.network if network is None else network
        group = request.users if users is None else users
        how = self.method if method is None else method
        budget = (
            residual.as_dict()
            if isinstance(residual, CapacityLedger)
            else dict(residual)
        )
        if how == "prim":
            solution = solve_prim(
                net, group, rng=self.rng, residual=budget
            )
        else:
            solution = solve_conflict_free(
                net, group, rng=self.rng, residual=budget
            )
        return solution if solution.feasible else None
