"""Online entanglement-request scheduling over a shared network.

The paper plans routes *offline* for one user set (Sec. II-B).  A
deployed quantum Internet serves a stream of requests: entanglement
groups arrive over time, hold their switch qubits while the application
runs, and release them on departure.  This module adds that operational
layer on top of the routing algorithms:

* :class:`EntanglementRequest` — a user group with an arrival slot and a
  holding time;
* :class:`OnlineScheduler` — slot-driven loss system: on each slot it
  releases expired reservations, then tries to route that slot's
  arrivals with the current residual capacity (optionally retrying
  blocked requests for a bounded wait).  Blocked-and-expired requests
  are lost;
* :class:`OnlineResult` — acceptance ratio, rates, and qubit-utilization
  telemetry, the metrics an operator dimensioning switch memory cares
  about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.conflict_free import solve_conflict_free
from repro.core.prim_based import solve_prim
from repro.core.problem import MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class EntanglementRequest:
    """One entanglement request in the arrival stream.

    Attributes:
        name: Unique request id.
        users: The quantum users to entangle (≥ 2).
        arrival: Slot index at which the request arrives.
        hold: Number of slots the reservation is held once routed.
        max_wait: Slots the request may wait when blocked (0 = pure
            loss system).
    """

    name: str
    users: Tuple[Hashable, ...]
    arrival: int
    hold: int = 1
    max_wait: int = 0

    def __post_init__(self) -> None:
        if len(self.users) < 2:
            raise ValueError(f"request {self.name!r} needs >= 2 users")
        if len(set(self.users)) != len(self.users):
            raise ValueError(f"request {self.name!r} has duplicate users")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.hold < 1:
            raise ValueError("hold must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one request."""

    request: EntanglementRequest
    accepted: bool
    solution: Optional[MUERPSolution]
    start_slot: Optional[int]
    release_slot: Optional[int]

    @property
    def waited(self) -> int:
        if self.start_slot is None:
            return 0
        return self.start_slot - self.request.arrival


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate outcome of an online run."""

    outcomes: Tuple[RequestOutcome, ...]
    slots_simulated: int
    peak_qubit_usage: Dict[Hashable, int]

    @property
    def n_accepted(self) -> int:
        return sum(1 for o in self.outcomes if o.accepted)

    @property
    def acceptance_ratio(self) -> float:
        if not self.outcomes:
            return 1.0
        return self.n_accepted / len(self.outcomes)

    @property
    def mean_accepted_rate(self) -> float:
        rates = [o.solution.rate for o in self.outcomes if o.accepted]
        if not rates:
            return 0.0
        return sum(rates) / len(rates)

    def outcome_for(self, name: str) -> RequestOutcome:
        for outcome in self.outcomes:
            if outcome.request.name == name:
                return outcome
        raise KeyError(f"no outcome for request {name!r}")


class OnlineScheduler:
    """Slot-driven online admission and routing.

    Args:
        network: The shared quantum network.
        method: Per-request solver: ``"prim"`` (default) or
            ``"conflict_free"``.
        rng: Random source forwarded to the solver.
    """

    def __init__(
        self,
        network: QuantumNetwork,
        method: str = "prim",
        rng: RngLike = None,
    ) -> None:
        if method not in ("prim", "conflict_free"):
            raise ValueError(f"unsupported method {method!r}")
        self.network = network
        self.method = method
        self.rng = ensure_rng(rng)

    def run(self, requests: Sequence[EntanglementRequest]) -> OnlineResult:
        """Simulate the whole arrival stream; returns the telemetry."""
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise ValueError("request names must be unique")

        residual = self.network.residual_qubits()
        budgets = dict(residual)
        peak_usage: Dict[Hashable, int] = {s: 0 for s in residual}

        #: (release_slot, usage dict) of active reservations.
        active: List[Tuple[int, Dict[Hashable, int]]] = []
        #: requests waiting for capacity, with their give-up slot.
        waiting: List[Tuple[int, EntanglementRequest]] = []
        outcomes: Dict[str, RequestOutcome] = {}

        by_arrival: Dict[int, List[EntanglementRequest]] = {}
        for request in requests:
            by_arrival.setdefault(request.arrival, []).append(request)
        if not requests:
            return OnlineResult((), 0, peak_usage)
        horizon = max(r.arrival + r.max_wait for r in requests) + 1

        last_activity = 0
        for slot in range(horizon + 1):
            # 1. Release expired reservations.
            still_active = []
            for release_slot, usage in active:
                if release_slot <= slot:
                    for switch, qubits in usage.items():
                        residual[switch] += qubits
                else:
                    still_active.append((release_slot, usage))
            active = still_active

            # 2. Gather this slot's candidates: new arrivals + waiters.
            candidates = list(by_arrival.get(slot, []))
            retained: List[Tuple[int, EntanglementRequest]] = []
            for give_up, request in waiting:
                candidates.append(request)
            waiting = []

            # 3. Try to admit each candidate (arrival order).
            for request in candidates:
                solution = self._route(request, residual)
                if solution is not None:
                    usage = solution.switch_usage()
                    for switch, qubits in usage.items():
                        residual[switch] -= qubits
                        used_now = budgets[switch] - residual[switch]
                        peak_usage[switch] = max(peak_usage[switch], used_now)
                    release_slot = slot + request.hold
                    active.append((release_slot, usage))
                    outcomes[request.name] = RequestOutcome(
                        request=request,
                        accepted=True,
                        solution=solution,
                        start_slot=slot,
                        release_slot=release_slot,
                    )
                    last_activity = max(last_activity, release_slot)
                elif slot < request.arrival + request.max_wait:
                    retained.append((request.arrival + request.max_wait, request))
                else:
                    outcomes[request.name] = RequestOutcome(
                        request=request,
                        accepted=False,
                        solution=None,
                        start_slot=None,
                        release_slot=None,
                    )
            waiting = retained

        ordered = tuple(outcomes[r.name] for r in requests)
        return OnlineResult(
            outcomes=ordered,
            slots_simulated=max(horizon, last_activity),
            peak_qubit_usage=peak_usage,
        )

    def _route(
        self,
        request: EntanglementRequest,
        residual: Dict[Hashable, int],
    ) -> Optional[MUERPSolution]:
        """Route one request against *residual* without mutating it."""
        budget = dict(residual)
        if self.method == "prim":
            solution = solve_prim(
                self.network, request.users, rng=self.rng, residual=budget
            )
        else:
            solution = solve_conflict_free(
                self.network, request.users, rng=self.rng, residual=budget
            )
        return solution if solution.feasible else None
