"""Stochastic simulation of the entanglement process.

The paper's evaluation metric is the *analytic* entanglement rate
(Eq. 1/Eq. 2).  This package adds the physical-process view:

* :mod:`repro.sim.protocol` — vectorized Monte-Carlo trials of a routed
  entanglement tree: every quantum link flips a ``p = exp(-αL)`` coin
  and every BSM a ``q`` coin per attempt, exactly the "all succeed
  simultaneously during the fixed time period" semantics of Sec. II-C.
  Used to *validate* that measured success frequencies converge to the
  analytic rates.
* :mod:`repro.sim.engine` — a small discrete-event simulator that plays
  the offline-plan protocol of Sec. II-B slot by slot (request → plan →
  link generation → swapping), reporting time-to-first-entanglement.
"""

from repro.sim.protocol import (
    MonteCarloResult,
    simulate_channel,
    simulate_solution,
)
from repro.sim.engine import (
    Event,
    EventQueue,
    SlotsToSuccessSummary,
    SlottedEntanglementSimulator,
    SlottedRunResult,
)
from repro.sim.memory import (
    MemoryProtocolSimulator,
    MemoryRunResult,
    MemoryComparison,
    compare_memory_windows,
)
from repro.sim.online import (
    EntanglementRequest,
    OnlineScheduler,
    OnlineResult,
    RequestOutcome,
)
from repro.sim.workload import (
    WorkloadSpec,
    generate_workload,
    offered_load_summary,
    user_popularity,
)

__all__ = [
    "MonteCarloResult",
    "simulate_channel",
    "simulate_solution",
    "Event",
    "EventQueue",
    "SlotsToSuccessSummary",
    "SlottedEntanglementSimulator",
    "SlottedRunResult",
    "MemoryProtocolSimulator",
    "MemoryRunResult",
    "MemoryComparison",
    "compare_memory_windows",
    "EntanglementRequest",
    "OnlineScheduler",
    "OnlineResult",
    "RequestOutcome",
    "WorkloadSpec",
    "generate_workload",
    "offered_load_summary",
    "user_popularity",
]
