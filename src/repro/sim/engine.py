"""Discrete-event simulation of the offline-planned entanglement protocol.

Sec. II-B of the paper: a central controller collects requests, computes
routes offline, distributes the plan classically, and the network then
executes synchronized attempt slots — links generate, switches swap —
until the whole entanglement tree succeeds in a single slot.

:class:`SlottedEntanglementSimulator` plays this out event by event.  Per
slot it schedules one ``link-attempt`` event per quantum link and one
``swap-attempt`` per BSM; the slot succeeds iff all do.  The number of
slots to first success is geometric with mean ``1/P`` where ``P`` is
Eq. (2) — a relation the test suite verifies.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.problem import MUERPSolution
from repro.network.errors import DeadlineExceededError, TransientFaultError
from repro.network.graph import QuantumNetwork
from repro.network.link import fiber_key
from repro.utils.rng import RngLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultInjector
    from repro.resilience.retry import RetryPolicy

logger = logging.getLogger("repro.sim.engine")


@dataclass(order=True)
class Event:
    """A timestamped simulation event.

    Ordering is (time, sequence) so simultaneous events preserve their
    scheduling order deterministically.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Dict = field(compare=False, default_factory=dict)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, kind: str, **payload) -> Event:
        """Add an event at *time* and return it."""
        if time < 0 or not math.isfinite(time):
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        event = Event(time, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)


@dataclass(frozen=True)
class SlottedRunResult:
    """Outcome of a slotted protocol run.

    Attributes:
        slots_used: Attempt slots executed (== slots to first success
            when ``succeeded``).
        succeeded: Whether the tree ever fully succeeded.
        analytic_rate: Eq. (2) of the executed solution — the expected
            slots to success is its reciprocal.
        link_attempts: Total link-generation events processed.
        swap_attempts: Total BSM events processed.
        log: Event trace (only populated when tracing is enabled).
        retries_spent: Retries consumed from the retry policy (0 when
            no policy was configured).
        faulted_slots: Slots in which an injected structural fault made
            the attempt impossible (no coins were flipped).
        abort_reason: Why the run stopped without success (``None`` on
            success): ``"max-slots"`` or ``"retry-budget-exhausted"``.
    """

    slots_used: int
    succeeded: bool
    analytic_rate: float
    link_attempts: int
    swap_attempts: int
    log: Tuple[str, ...] = ()
    retries_spent: int = 0
    faulted_slots: int = 0
    abort_reason: Optional[str] = None

    @property
    def expected_slots(self) -> float:
        """Theoretical mean slots to success: ``1 / P``."""
        if self.analytic_rate <= 0.0:
            return math.inf
        return 1.0 / self.analytic_rate


@dataclass(frozen=True)
class SlotsToSuccessSummary:
    """Explicit report of repeated slots-to-success measurements.

    Unlike the bare-float mean, this keeps the failure count visible so
    an all-failure batch can never masquerade as a measurement.

    Attributes:
        runs: Number of independent protocol runs.
        successes: Runs that reached full entanglement.
        failures: Runs that hit the slot cap (or aborted) first.
        mean_successful_slots: Mean slots over the *successful* runs
            (``nan`` when none succeeded).
    """

    runs: int
    successes: int
    failures: int
    mean_successful_slots: float

    @property
    def all_failed(self) -> bool:
        return self.runs > 0 and self.successes == 0

    @property
    def mean_slots(self) -> float:
        """Legacy aggregate: ``inf`` as soon as any run failed."""
        if self.failures:
            return math.inf
        return self.mean_successful_slots

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mean = (
            "n/a"
            if math.isnan(self.mean_successful_slots)
            else f"{self.mean_successful_slots:.2f}"
        )
        return (
            f"SlotsToSuccess[{self.successes}/{self.runs} succeeded, "
            f"mean {mean} slots]"
        )


class SlottedEntanglementSimulator:
    """Executes a routed solution slot by slot until it succeeds.

    Args:
        network: The quantum network the plan was computed for.
        solution: The routed entanglement tree to execute.
        rng: Random source (int seed, Generator, or None).
        slot_duration: Wall-clock length of one synchronized slot
            (arbitrary units; affects timestamps only).
        trace: Record a human-readable event log (costly; tests only).
        retry_policy: Optional :class:`~repro.resilience.retry.RetryPolicy`
            consulted after every failed slot instead of blindly
            re-attempting — failed attempts wait the policy's delay and
            the run aborts when the policy is exhausted.
        fault_injector: Optional
            :class:`~repro.resilience.faults.FaultInjector` advanced
            once per slot; cut fibers / dark switches used by the plan
            make the slot impossible, and decoherence storms scale every
            success probability.  A *permanent* fault on a planned
            element raises :class:`TransientFaultError` so the caller
            can re-route.
        start_slot: Absolute slot offset fed to the fault injector
            (lets a re-routed continuation share one fault timeline).
    """

    def __init__(
        self,
        network: QuantumNetwork,
        solution: MUERPSolution,
        rng: RngLike = None,
        slot_duration: float = 1.0,
        trace: bool = False,
        retry_policy: Optional["RetryPolicy"] = None,
        fault_injector: Optional["FaultInjector"] = None,
        start_slot: int = 0,
    ) -> None:
        if not solution.feasible:
            raise ValueError("cannot execute an infeasible solution")
        if start_slot < 0:
            raise ValueError(f"start_slot must be >= 0, got {start_slot}")
        self.network = network
        self.solution = solution
        self.rng = ensure_rng(rng)
        self.slot_duration = slot_duration
        self.trace = trace
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.start_slot = start_slot
        self._links: List[Tuple[Hashable, Hashable, float]] = []
        self._swaps: List[Hashable] = []
        for channel in solution.channels:
            for u, v in zip(channel.path, channel.path[1:]):
                fiber = network.fiber_between(u, v)
                if fiber is None:
                    raise ValueError(f"plan uses missing fiber {u!r}-{v!r}")
                self._links.append(
                    (u, v, fiber.success_probability(network.params.alpha))
                )
            self._swaps.extend(channel.switches)
        self._link_keys = {fiber_key(u, v) for u, v, _ in self._links}
        self._swap_set = set(self._swaps)

    def _structural_faults(
        self,
    ) -> Tuple[Tuple[Hashable, ...], Tuple[Hashable, ...]]:
        """Planned fibers/switches currently down per the injector."""
        injector = self.fault_injector
        assert injector is not None
        cut = tuple(
            sorted(self._link_keys & injector.active_fiber_cuts, key=repr)
        )
        dark = tuple(
            sorted(self._swap_set & injector.active_dark_switches, key=repr)
        )
        return cut, dark

    def run(
        self,
        max_slots: int = 1_000_000,
        deadline_slot: Optional[int] = None,
    ) -> SlottedRunResult:
        """Run until the first fully successful slot (or *max_slots*).

        Args:
            max_slots: Cap on elapsed slots (waits included).
            deadline_slot: Absolute slot (on the ``start_slot`` clock)
                at which the run must have completed; reaching it raises
                :class:`DeadlineExceededError` with the partial result
                attached.

        Raises:
            TransientFaultError: A *permanent* injected fault killed a
                fiber or switch this plan needs; the partial result and
                the dead elements ride on the exception so the caller
                can re-route.
            DeadlineExceededError: ``deadline_slot`` passed first.
        """
        queue = EventQueue()
        log: List[str] = []
        link_attempts = 0
        swap_attempts = 0
        retries_spent = 0
        faulted_slots = 0
        failures = 0
        q = self.network.params.swap_prob
        injector = self.fault_injector

        def _partial(reason: Optional[str], slots: int) -> SlottedRunResult:
            return SlottedRunResult(
                slots_used=slots,
                succeeded=False,
                analytic_rate=self.solution.rate,
                link_attempts=link_attempts,
                swap_attempts=swap_attempts,
                log=tuple(log),
                retries_spent=retries_spent,
                faulted_slots=faulted_slots,
                abort_reason=reason,
            )

        slot = 0
        while slot < max_slots:
            absolute = self.start_slot + slot
            if deadline_slot is not None and absolute >= deadline_slot:
                logger.debug(
                    "deadline %d reached at slot %d", deadline_slot, absolute
                )
                raise DeadlineExceededError(
                    deadline_slot, absolute, partial=_partial("deadline", slot)
                )
            multiplier = 1.0
            if injector is not None:
                injector.advance(absolute)
                multiplier = injector.success_multiplier
                cut, dark = self._structural_faults()
                if cut or dark:
                    faulted_slots += 1
                    permanent_cut = tuple(
                        k for k in cut if k in injector.permanent_fiber_cuts
                    )
                    permanent_dark = tuple(
                        s
                        for s in dark
                        if s in injector.permanent_dark_switches
                    )
                    if permanent_cut or permanent_dark:
                        logger.info(
                            "slot %d: permanent fault on plan "
                            "(fibers=%r switches=%r)",
                            absolute,
                            permanent_cut,
                            permanent_dark,
                        )
                        raise TransientFaultError(
                            fibers=permanent_cut,
                            switches=permanent_dark,
                            partial=_partial("faulted", slot + 1),
                        )
                    if self.trace:
                        log.append(
                            f"t={absolute * self.slot_duration:.2f} "
                            f"slot-faulted cut={cut!r} dark={dark!r}"
                        )
                    # Transient fault: nothing can be attempted this
                    # slot; it counts as one failed attempt.
                    failures += 1
                    delay = self._consult_retry(failures)
                    if delay is None:
                        return _partial("retry-budget-exhausted", slot + 1)
                    if self.retry_policy is not None:
                        retries_spent += 1
                    slot += 1 + delay
                    continue

            slot_start = absolute * self.slot_duration
            # Phase 1: all quantum links attempt generation.
            for u, v, p in self._links:
                queue.schedule(
                    slot_start, "link-attempt", u=u, v=v, p=p * multiplier
                )
            # Phase 2 (after links): all switches attempt their BSMs.
            for switch in self._swaps:
                queue.schedule(
                    slot_start + 0.5 * self.slot_duration,
                    "swap-attempt",
                    switch=switch,
                )

            slot_ok = True
            while len(queue):
                event = queue.pop()
                if event.kind == "link-attempt":
                    link_attempts += 1
                    ok = bool(self.rng.uniform() < event.payload["p"])
                elif event.kind == "swap-attempt":
                    swap_attempts += 1
                    ok = bool(self.rng.uniform() < q * multiplier)
                else:  # pragma: no cover - no other kinds scheduled
                    raise AssertionError(f"unknown event {event.kind!r}")
                if self.trace:
                    log.append(
                        f"t={event.time:.2f} {event.kind} "
                        f"{event.payload} -> {'ok' if ok else 'fail'}"
                    )
                slot_ok &= ok
            if slot_ok:
                return SlottedRunResult(
                    slots_used=slot + 1,
                    succeeded=True,
                    analytic_rate=self.solution.rate,
                    link_attempts=link_attempts,
                    swap_attempts=swap_attempts,
                    log=tuple(log),
                    retries_spent=retries_spent,
                    faulted_slots=faulted_slots,
                )
            failures += 1
            delay = self._consult_retry(failures)
            if delay is None:
                return _partial("retry-budget-exhausted", slot + 1)
            if self.retry_policy is not None:
                retries_spent += 1
            slot += 1 + delay
        return _partial("max-slots", max_slots)

    def _consult_retry(self, failures: int) -> Optional[int]:
        """Delay before the next attempt, or None when giving up.

        Without a policy this is the paper's behavior: re-attempt every
        slot forever (delay 0).
        """
        if self.retry_policy is None:
            return 0
        return self.retry_policy.next_delay(failures)

    def mean_slots_to_success(
        self, runs: int = 100, max_slots: int = 1_000_000
    ) -> float:
        """Average slots-to-success over several runs (∞ if any fails).

        The ``inf`` sentinel means *measurement truncated*, not "takes
        forever"; a WARNING is logged when it happens.  Callers that
        need the full picture (how many runs failed, the mean over the
        successful ones) should use :meth:`slots_to_success_summary`.
        """
        totals = []
        for _ in range(runs):
            result = self.run(max_slots)
            if not result.succeeded:
                logger.warning(
                    "mean_slots_to_success: run failed within %d slots "
                    "(reason=%s); reporting inf — use "
                    "slots_to_success_summary() for the explicit report",
                    max_slots,
                    result.abort_reason,
                )
                return math.inf
            totals.append(result.slots_used)
        return float(np.mean(totals))

    def parallel_slots_to_success(
        self,
        runs: int = 100,
        seed: int = 0,
        max_slots: int = 1_000_000,
        workers: int = 1,
        engine=None,
    ) -> SlotsToSuccessSummary:
        """Sharded :meth:`slots_to_success_summary` with per-run RNGs.

        Delegates to :func:`repro.exec.montecarlo.
        parallel_slots_to_success`: each run gets an index-seeded
        generator (ignoring this simulator's ``rng``), so the summary is
        identical for every worker count — but *not* bit-equal to the
        serial method, whose single RNG stream is order-dependent by
        construction.  Only plain simulations qualify: fault injectors
        and retry policies carry mutable cross-run state that breaks run
        independence.
        """
        if self.fault_injector is not None or self.retry_policy is not None:
            raise ValueError(
                "parallel_slots_to_success requires a plain simulator "
                "(no fault injector or retry policy): those carry state "
                "across runs, so the runs are not independent"
            )
        from repro.exec.montecarlo import parallel_slots_to_success

        return parallel_slots_to_success(
            self.network,
            self.solution,
            runs=runs,
            seed=seed,
            max_slots=max_slots,
            workers=workers,
            engine=engine,
        )

    def slots_to_success_summary(
        self, runs: int = 100, max_slots: int = 1_000_000
    ) -> SlotsToSuccessSummary:
        """Measure slots-to-success *runs* times with explicit failures.

        Unlike :meth:`mean_slots_to_success` this never hides an
        all-failure batch behind a bare ``inf``: the summary carries the
        success/failure split and the mean over successful runs only.
        """
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        successes = 0
        failures = 0
        totals: List[int] = []
        for _ in range(runs):
            result = self.run(max_slots)
            if result.succeeded:
                successes += 1
                totals.append(result.slots_used)
            else:
                failures += 1
        mean = float(np.mean(totals)) if totals else math.nan
        if failures:
            logger.info(
                "slots_to_success_summary: %d/%d runs failed within %d slots",
                failures,
                runs,
                max_slots,
            )
        return SlotsToSuccessSummary(
            runs=runs,
            successes=successes,
            failures=failures,
            mean_successful_slots=mean,
        )
