"""Discrete-event simulation of the offline-planned entanglement protocol.

Sec. II-B of the paper: a central controller collects requests, computes
routes offline, distributes the plan classically, and the network then
executes synchronized attempt slots — links generate, switches swap —
until the whole entanglement tree succeeds in a single slot.

:class:`SlottedEntanglementSimulator` plays this out event by event.  Per
slot it schedules one ``link-attempt`` event per quantum link and one
``swap-attempt`` per BSM; the slot succeeds iff all do.  The number of
slots to first success is geometric with mean ``1/P`` where ``P`` is
Eq. (2) — a relation the test suite verifies.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.problem import MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


@dataclass(order=True)
class Event:
    """A timestamped simulation event.

    Ordering is (time, sequence) so simultaneous events preserve their
    scheduling order deterministically.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Dict = field(compare=False, default_factory=dict)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, kind: str, **payload) -> Event:
        """Add an event at *time* and return it."""
        if time < 0 or not math.isfinite(time):
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        event = Event(time, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)


@dataclass(frozen=True)
class SlottedRunResult:
    """Outcome of a slotted protocol run.

    Attributes:
        slots_used: Attempt slots executed (== slots to first success
            when ``succeeded``).
        succeeded: Whether the tree ever fully succeeded.
        analytic_rate: Eq. (2) of the executed solution — the expected
            slots to success is its reciprocal.
        link_attempts: Total link-generation events processed.
        swap_attempts: Total BSM events processed.
        log: Event trace (only populated when tracing is enabled).
    """

    slots_used: int
    succeeded: bool
    analytic_rate: float
    link_attempts: int
    swap_attempts: int
    log: Tuple[str, ...] = ()

    @property
    def expected_slots(self) -> float:
        """Theoretical mean slots to success: ``1 / P``."""
        if self.analytic_rate <= 0.0:
            return math.inf
        return 1.0 / self.analytic_rate


class SlottedEntanglementSimulator:
    """Executes a routed solution slot by slot until it succeeds.

    Args:
        network: The quantum network the plan was computed for.
        solution: The routed entanglement tree to execute.
        rng: Random source (int seed, Generator, or None).
        slot_duration: Wall-clock length of one synchronized slot
            (arbitrary units; affects timestamps only).
        trace: Record a human-readable event log (costly; tests only).
    """

    def __init__(
        self,
        network: QuantumNetwork,
        solution: MUERPSolution,
        rng: RngLike = None,
        slot_duration: float = 1.0,
        trace: bool = False,
    ) -> None:
        if not solution.feasible:
            raise ValueError("cannot execute an infeasible solution")
        self.network = network
        self.solution = solution
        self.rng = ensure_rng(rng)
        self.slot_duration = slot_duration
        self.trace = trace
        self._links: List[Tuple[Hashable, Hashable, float]] = []
        self._swaps: List[Hashable] = []
        for channel in solution.channels:
            for u, v in zip(channel.path, channel.path[1:]):
                fiber = network.fiber_between(u, v)
                if fiber is None:
                    raise ValueError(f"plan uses missing fiber {u!r}-{v!r}")
                self._links.append(
                    (u, v, fiber.success_probability(network.params.alpha))
                )
            self._swaps.extend(channel.switches)

    def run(self, max_slots: int = 1_000_000) -> SlottedRunResult:
        """Run until the first fully successful slot (or *max_slots*)."""
        queue = EventQueue()
        log: List[str] = []
        link_attempts = 0
        swap_attempts = 0
        q = self.network.params.swap_prob

        for slot in range(max_slots):
            slot_start = slot * self.slot_duration
            # Phase 1: all quantum links attempt generation.
            for u, v, p in self._links:
                queue.schedule(slot_start, "link-attempt", u=u, v=v, p=p)
            # Phase 2 (after links): all switches attempt their BSMs.
            for switch in self._swaps:
                queue.schedule(
                    slot_start + 0.5 * self.slot_duration,
                    "swap-attempt",
                    switch=switch,
                )

            slot_ok = True
            while len(queue):
                event = queue.pop()
                if event.kind == "link-attempt":
                    link_attempts += 1
                    ok = bool(self.rng.uniform() < event.payload["p"])
                elif event.kind == "swap-attempt":
                    swap_attempts += 1
                    ok = bool(self.rng.uniform() < q)
                else:  # pragma: no cover - no other kinds scheduled
                    raise AssertionError(f"unknown event {event.kind!r}")
                if self.trace:
                    log.append(
                        f"t={event.time:.2f} {event.kind} "
                        f"{event.payload} -> {'ok' if ok else 'fail'}"
                    )
                slot_ok &= ok
            if slot_ok:
                return SlottedRunResult(
                    slots_used=slot + 1,
                    succeeded=True,
                    analytic_rate=self.solution.rate,
                    link_attempts=link_attempts,
                    swap_attempts=swap_attempts,
                    log=tuple(log),
                )
        return SlottedRunResult(
            slots_used=max_slots,
            succeeded=False,
            analytic_rate=self.solution.rate,
            link_attempts=link_attempts,
            swap_attempts=swap_attempts,
            log=tuple(log),
        )

    def mean_slots_to_success(
        self, runs: int = 100, max_slots: int = 1_000_000
    ) -> float:
        """Average slots-to-success over several runs (∞ if any fails)."""
        totals = []
        for _ in range(runs):
            result = self.run(max_slots)
            if not result.succeeded:
                return math.inf
            totals.append(result.slots_used)
        return float(np.mean(totals))
