"""Request-workload generation for the online scheduler.

Synthesizes :class:`~repro.sim.online.EntanglementRequest` streams with
controlled statistics, so capacity-planning studies
(``ext-online-load``, ``examples/online_service.py``) can dial traffic
shape independently of the topology:

* **Poisson arrivals** with configurable rate;
* **group sizes** from a truncated geometric distribution (most
  requests are pairs, a tail wants many-user GHZ-style groups);
* **hotspot skew** — a Zipf-like preference for popular users, so some
  switches see concentrated demand (the hard case for budgets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.sim.online import EntanglementRequest
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical shape of a request stream.

    Attributes:
        arrival_rate: Mean requests per slot (Poisson).
        horizon: Number of slots over which requests arrive.
        mean_group_size: Mean of the truncated-geometric group size
            (minimum 2).
        max_group_size: Hard cap on group size.
        mean_hold: Mean holding time in slots (geometric, minimum 1).
        max_wait: Patience of blocked requests, in slots.
        hotspot_skew: 0 = uniform user popularity; larger values
            concentrate requests on few users (Zipf exponent).
        n_tenants: Number of tenant labels to spread requests over
            (uniformly at random); 0 leaves requests untenanted and
            the rng stream byte-identical to older versions.  Tenants
            are what per-tenant admission limiters key on.
    """

    arrival_rate: float = 0.5
    horizon: int = 50
    mean_group_size: float = 2.5
    max_group_size: int = 5
    mean_hold: float = 4.0
    max_wait: int = 0
    hotspot_skew: float = 0.0
    n_tenants: int = 0

    def __post_init__(self) -> None:
        require_positive(self.arrival_rate, "arrival_rate")
        require_positive(self.mean_hold, "mean_hold")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.mean_group_size < 2:
            raise ValueError("mean_group_size must be >= 2")
        if self.max_group_size < 2:
            raise ValueError("max_group_size must be >= 2")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.hotspot_skew < 0:
            raise ValueError("hotspot_skew must be >= 0")
        if self.n_tenants < 0:
            raise ValueError("n_tenants must be >= 0")


def user_popularity(
    n_users: int, skew: float
) -> np.ndarray:
    """Zipf-style popularity weights over *n_users* (normalized)."""
    if n_users < 1:
        raise ValueError("need at least one user")
    ranks = np.arange(1, n_users + 1, dtype=float)
    if skew == 0.0:
        weights = np.ones(n_users)
    else:
        weights = ranks ** (-skew)
    return weights / weights.sum()


def generate_workload(
    users: Sequence[Hashable],
    spec: Optional[WorkloadSpec] = None,
    rng: RngLike = None,
) -> List[EntanglementRequest]:
    """Draw a request stream over *users* according to *spec*.

    Deterministic under a seed; request names are ``"req-<k>"`` in
    arrival order.
    """
    if len(users) < 2:
        raise ValueError("need at least 2 users")
    spec = spec or WorkloadSpec()
    generator = ensure_rng(rng)
    popularity = user_popularity(len(users), spec.hotspot_skew)

    requests: List[EntanglementRequest] = []
    counter = 0
    max_size = min(spec.max_group_size, len(users))
    # Geometric(q) on {0,1,...} shifted by 2, truncated at max_size.
    geometric_p = 1.0 / max(spec.mean_group_size - 1.0, 1e-9)
    geometric_p = min(max(geometric_p, 1e-6), 1.0)
    hold_p = 1.0 / max(spec.mean_hold, 1.0)

    for slot in range(spec.horizon):
        n_arrivals = int(generator.poisson(spec.arrival_rate))
        for _ in range(n_arrivals):
            size = 2 + int(generator.geometric(geometric_p)) - 1
            size = min(size, max_size)
            members = generator.choice(
                len(users), size=size, replace=False, p=popularity
            )
            hold = int(generator.geometric(hold_p))
            tenant = None
            if spec.n_tenants > 0:
                tenant = f"tenant-{int(generator.integers(spec.n_tenants))}"
            requests.append(
                EntanglementRequest(
                    name=f"req-{counter}",
                    users=tuple(users[int(i)] for i in members),
                    arrival=slot,
                    hold=max(1, hold),
                    max_wait=spec.max_wait,
                    tenant=tenant,
                )
            )
            counter += 1
    return requests


def offered_load_summary(
    requests: Sequence[EntanglementRequest],
) -> dict:
    """Basic workload statistics (for reports and sanity checks)."""
    if not requests:
        return {
            "n_requests": 0,
            "mean_group_size": 0.0,
            "mean_hold": 0.0,
            "horizon": 0,
        }
    sizes = [len(r.users) for r in requests]
    holds = [r.hold for r in requests]
    return {
        "n_requests": len(requests),
        "mean_group_size": float(np.mean(sizes)),
        "mean_hold": float(np.mean(holds)),
        "horizon": max(r.arrival for r in requests) + 1,
    }
