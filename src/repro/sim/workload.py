"""Request-workload generation for the online scheduler.

Synthesizes :class:`~repro.sim.online.EntanglementRequest` streams with
controlled statistics, so capacity-planning studies
(``ext-online-load``, ``examples/online_service.py``) can dial traffic
shape independently of the topology:

* **Poisson arrivals** with configurable rate;
* **group sizes** from a truncated geometric distribution (most
  requests are pairs, a tail wants many-user GHZ-style groups);
* **hotspot skew** — a Zipf-like preference for popular users, so some
  switches see concentrated demand (the hard case for budgets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.sim.online import EntanglementRequest
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical shape of a request stream.

    Attributes:
        arrival_rate: Mean requests per slot (Poisson).
        horizon: Number of slots over which requests arrive.
        mean_group_size: Mean of the truncated-geometric group size
            (minimum 2).
        max_group_size: Hard cap on group size.
        mean_hold: Mean holding time in slots (geometric, minimum 1).
        max_wait: Patience of blocked requests, in slots.
        hotspot_skew: 0 = uniform user popularity; larger values
            concentrate requests on few users (Zipf exponent).
        n_tenants: Number of tenant labels to spread requests over
            (uniformly at random); 0 leaves requests untenanted and
            the rng stream byte-identical to older versions.  Tenants
            are what per-tenant admission limiters key on.
        tenant_skew: Zipf exponent over tenant popularity: 0 keeps the
            historical uniform draw (and rng stream); larger values
            concentrate traffic on the low-numbered tenants —
            ``tenant-0`` becomes the heavy hitter the fairness gates
            stress.  Requires ``n_tenants > 0`` to have any effect.
        diurnal_amplitude: Relative swing of a sinusoidal load shape in
            [0, 1]: the per-slot arrival rate becomes ``rate × (1 +
            a·sin(2π·slot/period))``.  0 keeps the flat Poisson rate
            (and the historical rng stream).
        diurnal_period: Slots per diurnal cycle (>= 2).
    """

    arrival_rate: float = 0.5
    horizon: int = 50
    mean_group_size: float = 2.5
    max_group_size: int = 5
    mean_hold: float = 4.0
    max_wait: int = 0
    hotspot_skew: float = 0.0
    n_tenants: int = 0
    tenant_skew: float = 0.0
    diurnal_amplitude: float = 0.0
    diurnal_period: int = 24

    def __post_init__(self) -> None:
        require_positive(self.arrival_rate, "arrival_rate")
        require_positive(self.mean_hold, "mean_hold")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.mean_group_size < 2:
            raise ValueError("mean_group_size must be >= 2")
        if self.max_group_size < 2:
            raise ValueError("max_group_size must be >= 2")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.hotspot_skew < 0:
            raise ValueError("hotspot_skew must be >= 0")
        if self.n_tenants < 0:
            raise ValueError("n_tenants must be >= 0")
        if self.tenant_skew < 0:
            raise ValueError("tenant_skew must be >= 0")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if self.diurnal_period < 2:
            raise ValueError("diurnal_period must be >= 2")


def user_popularity(
    n_users: int, skew: float
) -> np.ndarray:
    """Zipf-style popularity weights over *n_users* (normalized)."""
    if n_users < 1:
        raise ValueError("need at least one user")
    ranks = np.arange(1, n_users + 1, dtype=float)
    if skew == 0.0:
        weights = np.ones(n_users)
    else:
        weights = ranks ** (-skew)
    return weights / weights.sum()


def generate_workload(
    users: Sequence[Hashable],
    spec: Optional[WorkloadSpec] = None,
    rng: RngLike = None,
) -> List[EntanglementRequest]:
    """Draw a request stream over *users* according to *spec*.

    Deterministic under a seed; request names are ``"req-<k>"`` in
    arrival order.
    """
    if len(users) < 2:
        raise ValueError("need at least 2 users")
    spec = spec or WorkloadSpec()
    generator = ensure_rng(rng)
    popularity = user_popularity(len(users), spec.hotspot_skew)
    tenant_popularity = None
    if spec.n_tenants > 0 and spec.tenant_skew > 0:
        tenant_popularity = user_popularity(
            spec.n_tenants, spec.tenant_skew
        )

    requests: List[EntanglementRequest] = []
    counter = 0
    max_size = min(spec.max_group_size, len(users))
    # Geometric(q) on {0,1,...} shifted by 2, truncated at max_size.
    geometric_p = 1.0 / max(spec.mean_group_size - 1.0, 1e-9)
    geometric_p = min(max(geometric_p, 1e-6), 1.0)
    hold_p = 1.0 / max(spec.mean_hold, 1.0)

    for slot in range(spec.horizon):
        # Diurnal shape: amplitude 0 passes the flat rate through, so
        # the Poisson draw (and the whole rng stream) matches older
        # versions byte for byte.
        lam = spec.arrival_rate
        if spec.diurnal_amplitude > 0:
            lam *= 1.0 + spec.diurnal_amplitude * math.sin(
                2.0 * math.pi * slot / spec.diurnal_period
            )
        n_arrivals = int(generator.poisson(lam))
        for _ in range(n_arrivals):
            size = 2 + int(generator.geometric(geometric_p)) - 1
            size = min(size, max_size)
            members = generator.choice(
                len(users), size=size, replace=False, p=popularity
            )
            hold = int(generator.geometric(hold_p))
            tenant = None
            if tenant_popularity is not None:
                tenant = (
                    f"tenant-"
                    f"{int(generator.choice(spec.n_tenants, p=tenant_popularity))}"
                )
            elif spec.n_tenants > 0:
                tenant = f"tenant-{int(generator.integers(spec.n_tenants))}"
            requests.append(
                EntanglementRequest(
                    name=f"req-{counter}",
                    users=tuple(users[int(i)] for i in members),
                    arrival=slot,
                    hold=max(1, hold),
                    max_wait=spec.max_wait,
                    tenant=tenant,
                )
            )
            counter += 1
    return requests


@dataclass(frozen=True)
class ChurnSpec:
    """Statistical shape of a structural/residual churn stream.

    Drives :func:`generate_churn`, the shared event source behind the
    ``repro incremental`` CLI (``--verify-determinism``) and the
    ``benchmarks/test_incremental.py`` churn benchmark — one generator,
    so the two always exercise identical event streams for a seed.

    Attributes:
        n_faults: Total number of delta events to emit.
        fault_mix: Relative weights over the event families
            ``("fiber", "switch", "capacity")`` — fiber cut/restore
            pairs, switch dark/recover pairs, and capacity-crossing
            polarity flips.  Weights are normalized; a zero weight
            disables the family.
        restore_bias: Probability that, when the chosen family has an
            element currently down, the event restores it rather than
            taking a new element down.  Keeps long streams from
            monotonically draining the topology.
        max_concurrent_down: Cap on simultaneously-failed elements per
            family (new failures are skipped in favor of restores when
            the cap is hit).
    """

    n_faults: int = 50
    fault_mix: Sequence[float] = (0.5, 0.2, 0.3)
    restore_bias: float = 0.5
    max_concurrent_down: int = 4

    def __post_init__(self) -> None:
        if self.n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        mix = tuple(float(w) for w in self.fault_mix)
        if len(mix) != 3:
            raise ValueError(
                "fault_mix needs 3 weights (fiber, switch, capacity), "
                f"got {len(mix)}"
            )
        if any(w < 0 for w in mix) or sum(mix) <= 0:
            raise ValueError("fault_mix weights must be >= 0 and sum > 0")
        object.__setattr__(self, "fault_mix", mix)
        require_probability(self.restore_bias, "restore_bias")
        if self.max_concurrent_down < 1:
            raise ValueError("max_concurrent_down must be >= 1")


def generate_churn(
    network,
    spec: Optional[ChurnSpec] = None,
    rng: RngLike = None,
) -> list:
    """Draw a valid, reproducible delta-event stream for *network*.

    The stream is *stateful-valid*: a fiber is never cut twice without
    an intervening restore, a switch never goes dark twice, capacity
    crossings alternate polarity per switch, and restore events only
    target elements that are currently down.  Deterministic under a
    seed.

    Returns a list of :class:`~repro.incremental.events.DeltaEvent`.
    """
    from repro.incremental.events import DeltaEvent

    spec = spec or ChurnSpec()
    generator = ensure_rng(rng)
    fibers = sorted(
        ((fiber.u, fiber.v) for fiber in network.fibers), key=repr
    )
    switches = sorted(network.switch_ids, key=repr)
    weights = np.asarray(spec.fault_mix, dtype=float)
    if not fibers:
        weights[0] = 0.0
    if not switches:
        weights[1] = weights[2] = 0.0
    if weights.sum() <= 0:
        raise ValueError("network has no elements for the requested mix")
    weights = weights / weights.sum()

    down_fibers: List[tuple] = []  # insertion-ordered for determinism
    down_switches: List[Hashable] = []
    blocked: List[Hashable] = []
    events: list = []
    for index in range(spec.n_faults):
        family = int(generator.choice(3, p=weights))
        restore = bool(generator.random() < spec.restore_bias)
        if family == 0:
            if down_fibers and (
                restore or len(down_fibers) >= spec.max_concurrent_down
            ):
                pick = int(generator.integers(len(down_fibers)))
                u, v = down_fibers.pop(pick)
                events.append(DeltaEvent.fiber_restore(u, v, slot=index))
            else:
                up = [f for f in fibers if f not in down_fibers]
                if not up:
                    continue
                u, v = up[int(generator.integers(len(up)))]
                down_fibers.append((u, v))
                events.append(DeltaEvent.fiber_cut(u, v, slot=index))
        elif family == 1:
            if down_switches and (
                restore or len(down_switches) >= spec.max_concurrent_down
            ):
                pick = int(generator.integers(len(down_switches)))
                switch = down_switches.pop(pick)
                events.append(DeltaEvent.switch_recover(switch, slot=index))
            else:
                up_switches = [
                    s for s in switches if s not in down_switches
                ]
                if not up_switches:
                    continue
                switch = up_switches[
                    int(generator.integers(len(up_switches)))
                ]
                down_switches.append(switch)
                events.append(DeltaEvent.switch_dark(switch, slot=index))
        else:
            if blocked and (
                restore or len(blocked) >= spec.max_concurrent_down
            ):
                pick = int(generator.integers(len(blocked)))
                switch = blocked.pop(pick)
                events.append(
                    DeltaEvent.capacity_crossing(
                        switch, now_blocked=False, slot=index
                    )
                )
            else:
                free = [
                    s
                    for s in switches
                    if s not in blocked and s not in down_switches
                ]
                if not free:
                    continue
                switch = free[int(generator.integers(len(free)))]
                blocked.append(switch)
                events.append(
                    DeltaEvent.capacity_crossing(
                        switch, now_blocked=True, slot=index
                    )
                )
    return events


def offered_load_summary(
    requests: Sequence[EntanglementRequest],
) -> dict:
    """Basic workload statistics (for reports and sanity checks)."""
    if not requests:
        return {
            "n_requests": 0,
            "mean_group_size": 0.0,
            "mean_hold": 0.0,
            "horizon": 0,
        }
    sizes = [len(r.users) for r in requests]
    holds = [r.hold for r in requests]
    return {
        "n_requests": len(requests),
        "mean_group_size": float(np.mean(sizes)),
        "mean_hold": float(np.mean(holds)),
        "horizon": max(r.arrival for r in requests) + 1,
    }
