"""Vectorized Monte-Carlo simulation of routed entanglement trees.

Each *trial* models one synchronized attempt window (Sec. II-B/C): every
quantum link of every channel attempts generation with probability
``p = exp(-α·L)`` and every transit switch attempts its BSM with
probability ``q``.  A channel succeeds iff all its links and swaps
succeed; the tree succeeds iff all channels succeed.  The empirical
success frequency is an unbiased estimator of Eq. (2) — the convergence
is property-tested in the suite and benchmarked as experiment
``montecarlo`` (model validation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.problem import Channel, MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a Monte-Carlo estimation run.

    Attributes:
        trials: Number of simulated attempt windows.
        successes: Windows in which the whole structure succeeded.
        analytic_rate: The Eq.(1)/Eq.(2) prediction being validated.
    """

    trials: int
    successes: int
    analytic_rate: float

    @property
    def empirical_rate(self) -> float:
        """Observed success frequency."""
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the empirical rate."""
        if self.trials == 0:
            return 0.0
        rate = self.empirical_rate
        return math.sqrt(max(rate * (1.0 - rate), 0.0) / self.trials)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the empirical rate."""
        margin = z * self.standard_error
        return (
            max(0.0, self.empirical_rate - margin),
            min(1.0, self.empirical_rate + margin),
        )

    @property
    def consistent(self) -> bool:
        """Whether the analytic rate lies inside the 95% CI (±3 SE slop)."""
        low, high = self.confidence_interval(z=3.0)
        return low <= self.analytic_rate <= high


def _check_penalty(value: float, name: str) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _channel_success_matrix(
    network: QuantumNetwork,
    channel: Channel,
    trials: int,
    rng: np.random.Generator,
    link_penalty: float = 1.0,
    swap_penalty: float = 1.0,
) -> np.ndarray:
    """Boolean vector: did *channel* succeed in each trial?

    The penalties scale the per-attempt success probabilities; they
    model degraded operating conditions (a decoherence storm from the
    resilience layer multiplies every probability by ``1 - severity``).
    """
    lengths = []
    for u, v in zip(channel.path, channel.path[1:]):
        fiber = network.fiber_between(u, v)
        if fiber is None:
            raise ValueError(f"channel uses missing fiber {u!r}-{v!r}")
        lengths.append(fiber.length)
    link_probs = (
        np.exp(-network.params.alpha * np.asarray(lengths)) * link_penalty
    )
    links_ok = (
        rng.uniform(size=(trials, len(lengths))) < link_probs[None, :]
    ).all(axis=1)
    n_swaps = channel.n_swaps
    if n_swaps == 0:
        return links_ok
    swaps_ok = (
        rng.uniform(size=(trials, n_swaps))
        < network.params.swap_prob * swap_penalty
    ).all(axis=1)
    return links_ok & swaps_ok


def simulate_channel(
    network: QuantumNetwork,
    channel: Channel,
    trials: int = 10_000,
    rng: RngLike = None,
    link_penalty: float = 1.0,
    swap_penalty: float = 1.0,
) -> MonteCarloResult:
    """Monte-Carlo estimate of one channel's entanglement rate (Eq. 1).

    ``link_penalty`` / ``swap_penalty`` scale the success probabilities
    to model storm-degraded conditions (see :mod:`repro.resilience`);
    note the analytic rate still refers to the *nominal* Eq. (1).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    _check_penalty(link_penalty, "link_penalty")
    _check_penalty(swap_penalty, "swap_penalty")
    generator = ensure_rng(rng)
    ok = _channel_success_matrix(
        network, channel, trials, generator, link_penalty, swap_penalty
    )
    return MonteCarloResult(
        trials=trials,
        successes=int(ok.sum()),
        analytic_rate=channel.rate,
    )


def simulate_solution(
    network: QuantumNetwork,
    solution: MUERPSolution,
    trials: int = 10_000,
    rng: RngLike = None,
    batch_size: int = 100_000,
    link_penalty: float = 1.0,
    swap_penalty: float = 1.0,
) -> MonteCarloResult:
    """Monte-Carlo estimate of a tree's entanglement rate (Eq. 2).

    Infeasible solutions yield 0 successes by definition.  Large trial
    counts are processed in batches to bound memory.  The penalties
    scale every per-attempt success probability, modelling degraded
    operating conditions (decoherence storms); the analytic rate keeps
    referring to the nominal Eq. (2).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    _check_penalty(link_penalty, "link_penalty")
    _check_penalty(swap_penalty, "swap_penalty")
    if not solution.feasible or not solution.channels:
        feasible_empty = solution.feasible and not solution.channels
        return MonteCarloResult(
            trials=trials,
            successes=trials if feasible_empty else 0,
            analytic_rate=solution.rate,
        )
    generator = ensure_rng(rng)
    extra_prob = math.exp(solution.extra_log_rate)
    successes = 0
    remaining = trials
    while remaining > 0:
        batch = min(remaining, batch_size)
        ok = np.ones(batch, dtype=bool)
        for channel in solution.channels:
            ok &= _channel_success_matrix(
                network, channel, batch, generator, link_penalty, swap_penalty
            )
            if not ok.any():
                break
        if extra_prob < 1.0 and ok.any():
            # Solution-level factors (e.g. N-FUSION's final GHZ fusion).
            ok &= generator.uniform(size=batch) < extra_prob
        successes += int(ok.sum())
        remaining -= batch
    return MonteCarloResult(
        trials=trials,
        successes=successes,
        analytic_rate=solution.rate,
    )
