"""Memory-assisted entanglement protocol simulation.

The paper's model is *memoryless*: all links of the tree must succeed in
the same attempt window (Sec. II-C), giving success probability Eq. (2)
per window.  Real switches hold qubits in quantum memories for a short
time, so a link generated in window ``t`` can wait for its siblings
until window ``t + w − 1`` before decohering.

:class:`MemoryProtocolSimulator` generalizes the slotted protocol with a
per-link time-to-live ``window`` (``w = 1`` reproduces the memoryless
model exactly — property-tested).  Per channel and slot:

1. every link that is not currently alive attempts generation
   (probability ``p = e^{-αL}``);
2. links that were generated stay alive for ``w`` slots, then expire;
3. the moment *all* links of a channel are simultaneously alive, the
   channel's switches attempt their BSMs (probability ``q`` each, one
   combined attempt); success completes the channel and pins it, failure
   consumes all its links (they must regenerate);
4. the tree completes when all channels have completed.

This is the standard link-level retry discipline of quantum link-layer
protocols (e.g. Dahlberg et al., SIGCOMM'19 — reference [7] of the
paper) grafted onto the paper's routed trees, quantifying how much
quantum memory buys at the network level.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.retry import RetryPolicy

logger = logging.getLogger("repro.sim.memory")


@dataclass(frozen=True)
class MemoryRunResult:
    """Outcome of one memory-assisted protocol run.

    ``aborted`` is set when a retry policy gave up on a channel before
    the slot cap was reached (the run then also has
    ``succeeded=False``).
    """

    slots_used: int
    succeeded: bool
    window: int
    link_attempts: int
    swap_rounds: int
    aborted: bool = False


@dataclass(frozen=True)
class MemoryComparison:
    """Mean slots-to-entanglement across memory windows."""

    windows: Tuple[int, ...]
    mean_slots: Tuple[float, ...]
    memoryless_expectation: float

    def speedup(self) -> Tuple[float, ...]:
        """Speedup of each window relative to the w=1 measurement."""
        base = self.mean_slots[0]
        return tuple(base / slots if slots > 0 else math.inf
                     for slots in self.mean_slots)


class MemoryProtocolSimulator:
    """Slotted protocol with per-link memory lifetime *window* ≥ 1.

    Args:
        network: The quantum network the solution was routed on.
        solution: A feasible routed entanglement tree.
        window: Link time-to-live in slots (1 = the paper's model).
        rng: Random source.
        retry_policy: Optional
            :class:`~repro.resilience.retry.RetryPolicy` pacing each
            channel's recovery after a failed swap round: the channel
            waits the policy's delay (its links idle) before
            regenerating, and the run aborts when the policy is
            exhausted.  ``None`` keeps the paper's
            re-attempt-every-slot behavior.
    """

    def __init__(
        self,
        network: QuantumNetwork,
        solution: MUERPSolution,
        window: int = 1,
        rng: RngLike = None,
        retry_policy: Optional["RetryPolicy"] = None,
    ) -> None:
        if not solution.feasible:
            raise ValueError("cannot execute an infeasible solution")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.rng = ensure_rng(rng)
        self.retry_policy = retry_policy
        self._channels: List[Tuple[np.ndarray, int]] = []
        for channel in solution.channels:
            probabilities = []
            for u, v in zip(channel.path, channel.path[1:]):
                fiber = network.fiber_between(u, v)
                if fiber is None:
                    raise ValueError(f"plan uses missing fiber {u!r}-{v!r}")
                probabilities.append(
                    fiber.success_probability(network.params.alpha)
                )
            self._channels.append(
                (np.asarray(probabilities), channel.n_swaps)
            )
        self._swap_prob = network.params.swap_prob

    def run(self, max_slots: int = 1_000_000) -> MemoryRunResult:
        """Run until every channel completes (or *max_slots*)."""
        rng = self.rng
        window = self.window
        q = self._swap_prob
        link_attempts = 0
        swap_rounds = 0

        # Per channel: remaining lifetime per link (0 = not alive), a
        # completed flag, plus retry pacing (failed swap rounds so far
        # and the slot before which the channel must stay idle).
        lifetimes = [np.zeros(len(p), dtype=int) for p, _ in self._channels]
        completed = [False] * len(self._channels)
        swap_failures = [0] * len(self._channels)
        resume_slot = [0] * len(self._channels)

        for slot in range(1, max_slots + 1):
            for index, (probabilities, n_swaps) in enumerate(self._channels):
                if completed[index] or slot < resume_slot[index]:
                    continue
                life = lifetimes[index]
                dead = life == 0
                n_dead = int(dead.sum())
                if n_dead:
                    link_attempts += n_dead
                    generated = rng.uniform(size=n_dead) < probabilities[dead]
                    fresh = life[dead]
                    fresh[generated] = window
                    life[dead] = fresh
                if (life > 0).all():
                    swap_rounds += 1
                    if n_swaps == 0 or bool(
                        (rng.uniform(size=n_swaps) < q).all()
                    ):
                        completed[index] = True
                    else:
                        life[:] = 0  # failed swap consumes the links
                        if self.retry_policy is not None:
                            swap_failures[index] += 1
                            delay = self.retry_policy.next_delay(
                                swap_failures[index]
                            )
                            if delay is None:
                                logger.info(
                                    "channel %d: retry policy exhausted "
                                    "after %d failed swap rounds",
                                    index,
                                    swap_failures[index],
                                )
                                return MemoryRunResult(
                                    slots_used=slot,
                                    succeeded=False,
                                    window=window,
                                    link_attempts=link_attempts,
                                    swap_rounds=swap_rounds,
                                    aborted=True,
                                )
                            resume_slot[index] = slot + 1 + delay
                        continue
                # Age the surviving links.
                if not completed[index]:
                    life[life > 0] -= 1
            if all(completed):
                return MemoryRunResult(
                    slots_used=slot,
                    succeeded=True,
                    window=window,
                    link_attempts=link_attempts,
                    swap_rounds=swap_rounds,
                )
        return MemoryRunResult(
            slots_used=max_slots,
            succeeded=False,
            window=window,
            link_attempts=link_attempts,
            swap_rounds=swap_rounds,
        )

    def mean_slots(self, runs: int = 100, max_slots: int = 1_000_000) -> float:
        """Average slots-to-completion over *runs* (∞ if any run fails)."""
        totals = []
        for _ in range(runs):
            result = self.run(max_slots)
            if not result.succeeded:
                return math.inf
            totals.append(result.slots_used)
        return float(np.mean(totals))


def compare_memory_windows(
    network: QuantumNetwork,
    solution: MUERPSolution,
    windows: Sequence[int] = (1, 2, 4, 8),
    runs: int = 100,
    rng: RngLike = None,
) -> MemoryComparison:
    """Measure mean time-to-entanglement across memory windows.

    Note the ``w = 1`` measurement should be near the *per-channel
    independent completion* expectation, which is already far below the
    paper's all-at-once ``1/P`` (channels complete independently and
    wait), and larger windows should be faster still.
    """
    generator = ensure_rng(rng)
    means = []
    for window in windows:
        simulator = MemoryProtocolSimulator(
            network, solution, window=window, rng=generator
        )
        means.append(simulator.mean_slots(runs=runs))
    memoryless = math.inf if solution.rate <= 0 else 1.0 / solution.rate
    return MemoryComparison(
        windows=tuple(windows),
        mean_slots=tuple(means),
        memoryless_expectation=memoryless,
    )
