"""Argument validation helpers shared across the library."""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


class ValidationError(ValueError):
    """Raised when a model parameter fails validation."""


def require_positive(value: Number, name: str) -> Number:
    """Validate ``value > 0`` and return it."""
    if not math.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be positive and finite, got {value!r}")
    return value


def require_non_negative(value: Number, name: str) -> Number:
    """Validate ``value >= 0`` and return it."""
    if not math.isfinite(value) or value < 0:
        raise ValidationError(f"{name} must be non-negative and finite, got {value!r}")
    return value


def require_probability(value: Number, name: str) -> Number:
    """Validate ``0 <= value <= 1`` and return it."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value
