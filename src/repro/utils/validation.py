"""Argument validation helpers shared across the library.

Non-finite inputs are rejected *explicitly*: NaN and ±inf each get
their own message naming the offending parameter and value, so a
mis-propagated ``float("nan")`` (the classic silent poison — it fails
every comparison, so range checks alone let it through) surfaces at
the boundary rather than as a downstream rate of ``nan``.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


class ValidationError(ValueError):
    """Raised when a model parameter fails validation.

    Attributes:
        name: The parameter that failed.
        value: The offending value, verbatim.
    """

    def __init__(self, message: str, name: str = "", value: object = None) -> None:
        super().__init__(message)
        self.name = name
        self.value = value


def require_finite(value: Number, name: str) -> Number:
    """Validate that *value* is neither NaN nor ±inf and return it."""
    if isinstance(value, float) and math.isnan(value):
        raise ValidationError(
            f"{name} is NaN (not-a-number); NaN propagates silently through "
            "comparisons, so it is rejected at the boundary",
            name,
            value,
        )
    if math.isinf(value):
        raise ValidationError(
            f"{name} is {value!r} (infinite); expected a finite number",
            name,
            value,
        )
    return value


def require_positive(value: Number, name: str) -> Number:
    """Validate ``value > 0`` (and finite) and return it."""
    require_finite(value, name)
    if value <= 0:
        raise ValidationError(
            f"{name} must be positive, got {value!r}", name, value
        )
    return value


def require_non_negative(value: Number, name: str) -> Number:
    """Validate ``value >= 0`` (and finite) and return it."""
    require_finite(value, name)
    if value < 0:
        raise ValidationError(
            f"{name} must be non-negative, got {value!r}", name, value
        )
    return value


def require_probability(value: Number, name: str) -> Number:
    """Validate ``0 <= value <= 1`` (and finite) and return it."""
    require_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(
            f"{name} must lie in [0, 1], got {value!r}", name, value
        )
    return value
