"""Indexed binary min-heap with decrease-key.

Algorithm 1 of the paper is a Dijkstra-style search over the
``-ln``-transformed entanglement rates; an addressable heap gives the
classic ``O(|E| + |V| log |V|)``-flavoured complexity the paper quotes
(within a log factor for a binary heap).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple


class IndexedMinHeap:
    """Binary min-heap keyed by arbitrary hashable items.

    Supports ``push`` (insert or decrease-key), ``pop_min`` and membership
    queries.  Increase-key via :meth:`push` is rejected so Dijkstra
    invariants cannot be silently violated.

    >>> heap = IndexedMinHeap()
    >>> heap.push("a", 3.0)
    >>> heap.push("b", 1.0)
    >>> heap.push("a", 2.0)   # decrease-key
    >>> heap.pop_min()
    ('b', 1.0)
    """

    def __init__(self) -> None:
        self._keys: List[float] = []
        self._items: List[Hashable] = []
        self._position: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._position

    def key_of(self, item: Hashable) -> float:
        """Current key of *item* (raises ``KeyError`` if absent)."""
        return self._keys[self._position[item]]

    def push(self, item: Hashable, key: float) -> None:
        """Insert *item* with *key*, or decrease its key if present.

        Raises ``ValueError`` when the new key is larger than the stored
        one — Dijkstra only ever relaxes distances downwards.
        """
        if item in self._position:
            index = self._position[item]
            current = self._keys[index]
            if key > current:
                raise ValueError(
                    f"cannot increase key of {item!r} from {current} to {key}"
                )
            self._keys[index] = key
            self._sift_up(index)
            return
        self._keys.append(key)
        self._items.append(item)
        index = len(self._items) - 1
        self._position[item] = index
        self._sift_up(index)

    def peek_min(self) -> Tuple[Hashable, float]:
        """Return (item, key) with the minimum key without removing it."""
        if not self._items:
            raise IndexError("peek from an empty heap")
        return self._items[0], self._keys[0]

    def pop_min(self) -> Tuple[Hashable, float]:
        """Remove and return the (item, key) with the minimum key."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        min_item = self._items[0]
        min_key = self._keys[0]
        last_item = self._items.pop()
        last_key = self._keys.pop()
        del self._position[min_item]
        if self._items:
            self._items[0] = last_item
            self._keys[0] = last_key
            self._position[last_item] = 0
            self._sift_down(0)
        return min_item, min_key

    def _sift_up(self, index: int) -> None:
        keys = self._keys
        items = self._items
        position = self._position
        while index > 0:
            parent = (index - 1) >> 1
            if keys[index] >= keys[parent]:
                break
            keys[index], keys[parent] = keys[parent], keys[index]
            items[index], items[parent] = items[parent], items[index]
            position[items[index]] = index
            position[items[parent]] = parent
            index = parent

    def _sift_down(self, index: int) -> None:
        keys = self._keys
        items = self._items
        position = self._position
        size = len(items)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and keys[left] < keys[smallest]:
                smallest = left
            if right < size and keys[right] < keys[smallest]:
                smallest = right
            if smallest == index:
                return
            keys[index], keys[smallest] = keys[smallest], keys[index]
            items[index], items[smallest] = items[smallest], items[index]
            position[items[index]] = index
            position[items[smallest]] = smallest
            index = smallest
