"""Union-find (disjoint set) with path compression and union by rank.

Algorithms 2 and 3 of the paper maintain the connectivity of quantum users
while channels are added to the entanglement tree; this structure answers
"are these two users already entangled (transitively)?" in near-constant
amortised time.

Elements may be arbitrary hashable objects (node identifiers in practice).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are added lazily on first use, or eagerly via the constructor
    / :meth:`add`.

    >>> uf = UnionFind(["a", "b", "c"])
    >>> uf.union("a", "b")
    True
    >>> uf.connected("a", "b")
    True
    >>> uf.connected("a", "c")
    False
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._n_components = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register *element* as a singleton set (no-op if present)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._n_components += 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._n_components

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s set.

        The element is registered as a singleton if unseen.  Uses iterative
        path compression (halving) so deep forests never hit the recursion
        limit.
        """
        self.add(element)
        parent = self._parent
        root = element
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing *a* and *b*.

        Returns ``True`` if a merge happened, ``False`` if they were
        already in the same set.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        rank_a = self._rank[root_a]
        rank_b = self._rank[root_b]
        if rank_a < rank_b:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if rank_a == rank_b:
            self._rank[root_a] += 1
        self._n_components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[Hashable]]:
        """Return the current partition as a list of sets."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())

    def component_of(self, element: Hashable) -> Set[Hashable]:
        """Return the full set containing *element*."""
        root = self.find(element)
        return {e for e in self._parent if self.find(e) == root}

    def all_connected(self, elements: Iterable[Hashable]) -> bool:
        """Whether every element of *elements* shares one set.

        An empty iterable (and a singleton) is trivially connected.
        """
        iterator = iter(elements)
        try:
            first = next(iterator)
        except StopIteration:
            return True
        root = self.find(first)
        return all(self.find(e) == root for e in iterator)
