"""Seeded random-number plumbing.

Every stochastic component of the library (topology generation, Monte
Carlo simulation, randomized algorithm choices) takes an explicit
``numpy.random.Generator`` so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce *rng* into a ``numpy.random.Generator``.

    ``None`` yields a fresh non-deterministic generator, an ``int`` seeds
    a new one, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build rng from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Used by the experiment runner so each of the paper's 20 random
    networks gets its own stream while the whole sweep stays reproducible
    from one seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
