"""Shared utilities: union-find, indexed heap, RNG plumbing, validation.

These are the low-level data structures the routing algorithms in
:mod:`repro.core` are built on.  Algorithm 2 and Algorithm 3 of the paper
explicitly require a union-find structure; Algorithm 1 requires a
decrease-key priority queue for its Dijkstra-style search.
"""

from repro.utils.unionfind import UnionFind
from repro.utils.heap import IndexedMinHeap
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    require_finite,
    require_positive,
    require_non_negative,
    require_probability,
    ValidationError,
)

__all__ = [
    "UnionFind",
    "IndexedMinHeap",
    "ensure_rng",
    "spawn_rngs",
    "require_finite",
    "require_positive",
    "require_non_negative",
    "require_probability",
    "ValidationError",
]
