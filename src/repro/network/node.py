"""Node types of the quantum Internet model.

The paper distinguishes two kinds of vertices (Sec. II-A):

* **Quantum users** ``U`` — processors with *sufficient* quantum memory to
  terminate any number of channels (Def. 3 assumes user capacity is never
  the bottleneck).
* **Quantum switches** ``R`` — relays with ``Q_r`` qubits performing
  entanglement swapping via Bell State Measurements; each transit channel
  consumes 2 qubits, so a switch supports ``⌊Q_r / 2⌋`` channels.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Hashable, Tuple

from repro.utils.validation import require_non_negative


class NodeKind(enum.Enum):
    """Role of a vertex in the quantum network."""

    USER = "user"
    SWITCH = "switch"


@dataclass(frozen=True)
class Node:
    """Common base for network vertices.

    Attributes:
        id: Hashable identifier, unique within a network.
        position: (x, y) coordinates in kilometres inside the deployment
            area (the paper uses a 10k x 10k km square).
    """

    id: Hashable
    position: Tuple[float, float] = field(default=(0.0, 0.0))

    @property
    def kind(self) -> NodeKind:
        raise NotImplementedError

    @property
    def is_user(self) -> bool:
        return self.kind is NodeKind.USER

    @property
    def is_switch(self) -> bool:
        return self.kind is NodeKind.SWITCH

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance to *other* in kilometres."""
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        return math.hypot(dx, dy)


@dataclass(frozen=True)
class QuantumUser(Node):
    """A quantum user (endpoint of entanglement).

    Users have effectively unlimited quantum memory in the model, so they
    carry no qubit budget.
    """

    @property
    def kind(self) -> NodeKind:
        return NodeKind.USER


@dataclass(frozen=True)
class QuantumSwitch(Node):
    """A quantum switch performing BSM entanglement swapping.

    Attributes:
        qubits: Number of quantum memories ``Q_r``.  A transit channel
            needs two of them (one per adjoining quantum link), hence
            :attr:`channel_capacity` is ``Q_r // 2``.
    """

    qubits: int = 4

    def __post_init__(self) -> None:
        require_non_negative(self.qubits, "qubits")
        if int(self.qubits) != self.qubits:
            raise ValueError(f"qubits must be integral, got {self.qubits!r}")

    @property
    def kind(self) -> NodeKind:
        return NodeKind.SWITCH

    @property
    def channel_capacity(self) -> int:
        """Maximum number of transit channels: ``⌊Q_r / 2⌋`` (Def. 3)."""
        return self.qubits // 2
