"""Optical fibers and the quantum links they carry.

An optical fiber between neighboring nodes hosts quantum links, each a
Bell pair ``(|00⟩ + |11⟩)/√2`` shared across the fiber.  The per-attempt
success probability of generating such a link is ``p = exp(-α·L)`` where
``L`` is the fiber length and ``α`` a material constant (Sec. II-A).

Fibers are multi-core: the paper assumes "adequate capacity to support
entanglement", which we model as a configurable (by default effectively
unbounded) core count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Tuple

from repro.utils.validation import require_positive

#: Default number of independent cores per fiber.  Large enough to act as
#: "sufficient capacity" per the paper's assumption while remaining a real
#: number that the concurrency extension can budget against.
DEFAULT_CORES = 10**6


def fiber_key(u: Hashable, v: Hashable) -> Tuple[Hashable, Hashable]:
    """Canonical undirected key for the fiber between *u* and *v*.

    Sorting is by ``repr`` so heterogeneous id types still produce a
    stable canonical order.
    """
    if u == v:
        raise ValueError(f"self-loop fiber at {u!r} is not allowed")
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class OpticalFiber:
    """An undirected optical fiber edge.

    Attributes:
        u, v: Endpoint node identifiers (order-insensitive).
        length: Physical length ``L`` in kilometres.
        cores: Number of independent cores (parallel quantum links the
            fiber can carry simultaneously).
    """

    u: Hashable
    v: Hashable
    length: float
    cores: int = DEFAULT_CORES

    def __post_init__(self) -> None:
        require_positive(self.length, "length")
        require_positive(self.cores, "cores")
        if self.u == self.v:
            raise ValueError(f"self-loop fiber at {self.u!r} is not allowed")

    @property
    def key(self) -> Tuple[Hashable, Hashable]:
        """Canonical undirected identifier of this fiber."""
        return fiber_key(self.u, self.v)

    def other_end(self, node_id: Hashable) -> Hashable:
        """The endpoint opposite *node_id*."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise ValueError(f"{node_id!r} is not an endpoint of {self.key}")

    def success_probability(self, alpha: float) -> float:
        """Per-attempt quantum-link success probability ``exp(-α·L)``."""
        return math.exp(-alpha * self.length)

    def log_success(self, alpha: float) -> float:
        """Natural log of :meth:`success_probability`: ``-α·L``."""
        return -alpha * self.length
