"""The quantum network graph ``G = (V = U ∪ R, E)``.

:class:`QuantumNetwork` is the central substrate object every routing
algorithm operates on.  It stores users, switches, fibers, and the two
physical parameters of the paper's model:

* ``alpha`` — fiber attenuation constant (default ``1e-4`` per km, the
  paper's simulation setting), giving link success ``p = exp(-α·L)``;
* ``swap_prob`` — BSM entanglement-swapping success probability ``q``
  (default 0.9), uniform across switches.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import networkx as nx

from repro.network.errors import (
    DuplicateFiberError,
    DuplicateNodeError,
    UnknownNodeError,
)
from repro.network.link import OpticalFiber, fiber_key
from repro.network.node import Node, QuantumSwitch, QuantumUser
from repro.utils.validation import require_positive, require_probability


def _fiber_event(key: Tuple[Hashable, Hashable], restored: bool):
    """The DeltaEvent for a fiber add/remove, or None when no bus runs.

    The event object is only materialized while a
    :class:`~repro.incremental.delta.DeltaBus` is active, so plain
    topology construction pays one module-dict lookup per mutation.
    """
    from repro.incremental import delta as incremental_delta

    if incremental_delta.active() is None:
        return None
    from repro.incremental.events import DeltaEvent

    if restored:
        return DeltaEvent.fiber_restore(*key)
    return DeltaEvent.fiber_cut(*key)


@dataclass(frozen=True)
class NetworkParams:
    """Physical parameters shared by the whole network.

    Attributes:
        alpha: Fiber attenuation constant (1/km); the paper sets 1e-4.
        swap_prob: BSM swapping success rate ``q`` in [0, 1]; paper: 0.9.
    """

    alpha: float = 1e-4
    swap_prob: float = 0.9

    def __post_init__(self) -> None:
        require_positive(self.alpha, "alpha")
        require_probability(self.swap_prob, "swap_prob")


class QuantumNetwork:
    """Mutable quantum-network topology with users, switches and fibers.

    Node identifiers are arbitrary hashables.  Fibers are undirected and
    unique per node pair (the paper's graph has no parallel edges; a
    fiber's multiple cores model link multiplicity instead).
    """

    def __init__(self, params: Optional[NetworkParams] = None) -> None:
        self.params = params or NetworkParams()
        self._nodes: Dict[Hashable, Node] = {}
        self._fibers: Dict[Tuple[Hashable, Hashable], OpticalFiber] = {}
        self._adjacency: Dict[Hashable, Dict[Hashable, OpticalFiber]] = {}
        #: Memoized content hashes per scope; cleared on any mutation.
        self._fingerprints: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_user(
        self,
        node_id: Hashable,
        position: Tuple[float, float] = (0.0, 0.0),
    ) -> QuantumUser:
        """Add a quantum user and return it."""
        user = QuantumUser(node_id, position)
        self._register(user)
        return user

    def add_switch(
        self,
        node_id: Hashable,
        position: Tuple[float, float] = (0.0, 0.0),
        qubits: int = 4,
    ) -> QuantumSwitch:
        """Add a quantum switch with ``qubits`` memories and return it."""
        switch = QuantumSwitch(node_id, position, qubits=qubits)
        self._register(switch)
        return switch

    def _register(self, node: Node) -> None:
        if node.id in self._nodes:
            raise DuplicateNodeError(node.id)
        self._nodes[node.id] = node
        self._adjacency[node.id] = {}
        self._content_changed()

    def _content_changed(self, event=None) -> None:
        """Invalidate memoized fingerprints after a structural mutation.

        With an active :class:`~repro.incremental.delta.DeltaBus`, the
        mutation is published as the typed *event* (a
        :class:`~repro.incremental.events.DeltaEvent`, when the mutator
        can name one) and the bus performs region-scoped cache hygiene.
        Otherwise this falls back to the legacy behaviour: tell the
        active channel cache that entries computed over the previous
        routing fingerprint are now unreachable, so they stop crowding
        the LRU window.
        """
        old_routing = self._fingerprints.pop("routing", None)
        self._fingerprints.clear()
        # Lazy imports: neither repro.exec.cache nor the incremental
        # delta layer imports the network package at module level, so
        # these cannot cycle back here.
        if event is not None:
            from repro.incremental import delta as incremental_delta

            bus = incremental_delta.active()
            if bus is not None:
                bus.publish(event, network=self, fingerprint=old_routing)
                return
        if old_routing is None:
            # Never fingerprinted: no cache entry can reference this
            # topology, so there is nothing to invalidate.
            return
        from repro.exec import cache as exec_cache

        cache = exec_cache.active()
        if cache is not None:
            cache.invalidate_graph(old_routing)

    def add_fiber(
        self,
        u: Hashable,
        v: Hashable,
        length: Optional[float] = None,
        cores: Optional[int] = None,
    ) -> OpticalFiber:
        """Add an optical fiber between existing nodes *u* and *v*.

        When *length* is omitted it defaults to the Euclidean distance
        between the endpoints' positions.
        """
        node_u = self.node(u)
        node_v = self.node(v)
        key = fiber_key(u, v)
        if key in self._fibers:
            raise DuplicateFiberError(u, v)
        if length is None:
            length = node_u.distance_to(node_v)
            if length <= 0.0:
                length = 1e-9  # coincident points: degenerate but legal
        kwargs = {} if cores is None else {"cores": cores}
        fiber = OpticalFiber(u, v, length, **kwargs)
        self._fibers[key] = fiber
        self._adjacency[u][v] = fiber
        self._adjacency[v][u] = fiber
        self._content_changed(event=_fiber_event(key, restored=True))
        return fiber

    def remove_fiber(self, u: Hashable, v: Hashable) -> OpticalFiber:
        """Remove and return the fiber between *u* and *v*."""
        key = fiber_key(u, v)
        try:
            fiber = self._fibers.pop(key)
        except KeyError:
            raise UnknownNodeError((u, v)) from None
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._content_changed(event=_fiber_event(key, restored=False))
        return fiber

    def align_fiber_order(
        self,
        reference: "QuantumNetwork",
        nodes: Optional[Iterable[Hashable]] = None,
    ) -> None:
        """Reorder fiber iteration to match *reference*.

        Path algorithms that scan incident fibers break equal-cost ties
        by insertion order, so a view that removes and later re-adds a
        fiber must restore the reference ordering to stay byte-identical
        with a fresh rebuild of the same topology.  Pass *nodes* to
        realign only those adjacency rows (removals never reorder, so
        after a re-add only the two endpoints can be out of order).
        """
        ordered = {
            key: self._fibers[key]
            for key in reference._fibers
            if key in self._fibers
        }
        for key, fiber in self._fibers.items():
            ordered.setdefault(key, fiber)
        self._fibers = ordered
        node_ids = self._adjacency if nodes is None else nodes
        for node_id in node_ids:
            row = self._adjacency.get(node_id)
            if row is None:
                continue
            ref_row = reference._adjacency.get(node_id, ())
            aligned = {
                other: row[other] for other in ref_row if other in row
            }
            for other, fiber in row.items():
                aligned.setdefault(other, fiber)
            self._adjacency[node_id] = aligned

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: Hashable) -> Node:
        """Return the node object for *node_id*."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> List[Hashable]:
        return list(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def users(self) -> List[QuantumUser]:
        """All quantum users, in insertion order."""
        return [n for n in self._nodes.values() if isinstance(n, QuantumUser)]

    @property
    def user_ids(self) -> List[Hashable]:
        return [n.id for n in self.users]

    @property
    def switches(self) -> List[QuantumSwitch]:
        """All quantum switches, in insertion order."""
        return [n for n in self._nodes.values() if isinstance(n, QuantumSwitch)]

    @property
    def switch_ids(self) -> List[Hashable]:
        return [n.id for n in self.switches]

    @property
    def fibers(self) -> List[OpticalFiber]:
        return list(self._fibers.values())

    @property
    def n_fibers(self) -> int:
        return len(self._fibers)

    def is_user(self, node_id: Hashable) -> bool:
        return isinstance(self.node(node_id), QuantumUser)

    def is_switch(self, node_id: Hashable) -> bool:
        return isinstance(self.node(node_id), QuantumSwitch)

    def qubits_of(self, node_id: Hashable) -> Optional[int]:
        """Qubit budget of a switch, or ``None`` for users (unlimited)."""
        node = self.node(node_id)
        return node.qubits if isinstance(node, QuantumSwitch) else None

    def neighbors(self, node_id: Hashable) -> Iterator[Hashable]:
        """Neighboring node identifiers of *node_id*."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return iter(self._adjacency[node_id])

    def incident_fibers(self, node_id: Hashable) -> List[OpticalFiber]:
        """All fibers with *node_id* as an endpoint."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return list(self._adjacency[node_id].values())

    def degree(self, node_id: Hashable) -> int:
        """Number of fibers incident to *node_id*."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return len(self._adjacency[node_id])

    def average_degree(self) -> float:
        """Mean fiber degree over all nodes (0 for an empty network)."""
        if not self._nodes:
            return 0.0
        return 2.0 * len(self._fibers) / len(self._nodes)

    def fiber_between(
        self, u: Hashable, v: Hashable
    ) -> Optional[OpticalFiber]:
        """The fiber between *u* and *v*, or ``None``."""
        return self._fibers.get(fiber_key(u, v))

    def has_fiber(self, u: Hashable, v: Hashable) -> bool:
        return fiber_key(u, v) in self._fibers

    def link_success(self, u: Hashable, v: Hashable) -> float:
        """Per-attempt success probability of the link on fiber (u, v)."""
        fiber = self.fiber_between(u, v)
        if fiber is None:
            raise UnknownNodeError((u, v))
        return fiber.success_probability(self.params.alpha)

    # ------------------------------------------------------------------
    # Graph-level operations
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the fiber graph is connected (empty graph counts)."""
        if not self._nodes:
            return True
        seen: Set[Hashable] = set()
        stack = [next(iter(self._nodes))]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                nb for nb in self._adjacency[current] if nb not in seen
            )
        return len(seen) == len(self._nodes)

    def connected_components(self) -> List[Set[Hashable]]:
        """Connected components of the fiber graph."""
        remaining = set(self._nodes)
        components: List[Set[Hashable]] = []
        while remaining:
            seed = next(iter(remaining))
            component: Set[Hashable] = set()
            stack = [seed]
            while stack:
                current = stack.pop()
                if current in component:
                    continue
                component.add(current)
                stack.extend(
                    nb
                    for nb in self._adjacency[current]
                    if nb not in component
                )
            components.append(component)
            remaining -= component
        return components

    def fingerprint(self, scope: str = "full") -> str:
        """Stable content hash of this network (sha256 hex, memoized).

        Two networks with the same nodes, fibers, lengths, capacities
        and physical parameters share a fingerprint regardless of how
        (or in which process) they were built; any structural mutation
        changes it.  This replaces ad-hoc object-identity checks
        wherever "is this the same network?" actually means "same
        content?" — across processes, identity is meaningless but the
        fingerprint survives pickling and regeneration.

        Args:
            scope: ``"full"`` hashes everything (node kinds, positions,
                switch qubit budgets, fiber lengths and core counts,
                ``alpha``, ``swap_prob``).  ``"routing"`` hashes only
                what the Algorithm-1 channel search reads (node ids and
                kinds, fiber keys and lengths, ``alpha``,
                ``swap_prob``) — capacities are excluded because the
                search consumes them through the residual map, which the
                channel cache keys separately.

        The hash is memoized per instance and invalidated on mutation.
        """
        if scope not in ("full", "routing"):
            raise ValueError(f"unknown fingerprint scope {scope!r}")
        cached = self._fingerprints.get(scope)
        if cached is not None:
            return cached
        parts: List[str] = [
            f"alpha={self.params.alpha!r}",
            f"q={self.params.swap_prob!r}",
        ]
        for node_id in sorted(self._nodes, key=repr):
            node = self._nodes[node_id]
            entry = f"n|{node_id!r}|{node.kind.value}"
            if scope == "full":
                entry += f"|{node.position!r}"
                if isinstance(node, QuantumSwitch):
                    entry += f"|Q={node.qubits}"
            parts.append(entry)
        for key in sorted(self._fibers, key=repr):
            fiber = self._fibers[key]
            entry = f"e|{key!r}|{fiber.length!r}"
            if scope == "full":
                entry += f"|c={fiber.cores}"
            parts.append(entry)
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        self._fingerprints[scope] = digest
        return digest

    def copy(self) -> "QuantumNetwork":
        """Deep-enough copy: node/fiber objects are immutable and shared."""
        clone = QuantumNetwork(self.params)
        clone._nodes = dict(self._nodes)
        clone._fibers = dict(self._fibers)
        clone._adjacency = {
            node_id: dict(neighbors)
            for node_id, neighbors in self._adjacency.items()
        }
        # Content is identical, so memoized fingerprints carry over.
        clone._fingerprints = dict(self._fingerprints)
        return clone

    def with_switch_qubits(self, qubits: int) -> "QuantumNetwork":
        """Copy of this network with every switch's budget set to *qubits*."""
        clone = QuantumNetwork(self.params)
        for node in self._nodes.values():
            if isinstance(node, QuantumSwitch):
                clone.add_switch(node.id, node.position, qubits=qubits)
            else:
                clone.add_user(node.id, node.position)
        for fiber in self._fibers.values():
            clone.add_fiber(fiber.u, fiber.v, fiber.length, fiber.cores)
        return clone

    def with_params(self, params: NetworkParams) -> "QuantumNetwork":
        """Copy of this network under different physical parameters."""
        clone = self.copy()
        clone.params = params
        clone._fingerprints.clear()  # alpha / swap_prob are hashed
        return clone

    def residual_capacities(self) -> Dict[Hashable, int]:
        """Fresh per-switch channel-capacity map ``{switch_id: ⌊Q/2⌋}``."""
        return {s.id: s.channel_capacity for s in self.switches}

    def residual_qubits(self) -> Dict[Hashable, int]:
        """Fresh per-switch qubit map ``{switch_id: Q}``."""
        return {s.id: s.qubits for s in self.switches}

    def to_networkx(self) -> nx.Graph:
        """Export to a ``networkx.Graph`` with node/edge attributes.

        Node attributes: ``kind`` ("user"/"switch"), ``position`` and, for
        switches, ``qubits``.  Edge attributes: ``length`` and ``p`` (the
        link success probability under this network's ``alpha``).
        """
        graph = nx.Graph()
        for node in self._nodes.values():
            attrs = {"kind": node.kind.value, "position": node.position}
            if isinstance(node, QuantumSwitch):
                attrs["qubits"] = node.qubits
            graph.add_node(node.id, **attrs)
        for fiber in self._fibers.values():
            graph.add_edge(
                fiber.u,
                fiber.v,
                length=fiber.length,
                p=fiber.success_probability(self.params.alpha),
            )
        return graph

    def total_fiber_length(self) -> float:
        """Sum of all fiber lengths (km)."""
        return sum(f.length for f in self._fibers.values())

    def __repr__(self) -> str:
        return (
            f"QuantumNetwork(users={len(self.users)}, "
            f"switches={len(self.switches)}, fibers={len(self._fibers)}, "
            f"alpha={self.params.alpha}, q={self.params.swap_prob})"
        )
