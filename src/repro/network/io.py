"""JSON (de)serialization of networks and solutions.

Lets experiment pipelines archive the exact networks behind a data point
and reload them later — reproducibility beyond seeds.  The format is a
versioned plain-JSON document; node ids are preserved as-is when they
are JSON-native (str/int) and stringified otherwise.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, Union

from repro.core.problem import Channel, MUERPSolution
from repro.network.graph import NetworkParams, QuantumNetwork

FORMAT_VERSION = 1

#: Node-id types that survive a JSON round-trip unchanged.
_JSON_NATIVE = (str, int)


def _check_id(node_id: Hashable) -> Hashable:
    """Reject ids JSON would silently mangle (tuples → lists, etc.)."""
    if isinstance(node_id, bool) or not isinstance(node_id, _JSON_NATIVE):
        raise TypeError(
            f"node id {node_id!r} of type {type(node_id).__name__} does "
            "not survive JSON round-trips; use str or int ids"
        )
    return node_id


def network_to_dict(network: QuantumNetwork) -> Dict[str, Any]:
    """Serialize *network* into a JSON-ready dict.

    Node ids must be JSON-native (str or int); other hashables would
    come back as different objects and are rejected with ``TypeError``.
    """
    for node in network.nodes:
        _check_id(node.id)
    return {
        "format": "repro.quantum-network",
        "version": FORMAT_VERSION,
        "params": {
            "alpha": network.params.alpha,
            "swap_prob": network.params.swap_prob,
        },
        "users": [
            {"id": user.id, "position": list(user.position)}
            for user in network.users
        ],
        "switches": [
            {
                "id": switch.id,
                "position": list(switch.position),
                "qubits": switch.qubits,
            }
            for switch in network.switches
        ],
        "fibers": [
            {
                "u": fiber.u,
                "v": fiber.v,
                "length": fiber.length,
                "cores": fiber.cores,
            }
            for fiber in network.fibers
        ],
    }


def network_from_dict(data: Dict[str, Any]) -> QuantumNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    if data.get("format") != "repro.quantum-network":
        raise ValueError(f"not a quantum-network document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    params = NetworkParams(
        alpha=data["params"]["alpha"],
        swap_prob=data["params"]["swap_prob"],
    )
    network = QuantumNetwork(params)
    for user in data["users"]:
        network.add_user(user["id"], tuple(user["position"]))
    for switch in data["switches"]:
        network.add_switch(
            switch["id"], tuple(switch["position"]), qubits=switch["qubits"]
        )
    for fiber in data["fibers"]:
        network.add_fiber(
            fiber["u"], fiber["v"], fiber["length"], fiber["cores"]
        )
    return network


def network_to_json(network: QuantumNetwork, indent: int = 2) -> str:
    """Serialize *network* to a JSON string."""
    return json.dumps(network_to_dict(network), indent=indent)


def network_from_json(text: str) -> QuantumNetwork:
    """Parse a network from :func:`network_to_json` output."""
    return network_from_dict(json.loads(text))


def solution_to_dict(solution: MUERPSolution) -> Dict[str, Any]:
    """Serialize a routed solution into a JSON-ready dict."""
    return {
        "format": "repro.muerp-solution",
        "version": FORMAT_VERSION,
        "method": solution.method,
        "feasible": solution.feasible,
        "users": sorted(solution.users, key=repr),
        "extra_log_rate": solution.extra_log_rate,
        "channels": [
            {"path": list(channel.path), "log_rate": channel.log_rate}
            for channel in solution.channels
        ],
    }


def solution_from_dict(data: Dict[str, Any]) -> MUERPSolution:
    """Rebuild a solution from :func:`solution_to_dict` output."""
    if data.get("format") != "repro.muerp-solution":
        raise ValueError(f"not a solution document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    channels = tuple(
        Channel(tuple(entry["path"]), entry["log_rate"])
        for entry in data["channels"]
    )
    return MUERPSolution(
        channels=channels,
        users=frozenset(data["users"]),
        method=data["method"],
        feasible=data["feasible"],
        extra_log_rate=data.get("extra_log_rate", 0.0),
    )


def solution_to_json(solution: MUERPSolution, indent: int = 2) -> str:
    """Serialize a solution to a JSON string."""
    return json.dumps(solution_to_dict(solution), indent=indent)


def solution_from_json(text: str) -> MUERPSolution:
    """Parse a solution from :func:`solution_to_json` output."""
    return solution_from_dict(json.loads(text))
