"""Fluent construction helpers for :class:`~repro.network.QuantumNetwork`."""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Tuple

import networkx as nx

from repro.network.graph import NetworkParams, QuantumNetwork


class NetworkBuilder:
    """Chainable builder for small hand-made networks (tests, examples).

    >>> net = (
    ...     NetworkBuilder()
    ...     .user("alice", (0, 0))
    ...     .user("bob", (2, 0))
    ...     .switch("s", (1, 0), qubits=4)
    ...     .fiber("alice", "s")
    ...     .fiber("s", "bob")
    ...     .build()
    ... )
    >>> len(net.users), len(net.switches)
    (2, 1)
    """

    def __init__(self, params: Optional[NetworkParams] = None) -> None:
        self._network = QuantumNetwork(params)

    def params(self, alpha: float, swap_prob: float) -> "NetworkBuilder":
        """Set physical parameters (must be called before ``build``)."""
        self._network.params = NetworkParams(alpha=alpha, swap_prob=swap_prob)
        return self

    def user(
        self, node_id: Hashable, position: Tuple[float, float] = (0.0, 0.0)
    ) -> "NetworkBuilder":
        """Add a quantum user."""
        self._network.add_user(node_id, position)
        return self

    def users(self, node_ids: Iterable[Hashable]) -> "NetworkBuilder":
        """Add several users at the origin (positions rarely matter in tests)."""
        for node_id in node_ids:
            self._network.add_user(node_id)
        return self

    def switch(
        self,
        node_id: Hashable,
        position: Tuple[float, float] = (0.0, 0.0),
        qubits: int = 4,
    ) -> "NetworkBuilder":
        """Add a quantum switch."""
        self._network.add_switch(node_id, position, qubits=qubits)
        return self

    def fiber(
        self,
        u: Hashable,
        v: Hashable,
        length: Optional[float] = None,
        cores: Optional[int] = None,
    ) -> "NetworkBuilder":
        """Add an optical fiber (length defaults to Euclidean distance)."""
        self._network.add_fiber(u, v, length, cores)
        return self

    def path(
        self,
        node_ids: Iterable[Hashable],
        length: Optional[float] = None,
    ) -> "NetworkBuilder":
        """Connect consecutive nodes of *node_ids* with fibers."""
        ids = list(node_ids)
        for u, v in zip(ids, ids[1:]):
            self._network.add_fiber(u, v, length)
        return self

    def build(self) -> QuantumNetwork:
        """Return the constructed network."""
        return self._network


def network_from_networkx(
    graph: nx.Graph,
    user_ids: Iterable[Hashable],
    params: Optional[NetworkParams] = None,
    default_qubits: int = 4,
    default_length: float = 1.0,
) -> QuantumNetwork:
    """Convert a ``networkx.Graph`` into a :class:`QuantumNetwork`.

    Nodes listed in *user_ids* become quantum users; everything else
    becomes a switch.  Node attribute ``qubits`` and edge attribute
    ``length`` are honoured when present; ``position`` defaults to (0, 0).
    """
    users = set(user_ids)
    missing = users - set(graph.nodes)
    if missing:
        raise ValueError(f"user ids not in graph: {sorted(map(repr, missing))}")
    network = QuantumNetwork(params)
    for node_id, attrs in graph.nodes(data=True):
        position = tuple(attrs.get("position", (0.0, 0.0)))
        if node_id in users:
            network.add_user(node_id, position)
        else:
            network.add_switch(
                node_id, position, qubits=attrs.get("qubits", default_qubits)
            )
    for u, v, attrs in graph.edges(data=True):
        network.add_fiber(u, v, attrs.get("length", default_length))
    return network
