"""Exception hierarchy for the network substrate."""

from __future__ import annotations


class NetworkError(Exception):
    """Base class for all network-model errors."""


class UnknownNodeError(NetworkError, KeyError):
    """A referenced node identifier does not exist in the network."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"unknown node: {node_id!r}")
        self.node_id = node_id


class DuplicateNodeError(NetworkError, ValueError):
    """A node identifier was added twice."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"duplicate node: {node_id!r}")
        self.node_id = node_id


class DuplicateFiberError(NetworkError, ValueError):
    """An optical fiber between the same endpoints was added twice."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"duplicate fiber between {u!r} and {v!r}")
        self.endpoints = (u, v)


class InfeasibleRoutingError(NetworkError, RuntimeError):
    """No feasible entanglement tree exists under the given constraints.

    Raised (or mapped to a zero-rate solution, depending on API) when an
    algorithm cannot span all quantum users — the paper's simulations
    record the entanglement rate as 0 in that case.
    """


class ResilienceError(NetworkError):
    """Base class for runtime fault-handling errors.

    This branch covers *operational* failures — faults injected while a
    protocol is running, deadlines blown mid-service — as opposed to the
    structural/configuration errors above.
    """


class TransientFaultError(ResilienceError, RuntimeError):
    """An injected fault disrupted an in-flight entanglement operation.

    Carries the faulted elements so callers (the resilience runtime,
    the online scheduler) can attempt a capacity-aware re-route.  The
    ``partial`` attribute, when set, holds the partial run result
    accumulated up to the fault.
    """

    def __init__(
        self,
        fibers: tuple = (),
        switches: tuple = (),
        partial: object = None,
    ) -> None:
        parts = []
        if fibers:
            parts.append(f"cut fibers {sorted(fibers, key=repr)!r}")
        if switches:
            parts.append(f"dark switches {sorted(switches, key=repr)!r}")
        detail = " and ".join(parts) or "unspecified fault"
        super().__init__(f"in-flight operation disrupted by {detail}")
        self.fibers = tuple(fibers)
        self.switches = tuple(switches)
        self.partial = partial


class DeadlineExceededError(ResilienceError, RuntimeError):
    """A request's deadline passed before service completed.

    ``partial`` (when set) holds the run telemetry accumulated up to
    the deadline so the caller can attribute the abandonment.
    """

    def __init__(self, deadline: int, slot: int, partial: object = None) -> None:
        super().__init__(
            f"deadline slot {deadline} exceeded at slot {slot}"
        )
        self.deadline = deadline
        self.slot = slot
        self.partial = partial


class FaultScheduleError(ResilienceError, ValueError):
    """A declarative fault schedule is malformed or targets a node or
    fiber that does not exist in the bound network."""
