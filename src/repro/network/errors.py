"""Exception hierarchy for the network substrate."""

from __future__ import annotations


class NetworkError(Exception):
    """Base class for all network-model errors."""


class UnknownNodeError(NetworkError, KeyError):
    """A referenced node identifier does not exist in the network."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"unknown node: {node_id!r}")
        self.node_id = node_id


class DuplicateNodeError(NetworkError, ValueError):
    """A node identifier was added twice."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"duplicate node: {node_id!r}")
        self.node_id = node_id


class DuplicateFiberError(NetworkError, ValueError):
    """An optical fiber between the same endpoints was added twice."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"duplicate fiber between {u!r} and {v!r}")
        self.endpoints = (u, v)


class InfeasibleRoutingError(NetworkError, RuntimeError):
    """No feasible entanglement tree exists under the given constraints.

    Raised (or mapped to a zero-rate solution, depending on API) when an
    algorithm cannot span all quantum users — the paper's simulations
    record the entanglement rate as 0 in that case.
    """
