"""Quantum network substrate: users, switches, optical fibers, topology.

Implements the model of Sec. II of the paper: an undirected graph
``G = (V, E)`` where ``V = U ∪ R`` (quantum users and capacity-limited
quantum switches) and every edge is an optical fiber whose quantum-link
success probability is ``p = exp(-α·L)``.
"""

from repro.network.node import Node, NodeKind, QuantumUser, QuantumSwitch
from repro.network.link import OpticalFiber, fiber_key
from repro.network.graph import NetworkParams, QuantumNetwork
from repro.network.builder import NetworkBuilder, network_from_networkx
from repro.network.errors import (
    NetworkError,
    UnknownNodeError,
    DuplicateNodeError,
    DuplicateFiberError,
)
from repro.network.io import (
    network_to_json,
    network_from_json,
    solution_to_json,
    solution_from_json,
)
from repro.network.statistics import (
    TopologyStats,
    topology_stats,
    degree_histogram,
    bridge_fibers,
    user_eccentricity_km,
)

__all__ = [
    "Node",
    "NodeKind",
    "QuantumUser",
    "QuantumSwitch",
    "OpticalFiber",
    "fiber_key",
    "NetworkParams",
    "QuantumNetwork",
    "NetworkBuilder",
    "network_from_networkx",
    "NetworkError",
    "UnknownNodeError",
    "DuplicateNodeError",
    "DuplicateFiberError",
    "network_to_json",
    "network_from_json",
    "solution_to_json",
    "solution_from_json",
    "TopologyStats",
    "topology_stats",
    "degree_histogram",
    "bridge_fibers",
    "user_eccentricity_km",
]
