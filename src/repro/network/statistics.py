"""Topology statistics for generated and real-world networks.

Used by the analysis layer to characterize the networks behind each
experiment data point — the paper attributes algorithm behaviour to
structural features ("critical edges", density, topology family), and
these metrics make those attributions quantitative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.network.graph import QuantumNetwork


@dataclass(frozen=True)
class TopologyStats:
    """Structural summary of a quantum network."""

    n_users: int
    n_switches: int
    n_fibers: int
    average_degree: float
    max_degree: int
    min_degree: int
    diameter_hops: int
    mean_fiber_km: float
    total_fiber_km: float
    clustering: float
    n_bridges: int
    connected: bool

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.n_users} users / {self.n_switches} switches / "
            f"{self.n_fibers} fibers; degree avg {self.average_degree:.2f} "
            f"(min {self.min_degree}, max {self.max_degree}); "
            f"diameter {self.diameter_hops} hops; mean fiber "
            f"{self.mean_fiber_km:.0f} km; clustering {self.clustering:.3f}; "
            f"{self.n_bridges} bridge fibers; "
            f"{'connected' if self.connected else 'DISCONNECTED'}"
        )


def topology_stats(network: QuantumNetwork) -> TopologyStats:
    """Compute :class:`TopologyStats` for *network*."""
    graph = network.to_networkx()
    degrees = [d for _, d in graph.degree()]
    connected = network.is_connected() and len(graph) > 0
    if connected and len(graph) > 1:
        diameter = nx.diameter(graph)
    else:
        diameter = 0
    n_fibers = network.n_fibers
    mean_length = (
        network.total_fiber_length() / n_fibers if n_fibers else 0.0
    )
    return TopologyStats(
        n_users=len(network.users),
        n_switches=len(network.switches),
        n_fibers=n_fibers,
        average_degree=network.average_degree(),
        max_degree=max(degrees) if degrees else 0,
        min_degree=min(degrees) if degrees else 0,
        diameter_hops=diameter,
        mean_fiber_km=mean_length,
        total_fiber_km=network.total_fiber_length(),
        clustering=nx.average_clustering(graph) if len(graph) > 0 else 0.0,
        n_bridges=sum(1 for _ in nx.bridges(graph)) if len(graph) else 0,
        connected=connected,
    )


def degree_histogram(network: QuantumNetwork) -> Dict[int, int]:
    """Degree → node count."""
    histogram: Dict[int, int] = {}
    for node in network.nodes:
        degree = network.degree(node.id)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def bridge_fibers(network: QuantumNetwork) -> List[Tuple[Hashable, Hashable]]:
    """Fibers whose removal disconnects the graph (the structural part
    of the paper's "critical edges")."""
    graph = network.to_networkx()
    return [tuple(edge) for edge in nx.bridges(graph)]


def user_eccentricity_km(network: QuantumNetwork) -> Dict[Hashable, float]:
    """Per-user worst-case shortest fiber distance (km) to another user.

    A rough indicator of which users will anchor low-rate channels.
    """
    graph = network.to_networkx()
    users = network.user_ids
    result: Dict[Hashable, float] = {}
    lengths = dict(
        nx.all_pairs_dijkstra_path_length(graph, weight="length")
    )
    for user in users:
        reachable = lengths.get(user, {})
        distances = [
            reachable[other] for other in users if other != user and other in reachable
        ]
        result[user] = max(distances) if distances else math.inf
    return result
