"""Zero-dependency metrics: counters, gauges, bucketed histograms.

A :class:`MetricsRegistry` is the process-local metrics account.  Hot
paths publish through the module-level *active registry* — a single
``None`` check when collection is disabled, so instrumented code costs
essentially nothing in the default (disabled) state:

    from repro.obs import metrics as obs_metrics

    reg = obs_metrics.active()
    ...
    if reg is not None:
        reg.inc("core.dijkstra.calls")

Collection is scoped with :func:`collecting`::

    with obs_metrics.collecting() as reg:
        solve_robust(network)
    print(reg.counters())

Design constraints (see docs/OBSERVABILITY.md):

* **Deterministic counters.**  Counters and gauges reflect algorithmic
  work only (calls, relaxations, reservations); two same-seed runs
  produce byte-identical counter maps.  Wall-clock noise is confined to
  histograms.
* **Bounded memory.**  Histograms keep bucket counts plus scalar
  aggregates, never raw samples; percentiles (p50/p95/p99) are
  interpolated from the buckets.
* **Thread-safe.**  All mutation goes through one reentrant lock (the
  solver watchdog runs solvers on worker threads).
* **Resettable.**  :meth:`MetricsRegistry.reset` zeroes everything, so
  tests and long-lived servers can segment collection windows.
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active",
    "enable",
    "disable",
    "collecting",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds.  Spans sub-microsecond to
#: minute-scale latencies (seconds) and doubles as a generic size scale;
#: an implicit +inf bucket catches everything beyond the last bound.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    5e-4,
    1e-3,
    5e-3,
    1e-2,
    5e-2,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        if value > self.value:
            self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Bucketed distribution with interpolated percentile summaries.

    Observations land in the first bucket whose upper bound is >= the
    value (cumulative buckets, Prometheus-style); an implicit ``+inf``
    bucket catches the overflow.  Only bucket counts and scalar
    aggregates are stored, so memory is O(#buckets) regardless of
    traffic.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.name = name
        self.bounds: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.bounds, value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated *q*-th percentile (``q`` in [0, 100]).

        Linear interpolation inside the containing bucket; the overflow
        bucket reports the observed maximum (the only upper bound we
        know for it).  Returns 0 for an empty histogram.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q={q} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index else self.min
                upper = self.bounds[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.max

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def summary(self) -> Dict[str, float]:
        """Scalar digest: count/sum/min/max/mean plus p50/p95/p99."""
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Thread-safe, resettable home for all metrics of one process.

    Metric names are dotted paths (``core.dijkstra.calls``); the full
    catalog lives in docs/OBSERVABILITY.md.  Instruments are created
    lazily on first use and persist across :meth:`reset` (which zeroes
    values but keeps the instruments registered).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, buckets)
                )
        return histogram

    # ------------------------------------------------------------------
    # Publishing shortcuts (the hot-path API)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter *name* by *amount*."""
        with self._lock:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        with self._lock:
            self.gauge(name).set(value)

    def max_gauge(self, name: str, value: float) -> None:
        """Raise gauge *name* to *value* if it is higher (high-water mark)."""
        with self._lock:
            self.gauge(name).set_max(value)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name*."""
        with self._lock:
            self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Reading / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Name → value snapshot of every counter."""
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        """Name → :class:`Histogram` snapshot (exporter read side)."""
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            }

    def to_dict(self) -> Dict[str, object]:
        """Full JSON-serializable snapshot (the ``--metrics`` payload)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histogram_summaries(),
        }

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


# ----------------------------------------------------------------------
# Active-registry plumbing (module-level so the disabled check is one
# global load + None comparison on the hot path).
# ----------------------------------------------------------------------
_active_registry: Optional[MetricsRegistry] = None
_state_lock = threading.Lock()


def active() -> Optional[MetricsRegistry]:
    """The registry collecting right now, or ``None`` when disabled."""
    return _active_registry


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Start routing instrumentation into *registry* (new one if omitted)."""
    global _active_registry
    with _state_lock:
        _active_registry = registry if registry is not None else MetricsRegistry()
        return _active_registry


def disable() -> Optional[MetricsRegistry]:
    """Stop collection; returns the registry that was active (if any)."""
    global _active_registry
    with _state_lock:
        registry, _active_registry = _active_registry, None
        return registry


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Scope metrics collection; restores the previous state on exit.

    Nested scopes compose: the inner scope's registry wins while it is
    open and the outer one resumes afterwards.
    """
    global _active_registry
    with _state_lock:
        previous = _active_registry
        current = registry if registry is not None else MetricsRegistry()
        _active_registry = current
    try:
        yield current
    finally:
        with _state_lock:
            _active_registry = previous
