"""Observability: metrics, tracing and profiling hooks.

The substrate every performance-facing change reports through (see
docs/OBSERVABILITY.md for the metric/span catalog and the format
specifications).  Three layers, all dependency-free:

* :mod:`repro.obs.metrics` — counters, gauges and bucketed histograms
  in a thread-safe, resettable :class:`MetricsRegistry`; hot paths
  publish through a module-level *active registry* that costs one
  ``None`` check when collection is off.
* :mod:`repro.obs.trace` — nested, context-propagated spans with
  deterministic ids and JSONL export.
* :mod:`repro.obs.export` — JSON / Prometheus-text metric renderers
  and the JSONL trace writer.

Quickstart::

    from repro import obs

    with obs.collecting() as reg, obs.tracing() as tracer:
        repro.solve_robust(network)
    print(reg.counters()["core.dijkstra.calls"])
    print(obs.render_prometheus(reg))

Two guarantees the test suite enforces:

1. **No result drift** — enabling collection never changes any solver
   output (instrumentation only counts, it never draws from solver
   RNGs or alters control flow).
2. **No-op cheapness** — with collection disabled the hooks add < 5%
   to a 40-switch robust solve (``tests/obs/test_instrumentation.py``).
"""

from repro.obs.export import (
    prometheus_name,
    render_prometheus,
    write_metrics_json,
    write_metrics_prometheus,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active,
    collecting,
    disable,
    enable,
)
from repro.obs.trace import (
    Span,
    Tracer,
    active_tracer,
    disable_tracer,
    enable_tracer,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "active",
    "enable",
    "disable",
    "collecting",
    "Span",
    "Tracer",
    "active_tracer",
    "enable_tracer",
    "disable_tracer",
    "tracing",
    "span",
    "prometheus_name",
    "render_prometheus",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_trace_jsonl",
]
