"""Nested-span tracing with deterministic span ids and JSONL export.

A :class:`Tracer` records a tree of timed :class:`Span` records.  The
current span is propagated through a :mod:`contextvars` stack, so spans
opened on worker threads or inside nested calls parent correctly without
any explicit plumbing::

    tracer = Tracer(rng=7)
    with tracer.span("solve_robust", chain="conflict_free->prim"):
        with tracer.span("attempt", method="conflict_free"):
            ...
    tracer.export_jsonl("trace.jsonl")

Span *ids* come from :func:`repro.utils.rng.ensure_rng` — seeded, so two
same-seed runs emit structurally identical traces (ids and parentage;
wall-clock fields naturally differ).  Like the metrics layer, the
module-level :func:`span` helper is a single ``None`` check when no
tracer is active, keeping disabled overhead negligible.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "enable_tracer",
    "disable_tracer",
    "tracing",
    "span",
]

#: Stack of open span ids for the current execution context.
_span_stack: ContextVar[Tuple[str, ...]] = ContextVar(
    "repro_obs_span_stack", default=()
)


@dataclass
class Span:
    """One timed operation in the trace tree.

    Attributes:
        name: Operation name (catalog in docs/OBSERVABILITY.md).
        span_id: Deterministic 16-hex-digit id.
        parent_id: Enclosing span's id (``None`` for roots).
        attrs: Free-form attributes attached at open time (plus any
            added through :meth:`set_attr` while the span is open).
        start_s / end_s: ``time.perf_counter`` timestamps.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    attrs: Dict[str, object] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set_attr(self, key: str, value: object) -> None:
        """Attach or overwrite one attribute."""
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans; hand one to :func:`enable_tracer` to activate.

    Args:
        rng: Seed or generator for span-id generation (default seed 0,
            so traces are deterministic unless the caller opts into
            entropy).  The id stream is private to the tracer and never
            touches solver RNG state.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(self, rng: RngLike = 0, clock=time.perf_counter) -> None:
        self._rng = ensure_rng(rng)
        self._clock = clock
        self._open: Dict[str, Span] = {}
        #: Finished spans, in completion order.
        self.spans: List[Span] = []

    def _new_id(self) -> str:
        return f"{int(self._rng.integers(1, 2 ** 63)):016x}"

    def current(self) -> Optional[Span]:
        """The innermost open span of this context, if any."""
        stack = _span_stack.get()
        if not stack:
            return None
        return self._open.get(stack[-1])

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a child span of the context's current span."""
        stack = _span_stack.get()
        record = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=stack[-1] if stack else None,
            attrs=dict(attrs),
            start_s=self._clock(),
        )
        self._open[record.span_id] = record
        token = _span_stack.set(stack + (record.span_id,))
        try:
            yield record
        finally:
            record.end_s = self._clock()
            _span_stack.reset(token)
            self._open.pop(record.span_id, None)
            self.spans.append(record)

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all finished spans (open spans are left to close)."""
        self.spans.clear()

    def find(self, name: str) -> List[Span]:
        """All finished spans with *name*, in completion order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, parent: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == parent.span_id]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [s.to_dict() for s in self.spans]

    def export_jsonl(self, path) -> int:
        """Write one JSON object per finished span; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.spans:
                handle.write(json.dumps(record.to_dict(), default=repr))
                handle.write("\n")
        return len(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(spans={len(self.spans)}, open={len(self._open)})"


# ----------------------------------------------------------------------
# Active-tracer plumbing (mirrors repro.obs.metrics).
# ----------------------------------------------------------------------
_active_tracer: Optional[Tracer] = None

#: Shared no-op context manager returned by :func:`span` when tracing is
#: off — avoids allocating a fresh contextmanager per call.
_NULL_SPAN = nullcontext(None)


def active_tracer() -> Optional[Tracer]:
    """The tracer recording right now, or ``None`` when disabled."""
    return _active_tracer


def enable_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Start recording spans into *tracer* (a fresh one if omitted)."""
    global _active_tracer
    _active_tracer = tracer if tracer is not None else Tracer()
    return _active_tracer


def disable_tracer() -> Optional[Tracer]:
    """Stop recording; returns the tracer that was active (if any)."""
    global _active_tracer
    tracer, _active_tracer = _active_tracer, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope span recording; restores the previous tracer on exit."""
    global _active_tracer
    previous = _active_tracer
    current = tracer if tracer is not None else Tracer()
    _active_tracer = current
    try:
        yield current
    finally:
        _active_tracer = previous


def span(name: str, **attrs: object):
    """Open a span on the active tracer, or a shared no-op when off."""
    tracer = _active_tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)
