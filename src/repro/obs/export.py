"""Exporters: metrics → JSON / Prometheus text, traces → JSONL.

Formats (full specification in docs/OBSERVABILITY.md):

* :func:`write_metrics_json` — one JSON document with ``counters``,
  ``gauges`` and ``histograms`` (scalar summaries incl. p50/p95/p99)
  sections, each sorted by metric name so same-seed runs diff cleanly.
* :func:`render_prometheus` — Prometheus text exposition format
  (version 0.0.4): counters as ``TYPE counter``, gauges as ``gauge``,
  histograms as the conventional ``_bucket``/``_sum``/``_count``
  triple with cumulative ``le`` labels.
* :func:`write_trace_jsonl` — one JSON object per finished span.

The renderers only *read* registries/tracers, so they are safe to call
mid-run (e.g. a periodic scrape of a long experiment).
"""

from __future__ import annotations

import json
import math
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "render_prometheus",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_trace_jsonl",
    "prometheus_name",
]


def prometheus_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus grammar.

    Dots and dashes become underscores (``core.dijkstra.calls`` →
    ``repro_core_dijkstra_calls``); everything is prefixed with
    ``repro_`` to namespace the exposition.
    """
    safe = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    return f"repro_{safe}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines = []
    for name, value in registry.counters().items():
        metric = prometheus_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in registry.gauges().items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, histogram in registry.histograms().items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(
            histogram.bounds, histogram.bucket_counts
        ):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += histogram.bucket_counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_json(registry: MetricsRegistry, path) -> None:
    """Write the registry snapshot as an indented JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_metrics_prometheus(registry: MetricsRegistry, path) -> None:
    """Write the registry in Prometheus text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry))


def write_trace_jsonl(tracer: Optional[Tracer], path) -> int:
    """Write *tracer*'s finished spans as JSONL; returns the span count.

    A ``None`` tracer writes an empty file (so callers can pass
    :func:`repro.obs.trace.disable_tracer`'s return unconditionally).
    """
    if tracer is None:
        open(path, "w", encoding="utf-8").close()
        return 0
    return tracer.export_jsonl(path)
