"""Deterministic slot-clocked admission limiters.

Classic rate limiters tick on wall-clock time; the simulation stack
ticks on *slots*, so every limiter here is driven by the scheduler's
slot counter instead.  That makes admission decisions a pure function
of the request stream — two same-seed runs produce byte-identical
decision sequences, the property the admission test suite pins down.

The contract is :class:`AdmissionPolicy`:

* :meth:`~AdmissionPolicy.decide` inspects a request at a slot and
  returns an :class:`AdmissionDecision` (``admit`` / ``throttle`` /
  ``shed``) without consuming anything;
* :meth:`~AdmissionPolicy.commit` is called once the whole policy
  chain admitted the request (this is where a token bucket spends);
* :meth:`~AdmissionPolicy.on_released` is called when an admitted
  request reaches a terminal disposition (this is where a bulkhead
  frees its slot).

Limiters are keyed: the default key is the request's ``tenant``
attribute (``None`` when unset, i.e. one global bucket), so a noisy
tenant can be contained without starving the rest.
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.online import EntanglementRequest

logger = logging.getLogger("repro.admission.limiter")

#: Decision actions (the only values :class:`AdmissionDecision` accepts).
ADMIT = "admit"
THROTTLE = "throttle"
SHED = "shed"
ACTIONS = (ADMIT, THROTTLE, SHED)


@dataclass(frozen=True)
class AdmissionDecision:
    """Verdict of one policy (or a whole chain) on one request.

    Attributes:
        action: ``admit`` (proceed to routing), ``throttle`` (hold in
            the admission queue), or ``shed`` (refuse outright).
        policy: Name of the policy that produced the verdict.
        reason: Human-readable attribution ("" for clean admits).
    """

    action: str
    policy: str = ""
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown admission action {self.action!r}")

    @property
    def admitted(self) -> bool:
        return self.action == ADMIT


def tenant_key(request: "EntanglementRequest") -> Hashable:
    """Default limiter key: the request's tenant (``None`` = global)."""
    return getattr(request, "tenant", None)


class AdmissionPolicy(abc.ABC):
    """One admission rule; compose several with :class:`PolicyChain`."""

    name: str = "policy"

    @abc.abstractmethod
    def decide(
        self, request: "EntanglementRequest", slot: int
    ) -> AdmissionDecision:
        """Judge *request* at *slot* without consuming any resource."""

    def commit(self, request: "EntanglementRequest", slot: int) -> None:
        """The whole chain admitted *request*; spend its resources."""

    def on_released(self, request: "EntanglementRequest", slot: int) -> None:
        """An admitted request reached a terminal disposition."""

    def reset(self) -> None:
        """Forget all keyed state (fresh run)."""


class TokenBucketLimiter(AdmissionPolicy):
    """Slot-clocked token bucket, one bucket per key.

    A key's bucket starts full at ``capacity`` tokens and refills by
    ``rate`` tokens per elapsed slot (capped at ``capacity``).  A
    request is admitted when its bucket holds at least ``cost`` tokens
    and the chain's :meth:`commit` spends them; otherwise it is
    throttled.

    Args:
        rate: Tokens refilled per slot (> 0).
        capacity: Bucket size, i.e. the largest tolerated burst (>= cost).
        cost: Tokens one request spends (> 0).
        key_fn: Maps a request to its bucket key (default: tenant).
        name: Label used in decisions and metrics.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        cost: float = 1.0,
        key_fn: Callable[["EntanglementRequest"], Hashable] = tenant_key,
        name: str = "token-bucket",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if cost <= 0:
            raise ValueError(f"cost must be > 0, got {cost}")
        if capacity < cost:
            raise ValueError(
                f"capacity {capacity} cannot be below cost {cost}"
            )
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.cost = float(cost)
        self.key_fn = key_fn
        self.name = name
        self._tokens: Dict[Hashable, float] = {}
        self._last_slot: Dict[Hashable, int] = {}

    def _refill(self, key: Hashable, slot: int) -> float:
        last = self._last_slot.get(key)
        if last is None:
            tokens = self.capacity
        else:
            elapsed = max(0, slot - last)
            tokens = min(
                self.capacity, self._tokens[key] + elapsed * self.rate
            )
        self._tokens[key] = tokens
        self._last_slot[key] = slot
        return tokens

    def tokens(self, key: Hashable = None) -> float:
        """Current balance of *key*'s bucket (full if never touched)."""
        return self._tokens.get(key, self.capacity)

    def decide(
        self, request: "EntanglementRequest", slot: int
    ) -> AdmissionDecision:
        key = self.key_fn(request)
        tokens = self._refill(key, slot)
        if tokens >= self.cost:
            return AdmissionDecision(ADMIT, policy=self.name)
        return AdmissionDecision(
            THROTTLE,
            policy=self.name,
            reason=(
                f"bucket for key {key!r} holds {tokens:.3f} tokens "
                f"< cost {self.cost:g}"
            ),
        )

    def commit(self, request: "EntanglementRequest", slot: int) -> None:
        key = self.key_fn(request)
        tokens = self._refill(key, slot)
        self._tokens[key] = max(0.0, tokens - self.cost)

    def reset(self) -> None:
        self._tokens.clear()
        self._last_slot.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TokenBucketLimiter(rate={self.rate}, capacity={self.capacity}, "
            f"cost={self.cost}, keys={len(self._tokens)})"
        )


class ConcurrencyLimiter(AdmissionPolicy):
    """Bulkhead: at most ``max_in_flight`` open requests per key.

    A request is *open* from the moment the chain commits it until the
    scheduler reports its terminal disposition (served, shed, rejected,
    abandoned, …) via :meth:`on_released` — i.e. the bulkhead bounds
    in-system concurrency (waiting + being served), not just active
    reservations.
    """

    def __init__(
        self,
        max_in_flight: int,
        key_fn: Callable[["EntanglementRequest"], Hashable] = tenant_key,
        name: str = "bulkhead",
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = max_in_flight
        self.key_fn = key_fn
        self.name = name
        self._in_flight: Dict[Hashable, int] = {}

    def in_flight(self, key: Hashable = None) -> int:
        return self._in_flight.get(key, 0)

    def decide(
        self, request: "EntanglementRequest", slot: int
    ) -> AdmissionDecision:
        key = self.key_fn(request)
        open_now = self._in_flight.get(key, 0)
        if open_now < self.max_in_flight:
            return AdmissionDecision(ADMIT, policy=self.name)
        return AdmissionDecision(
            THROTTLE,
            policy=self.name,
            reason=(
                f"bulkhead for key {key!r} full "
                f"({open_now}/{self.max_in_flight} in flight)"
            ),
        )

    def commit(self, request: "EntanglementRequest", slot: int) -> None:
        key = self.key_fn(request)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1

    def on_released(self, request: "EntanglementRequest", slot: int) -> None:
        key = self.key_fn(request)
        count = self._in_flight.get(key, 0)
        if count <= 0:  # release without commit: scheduler bug guard
            logger.warning(
                "bulkhead release without commit for key %r", key
            )
            return
        self._in_flight[key] = count - 1

    def reset(self) -> None:
        self._in_flight.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        total = sum(self._in_flight.values())
        return (
            f"ConcurrencyLimiter(max={self.max_in_flight}, "
            f"open={total})"
        )


class PolicyChain(AdmissionPolicy):
    """Evaluate policies in order; the first non-admit verdict wins.

    Resources are only spent (:meth:`AdmissionPolicy.commit`) when
    *every* member admits, so a request throttled by the bulkhead does
    not burn token-bucket tokens.
    """

    def __init__(
        self, policies: Sequence[AdmissionPolicy], name: str = "chain"
    ) -> None:
        self.policies: List[AdmissionPolicy] = list(policies)
        if not self.policies:
            raise ValueError("policy chain needs at least one policy")
        self.name = name

    def decide(
        self, request: "EntanglementRequest", slot: int
    ) -> AdmissionDecision:
        for policy in self.policies:
            decision = policy.decide(request, slot)
            if not decision.admitted:
                return decision
        for policy in self.policies:
            policy.commit(request, slot)
        return AdmissionDecision(ADMIT, policy=self.name)

    def commit(self, request: "EntanglementRequest", slot: int) -> None:
        # decide() already committed on full admission; nothing extra.
        pass

    def on_released(self, request: "EntanglementRequest", slot: int) -> None:
        for policy in self.policies:
            policy.on_released(request, slot)

    def reset(self) -> None:
        for policy in self.policies:
            policy.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(p.name for p in self.policies)
        return f"PolicyChain([{inner}])"
