"""Admission control and overload protection for the serving path.

The online scheduler (:mod:`repro.sim.online`) historically admitted
every :class:`~repro.sim.online.EntanglementRequest` unconditionally: a
traffic burst simply starved qubit capacity and deadlines failed after
the fact.  This package gives the serving stack a principled front
door — admit, queue, shed, or degrade, deliberately and observably:

* :mod:`repro.admission.limiter` — deterministic slot-clocked
  token-bucket and concurrency (bulkhead) limiters, per-tenant keyed,
  composable into an :class:`AdmissionPolicy` chain;
* :mod:`repro.admission.queue` — bounded admission queues with
  pluggable shed policies (drop-newest, drop-oldest, deadline-aware
  EDF shedding, lowest-expected-rate-first using Eq. (1) channel
  estimates as the value signal, and weighted-fair multi-tenant
  shedding backed by :class:`repro.tenancy.slo.SLORegistry`);
* :mod:`repro.admission.backpressure` — a :class:`LoadSignal` derived
  from :class:`~repro.core.ledger.CapacityLedger` occupancy and queue
  depth drives brownout tiers (full → degraded → shed) with hysteresis
  so tiers don't flap;
* :mod:`repro.admission.hedge` — hedged solve attempts for
  near-deadline requests, reusing the alternate-solver fallback idea of
  :func:`~repro.core.registry.solve_robust`;
* :mod:`repro.admission.control` — the :class:`AdmissionController`
  facade the scheduler consults (one object bundling policy chain,
  queue, brownout controller and hedge policy).

Every decision is a pure function of the slot clock, the request
stream, and ledger state — two same-seed runs produce byte-identical
admission decisions.  See ``docs/RESILIENCE.md`` ("Admission control &
brownout tiers") for the policy catalog and metric names.
"""

from repro.admission.backpressure import (
    TIER_DEGRADED,
    TIER_FULL,
    TIER_SHED,
    TIERS,
    BrownoutController,
    LoadSignal,
    measure_load,
)
from repro.admission.control import AdmissionController
from repro.admission.hedge import HedgePolicy
from repro.admission.limiter import (
    ADMIT,
    SHED,
    THROTTLE,
    AdmissionDecision,
    AdmissionPolicy,
    ConcurrencyLimiter,
    PolicyChain,
    TokenBucketLimiter,
    tenant_key,
)
from repro.admission.queue import (
    DEADLINE_AWARE,
    DROP_NEWEST,
    DROP_OLDEST,
    LOWEST_VALUE,
    SHED_POLICIES,
    WEIGHTED_FAIR,
    AdmissionQueue,
    QueueEntry,
    group_log_rate_estimate,
    request_value_fn,
)

__all__ = [
    "ADMIT",
    "THROTTLE",
    "SHED",
    "AdmissionDecision",
    "AdmissionPolicy",
    "TokenBucketLimiter",
    "ConcurrencyLimiter",
    "PolicyChain",
    "tenant_key",
    "DROP_NEWEST",
    "DROP_OLDEST",
    "DEADLINE_AWARE",
    "LOWEST_VALUE",
    "WEIGHTED_FAIR",
    "SHED_POLICIES",
    "AdmissionQueue",
    "QueueEntry",
    "group_log_rate_estimate",
    "request_value_fn",
    "TIER_FULL",
    "TIER_DEGRADED",
    "TIER_SHED",
    "TIERS",
    "LoadSignal",
    "measure_load",
    "BrownoutController",
    "HedgePolicy",
    "AdmissionController",
]
