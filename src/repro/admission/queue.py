"""Bounded admission queues with pluggable shed policies.

Requests the limiter chain throttles wait here instead of being lost
outright.  The queue is *bounded*: when it is full, a shed policy picks
a deterministic victim among the queued entries plus the newcomer:

* ``drop-newest`` — refuse the newcomer (classic tail drop);
* ``drop-oldest`` — shed the longest-queued entry, admit the newcomer
  (head drop: old requests are the most likely to be stale);
* ``deadline-aware`` — shed the entry with the *most* deadline slack
  (largest :attr:`~repro.sim.online.EntanglementRequest.last_start_slot`);
  the queue also drains earliest-deadline-first (EDF);
* ``lowest-rate-first`` — shed the entry with the lowest expected
  entanglement value, where value is the Eq. (1) channel-rate estimate
  from :func:`group_log_rate_estimate`; the queue drains
  highest-value-first.
* ``weighted-fair`` — multi-tenant fairness: shed from the tenant that
  has absorbed the least ``shed_fraction × weight`` so far, never from
  a contract-compliant tenant while a non-compliant one is present
  (anti-starvation); needs an
  :class:`~repro.tenancy.slo.SLORegistry` (the ``fairness`` argument).
  The queue drains most-pain-absorbed-first.

All victim selection and drain ordering is deterministic (ties break on
arrival sequence), so same-seed runs shed identically.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import QuantumNetwork
    from repro.sim.online import EntanglementRequest
    from repro.tenancy.slo import SLORegistry

logger = logging.getLogger("repro.admission.queue")

#: Shed-policy names (the only values :class:`AdmissionQueue` accepts).
DROP_NEWEST = "drop-newest"
DROP_OLDEST = "drop-oldest"
DEADLINE_AWARE = "deadline-aware"
LOWEST_VALUE = "lowest-rate-first"
WEIGHTED_FAIR = "weighted-fair"
SHED_POLICIES = (
    DROP_NEWEST,
    DROP_OLDEST,
    DEADLINE_AWARE,
    LOWEST_VALUE,
    WEIGHTED_FAIR,
)


@dataclass(frozen=True)
class QueueEntry:
    """One throttled request parked in the admission queue."""

    request: "EntanglementRequest"
    enqueued_slot: int
    seq: int
    value: float = 0.0

    @property
    def name(self) -> str:
        return self.request.name


def group_log_rate_estimate(
    network: "QuantumNetwork", users: Iterable[Hashable]
) -> float:
    """Optimistic Eq. (1) value estimate for a user group.

    Sums the best-channel log-rates along the sorted-user chain on an
    idle network (capacity ignored) — an upper-bound proxy for the
    group's achievable tree rate, cheap enough to compute per request.
    Returns ``-inf`` when any consecutive pair is unconnectable.
    """
    from repro.core.channel import find_best_channel

    ordered = sorted(users, key=repr)
    total = 0.0
    for source, target in zip(ordered, ordered[1:]):
        channel = find_best_channel(network, source, target)
        if channel is None:
            return float("-inf")
        total += channel.log_rate
    return total


def request_value_fn(
    network: "QuantumNetwork",
) -> Callable[["EntanglementRequest"], float]:
    """A cached request → expected-log-rate valuer over *network*.

    The estimate depends only on the user set, so repeated requests for
    the same group (the common case under overload) hit the cache.
    """
    cache: Dict[FrozenSet[Hashable], float] = {}

    def value(request: "EntanglementRequest") -> float:
        key = frozenset(request.users)
        cached = cache.get(key)
        if cached is None:
            cached = group_log_rate_estimate(network, request.users)
            cache[key] = cached
        return cached

    return value


class AdmissionQueue:
    """Bounded, shed-policy-governed holding pen for throttled requests.

    Args:
        maxsize: Queue capacity (>= 1).
        shed_policy: One of :data:`SHED_POLICIES`.
        value_fn: Request valuer, required for ``lowest-rate-first``
            (see :func:`request_value_fn`); ignored otherwise.
        fairness: Tenant account book for ``weighted-fair`` shedding
            (share it with the admission controller so victim
            selection sees live shed fractions); a fresh default
            registry — every tenant on the default contract — is
            created when omitted.
    """

    def __init__(
        self,
        maxsize: int,
        shed_policy: str = DROP_NEWEST,
        value_fn: Optional[Callable[["EntanglementRequest"], float]] = None,
        fairness: Optional["SLORegistry"] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {shed_policy!r}; "
                f"choose from {SHED_POLICIES}"
            )
        if shed_policy == LOWEST_VALUE and value_fn is None:
            raise ValueError(
                f"{LOWEST_VALUE!r} needs a value_fn "
                "(see request_value_fn)"
            )
        if shed_policy == WEIGHTED_FAIR and fairness is None:
            from repro.tenancy.slo import SLORegistry

            fairness = SLORegistry()
        self.maxsize = maxsize
        self.shed_policy = shed_policy
        self.value_fn = value_fn
        self.fairness = fairness
        self._entries: List[QueueEntry] = []
        self._seq = 0
        self.peak_depth = 0
        self.sheds = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._entries)

    @property
    def fill(self) -> float:
        """Occupancy fraction in [0, 1] (the backpressure input)."""
        return len(self._entries) / self.maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> Tuple[str, ...]:
        return tuple(e.name for e in self._entries)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def offer(
        self, request: "EntanglementRequest", slot: int
    ) -> Tuple[bool, Optional[QueueEntry]]:
        """Try to park *request*; shed a victim when full.

        Returns ``(queued, shed_entry)``: *queued* says whether the
        newcomer is now in the queue; *shed_entry* is the entry the
        shed policy evicted (possibly the newcomer itself, in which
        case ``queued`` is False), or ``None`` when nothing was shed.
        """
        entry = QueueEntry(
            request=request,
            enqueued_slot=slot,
            seq=self._seq,
            value=self.value_fn(request) if self.value_fn else 0.0,
        )
        self._seq += 1
        if len(self._entries) < self.maxsize:
            self._entries.append(entry)
            self.peak_depth = max(self.peak_depth, len(self._entries))
            return True, None
        victim = self._pick_victim(entry, slot)
        self.sheds += 1
        if victim is entry:
            logger.debug(
                "queue full: shedding newcomer %s (%s)",
                entry.name,
                self.shed_policy,
            )
            return False, entry
        self._entries.remove(victim)
        self._entries.append(entry)
        self.peak_depth = max(self.peak_depth, len(self._entries))
        logger.debug(
            "queue full: shed %s for newcomer %s (%s)",
            victim.name,
            entry.name,
            self.shed_policy,
        )
        return True, victim

    def _pick_victim(self, newcomer: QueueEntry, slot: int) -> QueueEntry:
        """Deterministic victim among queued entries + *newcomer*."""
        if self.shed_policy == DROP_NEWEST:
            return newcomer
        if self.shed_policy == DROP_OLDEST:
            return min(self._entries, key=lambda e: e.seq)
        pool = self._entries + [newcomer]
        if self.shed_policy == DEADLINE_AWARE:
            # Most slack goes first; newest sheds on ties.
            return max(
                pool, key=lambda e: (e.request.last_start_slot, e.seq)
            )
        if self.shed_policy == WEIGHTED_FAIR:
            from repro.tenancy.fairness import pick_weighted_fair_victim

            return pick_weighted_fair_victim(pool, self.fairness, slot)
        # LOWEST_VALUE: cheapest expected rate goes first; newest on ties.
        return min(pool, key=lambda e: (e.value, -e.seq))

    def expired(self, slot: int) -> List[QueueEntry]:
        """Remove and return entries that can no longer start by *slot*."""
        overdue = [
            e for e in self._entries if e.request.last_start_slot < slot
        ]
        if overdue:
            self._entries = [
                e
                for e in self._entries
                if e.request.last_start_slot >= slot
            ]
            self.expirations += len(overdue)
        return sorted(overdue, key=lambda e: e.seq)

    def drain_order(self) -> List[QueueEntry]:
        """Entries in dequeue-priority order (a snapshot, not a pop)."""
        if self.shed_policy == DEADLINE_AWARE:
            return sorted(
                self._entries,
                key=lambda e: (e.request.last_start_slot, e.seq),
            )
        if self.shed_policy == LOWEST_VALUE:
            return sorted(self._entries, key=lambda e: (-e.value, e.seq))
        if self.shed_policy == WEIGHTED_FAIR:
            from repro.tenancy.fairness import weighted_fair_drain_order

            return weighted_fair_drain_order(self._entries, self.fairness)
        return sorted(self._entries, key=lambda e: e.seq)

    def remove(self, entry: QueueEntry) -> None:
        """Take *entry* out of the queue (it was drained)."""
        self._entries.remove(entry)

    def reset(self) -> None:
        self._entries.clear()
        self._seq = 0
        self.peak_depth = 0
        self.sheds = 0
        self.expirations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionQueue(depth={len(self._entries)}/{self.maxsize}, "
            f"policy={self.shed_policy!r})"
        )
