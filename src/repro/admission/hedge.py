"""Hedged solve attempts for near-deadline requests.

When a request is one or two slots from its give-up point, a single
failed routing attempt is fatal — there is no next slot to retry in.
:class:`HedgePolicy` spends extra solver work on exactly those
requests: if the scheduler's primary method finds no tree, it
immediately re-tries with the policy's alternate methods in the same
slot, the same idea as :func:`~repro.core.registry.solve_robust`'s
fallback chain but scoped to the online serving path.

Hedging is bounded (``max_hedges``) so a pathological workload cannot
turn every admission attempt into a multi-solver scan, and counted
(:attr:`hedges_spent` / :attr:`hedge_wins`) so its benefit is
observable.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.online import EntanglementRequest

logger = logging.getLogger("repro.admission.hedge")


class HedgePolicy:
    """Decide when a blocked request earns same-slot alternate solves.

    Args:
        slack_slots: Hedge when ``last_start_slot - slot`` is at most
            this (0 = only on the literal last chance).
        methods: Alternate solver methods to try, in order; the
            scheduler skips entries equal to its own primary method.
        max_hedges: Total hedged attempts allowed per run (``None`` =
            unbounded).
    """

    def __init__(
        self,
        slack_slots: int = 1,
        methods: Sequence[str] = ("conflict_free",),
        max_hedges: Optional[int] = None,
    ) -> None:
        if slack_slots < 0:
            raise ValueError(
                f"slack_slots must be >= 0, got {slack_slots}"
            )
        if not methods:
            raise ValueError("hedge needs at least one alternate method")
        if max_hedges is not None and max_hedges < 1:
            raise ValueError("max_hedges must be >= 1 when set")
        self.slack_slots = slack_slots
        self.methods: Tuple[str, ...] = tuple(methods)
        self.max_hedges = max_hedges
        self.hedges_spent = 0
        self.hedge_wins = 0

    def should_hedge(
        self, request: "EntanglementRequest", slot: int
    ) -> bool:
        """Whether *request* at *slot* qualifies for a hedged attempt."""
        if (
            self.max_hedges is not None
            and self.hedges_spent >= self.max_hedges
        ):
            return False
        return request.last_start_slot - slot <= self.slack_slots

    def record_attempt(self) -> None:
        self.hedges_spent += 1

    def record_win(self, request_name: str, method: str) -> None:
        self.hedge_wins += 1
        logger.info(
            "hedged solve won for %s via %r", request_name, method
        )

    def reset(self) -> None:
        self.hedges_spent = 0
        self.hedge_wins = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HedgePolicy(slack={self.slack_slots}, "
            f"methods={self.methods!r}, "
            f"spent={self.hedges_spent}, wins={self.hedge_wins})"
        )
