"""Load sensing and brownout tiers for the serving path.

Overload protection needs a *signal* before it can act.  The
:class:`LoadSignal` here is derived from the two queues the scheduler
actually owns: qubit occupancy in the
:class:`~repro.core.ledger.CapacityLedger` (how much of the network is
pinned right now) and admission-queue fill (how much demand is already
waiting).  The :class:`BrownoutController` maps that signal onto three
service tiers:

* ``full`` — every admitted request gets full-group service;
* ``degraded`` — requests whose full group cannot be routed are served
  as the largest routable user subset (the PR-1 degradation path,
  applied at admission time instead of after a fault);
* ``shed`` — new arrivals are refused outright; only in-flight and
  already-queued work proceeds.

Transitions are *hysteretic*: a tier is entered at its ``enter``
threshold but only left at a strictly lower ``exit`` threshold, and
only after ``min_dwell`` slots in the tier — so an oscillating load
signal cannot make the tier flap slot to slot.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.admission.queue import AdmissionQueue
    from repro.core.ledger import CapacityLedger

logger = logging.getLogger("repro.admission.backpressure")

#: Brownout tiers, mildest first.  Index in TIERS = gauge value.
TIER_FULL = "full"
TIER_DEGRADED = "degraded"
TIER_SHED = "shed"
TIERS = (TIER_FULL, TIER_DEGRADED, TIER_SHED)


@dataclass(frozen=True)
class LoadSignal:
    """Instantaneous load view feeding the brownout controller.

    Attributes:
        occupancy: Fraction of total switch-qubit budget currently
            reserved, in [0, 1].
        queue_fill: Admission-queue occupancy fraction, in [0, 1]
            (0 when no queue is configured).
    """

    occupancy: float
    queue_fill: float = 0.0

    @property
    def level(self) -> float:
        """The scalar the tier thresholds compare against."""
        return max(self.occupancy, self.queue_fill)


def measure_load(
    ledger: "CapacityLedger", queue: Optional["AdmissionQueue"] = None
) -> LoadSignal:
    """Current :class:`LoadSignal` from ledger occupancy + queue depth."""
    total_budget = 0
    total_used = 0
    for switch in ledger.keys():
        budget = ledger.budget(switch)
        total_budget += budget
        total_used += max(0, budget - ledger.available(switch))
    occupancy = total_used / total_budget if total_budget else 0.0
    queue_fill = queue.fill if queue is not None else 0.0
    return LoadSignal(occupancy=occupancy, queue_fill=queue_fill)


class BrownoutController:
    """Hysteretic state machine over the brownout tiers.

    Args:
        degrade_enter: Load level at which ``full`` escalates to
            ``degraded``.
        degrade_exit: Level at or below which ``degraded`` may relax to
            ``full`` (must be < ``degrade_enter``).
        shed_enter: Level at which any tier escalates to ``shed``.
        shed_exit: Level at or below which ``shed`` may relax to
            ``degraded`` (must be < ``shed_enter``).
        min_dwell: Slots a tier must be held before it may *relax*
            (escalation is always immediate — protecting the network
            never waits).
    """

    def __init__(
        self,
        degrade_enter: float = 0.70,
        degrade_exit: float = 0.50,
        shed_enter: float = 0.92,
        shed_exit: float = 0.70,
        min_dwell: int = 2,
    ) -> None:
        for name, value in (
            ("degrade_enter", degrade_enter),
            ("degrade_exit", degrade_exit),
            ("shed_enter", shed_enter),
            ("shed_exit", shed_exit),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if degrade_exit >= degrade_enter:
            raise ValueError(
                "degrade_exit must be < degrade_enter (hysteresis band)"
            )
        if shed_exit >= shed_enter:
            raise ValueError(
                "shed_exit must be < shed_enter (hysteresis band)"
            )
        if degrade_enter > shed_enter:
            raise ValueError("degrade_enter cannot exceed shed_enter")
        if min_dwell < 0:
            raise ValueError(f"min_dwell must be >= 0, got {min_dwell}")
        self.degrade_enter = degrade_enter
        self.degrade_exit = degrade_exit
        self.shed_enter = shed_enter
        self.shed_exit = shed_exit
        self.min_dwell = min_dwell
        self.tier = TIER_FULL
        self._entered_slot = 0
        #: (slot, new tier) history of every transition, in order.
        self.transitions: List[Tuple[int, str]] = []

    @property
    def tier_level(self) -> int:
        """Numeric tier (gauge-friendly): 0 full, 1 degraded, 2 shed."""
        return TIERS.index(self.tier)

    def _move(self, tier: str, slot: int) -> None:
        logger.info(
            "brownout %s -> %s at slot %d", self.tier, tier, slot
        )
        self.tier = tier
        self._entered_slot = slot
        self.transitions.append((slot, tier))

    def update(self, signal: LoadSignal, slot: int) -> str:
        """Advance the state machine with *signal*; returns the tier."""
        level = signal.level
        # Escalation: immediate, worst tier wins.
        if level >= self.shed_enter:
            if self.tier != TIER_SHED:
                self._move(TIER_SHED, slot)
            return self.tier
        if level >= self.degrade_enter and self.tier == TIER_FULL:
            self._move(TIER_DEGRADED, slot)
            return self.tier
        # Relaxation: hysteretic (exit threshold) + dwell-limited.
        if slot - self._entered_slot < self.min_dwell:
            return self.tier
        if self.tier == TIER_SHED and level <= self.shed_exit:
            self._move(
                TIER_DEGRADED if level > self.degrade_exit else TIER_FULL,
                slot,
            )
        elif self.tier == TIER_DEGRADED and level <= self.degrade_exit:
            self._move(TIER_FULL, slot)
        return self.tier

    def reset(self) -> None:
        self.tier = TIER_FULL
        self._entered_slot = 0
        self.transitions.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BrownoutController(tier={self.tier!r}, "
            f"transitions={len(self.transitions)})"
        )
