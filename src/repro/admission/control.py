"""The :class:`AdmissionController` facade the scheduler consults.

One object bundles the four admission mechanisms — limiter chain,
bounded shed queue, brownout controller, hedge policy — behind the
narrow surface :class:`repro.sim.online.OnlineScheduler` needs:

* :meth:`AdmissionController.begin_slot` — refresh the load signal and
  brownout tier once per slot (publishing the queue-depth and tier
  gauges);
* :meth:`AdmissionController.decide` — run the policy chain on one
  request (counting admitted/throttled/shed verdicts);
* :meth:`AdmissionController.on_closed` — account a terminal
  disposition (freeing bulkhead slots).

Every component is optional: ``AdmissionController()`` admits
everything (useful as an instrumented pass-through), and
:meth:`AdmissionController.default` builds a sensibly-tuned full stack
for one network.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import repro.obs.metrics as obs_metrics
from repro.admission.backpressure import (
    TIER_FULL,
    BrownoutController,
    LoadSignal,
    measure_load,
)
from repro.admission.hedge import HedgePolicy
from repro.admission.limiter import (
    ADMIT,
    AdmissionDecision,
    AdmissionPolicy,
    ConcurrencyLimiter,
    PolicyChain,
    TokenBucketLimiter,
)
from repro.admission.queue import (
    DROP_NEWEST,
    AdmissionQueue,
    request_value_fn,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ledger import CapacityLedger
    from repro.network.graph import QuantumNetwork
    from repro.sim.online import EntanglementRequest
    from repro.tenancy.slo import SLORegistry

logger = logging.getLogger("repro.admission.control")


def _tenant_label(request: "EntanglementRequest") -> str:
    from repro.tenancy.slo import tenant_label

    return tenant_label(request)


class AdmissionController:
    """Admission front door: policy chain + queue + brownout + hedge.

    Args:
        policy: The limiter chain consulted per request (``None`` =
            admit everything).
        queue: Bounded holding pen for throttled requests (``None`` =
            throttle verdicts become immediate sheds).
        brownout: Tier state machine driven by ledger/queue load
            (``None`` = always ``full`` service).
        hedge: Near-deadline alternate-solver policy (``None`` = no
            hedging).
        slo: Per-tenant SLO account book
            (:class:`~repro.tenancy.slo.SLORegistry`).  When set, the
            controller records every arrival and disposition per
            tenant, the ``weighted-fair`` queue policy sees live shed
            fractions, and the scheduler's brownout SHED tier spares
            contract-compliant arrivals (the SLO guard).  ``None``
            keeps the single-tenant behaviour.
    """

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        queue: Optional[AdmissionQueue] = None,
        brownout: Optional[BrownoutController] = None,
        hedge: Optional[HedgePolicy] = None,
        slo: Optional["SLORegistry"] = None,
    ) -> None:
        self.policy = policy
        self.queue = queue
        self.brownout = brownout
        self.hedge = hedge
        self.slo = slo
        self.admitted = 0
        self.throttled = 0
        self.shed: Dict[str, int] = {}
        #: tenant → cause → sheds (the SLO-attribution breakdown).
        self.shed_by_tenant: Dict[str, Dict[str, int]] = {}
        self.expired = 0
        self._open: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default(
        cls,
        network: Optional["QuantumNetwork"] = None,
        rate: float = 1.0,
        burst: float = 4.0,
        bulkhead: int = 32,
        queue_size: int = 16,
        shed_policy: str = DROP_NEWEST,
        hedge_methods: Tuple[str, ...] = ("conflict_free",),
        slo: Optional["SLORegistry"] = None,
    ) -> "AdmissionController":
        """A full admission stack with conservative defaults.

        *network* enables the Eq. (1) value signal for
        ``lowest-rate-first`` shedding; it is required for that policy
        and ignored by the others.  *slo* enables tenant-level
        accounting; ``weighted-fair`` shedding creates a default
        registry when none is given, so victim selection and the
        controller always share one account book.
        """
        from repro.admission.queue import LOWEST_VALUE, WEIGHTED_FAIR

        value_fn = None
        if shed_policy == LOWEST_VALUE:
            if network is None:
                raise ValueError(
                    f"{LOWEST_VALUE!r} shedding needs the network for "
                    "its Eq. (1) value estimates"
                )
            value_fn = request_value_fn(network)
        if shed_policy == WEIGHTED_FAIR and slo is None:
            from repro.tenancy.slo import SLORegistry

            slo = SLORegistry()
        return cls(
            policy=PolicyChain(
                [
                    TokenBucketLimiter(rate=rate, capacity=burst),
                    ConcurrencyLimiter(max_in_flight=bulkhead),
                ]
            ),
            queue=AdmissionQueue(
                queue_size,
                shed_policy=shed_policy,
                value_fn=value_fn,
                fairness=slo,
            ),
            brownout=BrownoutController(),
            hedge=HedgePolicy(methods=hedge_methods),
            slo=slo,
        )

    # ------------------------------------------------------------------
    # Scheduler surface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Fresh run: clear all keyed state and counters."""
        if self.policy is not None:
            self.policy.reset()
        if self.queue is not None:
            self.queue.reset()
        if self.brownout is not None:
            self.brownout.reset()
        if self.hedge is not None:
            self.hedge.reset()
        if self.slo is not None:
            self.slo.reset()
        self.admitted = 0
        self.throttled = 0
        self.shed = {}
        self.shed_by_tenant = {}
        self.expired = 0
        self._open = set()

    def begin_slot(self, slot: int, ledger: "CapacityLedger") -> str:
        """Per-slot housekeeping; returns the current brownout tier."""
        signal = measure_load(ledger, self.queue)
        tier = TIER_FULL
        if self.brownout is not None:
            before = self.brownout.tier
            tier = self.brownout.update(signal, slot)
            if tier != before:
                metrics = obs_metrics.active()
                if metrics is not None:
                    metrics.inc("sim.online.admission.brownout_shifts")
        metrics = obs_metrics.active()
        if metrics is not None:
            if self.queue is not None:
                metrics.set_gauge(
                    "sim.online.admission.queue_depth", self.queue.depth
                )
                metrics.max_gauge(
                    "sim.online.admission.queue_depth_peak",
                    self.queue.depth,
                )
            if self.brownout is not None:
                metrics.set_gauge(
                    "sim.online.admission.brownout_tier",
                    self.brownout.tier_level,
                )
            metrics.max_gauge(
                "sim.online.admission.load_level_peak", signal.level
            )
        return tier

    def on_arrival(
        self, request: "EntanglementRequest", slot: int
    ) -> None:
        """Account one arrival against its tenant's contract."""
        if self.slo is not None:
            self.slo.record_arrival(_tenant_label(request), slot)
        metrics = obs_metrics.active()
        if metrics is not None and request.tenant:
            metrics.inc(
                f"sim.online.tenant.{request.tenant}.arrivals"
            )

    def decide(
        self, request: "EntanglementRequest", slot: int
    ) -> AdmissionDecision:
        """Front-door verdict for *request* (counts it, too)."""
        if self.policy is None:
            decision = AdmissionDecision(ADMIT, policy="open-door")
        else:
            decision = self.policy.decide(request, slot)
        metrics = obs_metrics.active()
        if decision.admitted:
            self.admitted += 1
            self._open.add(request.name)
            if metrics is not None:
                metrics.inc("sim.online.admission.admitted")
        elif decision.action == "throttle":
            self.throttled += 1
            if metrics is not None:
                metrics.inc("sim.online.admission.throttled")
        else:
            self.count_shed(decision.policy or "policy", request=request)
        return decision

    def count_shed(
        self,
        cause: str,
        request: Optional["EntanglementRequest"] = None,
    ) -> None:
        """Account one shed decision under *cause* (and its tenant)."""
        self.shed[cause] = self.shed.get(cause, 0) + 1
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc(f"sim.online.admission.shed.{cause}")
        if request is not None:
            tenant = _tenant_label(request)
            bucket = self.shed_by_tenant.setdefault(tenant, {})
            bucket[cause] = bucket.get(cause, 0) + 1
            if metrics is not None and request.tenant:
                metrics.inc(
                    f"sim.online.tenant.{request.tenant}.shed.{cause}"
                )

    def count_expired(self) -> None:
        self.expired += 1
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("sim.online.admission.expired")

    def observe_queue_wait(
        self, request: "EntanglementRequest", slots: int
    ) -> None:
        """Record time a request spent in the admission queue."""
        metrics = obs_metrics.active()
        if metrics is None:
            return
        metrics.observe("sim.online.admission.time_in_queue_slots", slots)
        if request.tenant:
            metrics.observe(
                f"sim.online.tenant.{request.tenant}"
                ".time_in_queue_slots",
                slots,
            )

    def on_closed(
        self,
        request: "EntanglementRequest",
        slot: int,
        status: str = "",
    ) -> None:
        """A request reached a terminal disposition; free its slots.

        *status* (a :data:`repro.resilience.report.DISPOSITIONS` value)
        feeds the tenant's SLO account when a registry is wired in.
        """
        if request.name in self._open:
            self._open.discard(request.name)
            if self.policy is not None:
                self.policy.on_released(request, slot)
        if status and self.slo is not None:
            self.slo.record_disposition(_tenant_label(request), status)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Deterministic serializable snapshot of the run's decisions."""
        out: Dict[str, object] = {
            "admitted": self.admitted,
            "throttled": self.throttled,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": sum(self.shed.values()),
            "expired": self.expired,
        }
        if self.shed_by_tenant:
            out["shed_by_tenant"] = {
                tenant: dict(sorted(causes.items()))
                for tenant, causes in sorted(self.shed_by_tenant.items())
            }
        if self.slo is not None:
            out["slo"] = self.slo.table()
            out["jain_index"] = round(self.slo.jain_index(), 6)
        if self.queue is not None:
            out["queue_peak_depth"] = self.queue.peak_depth
            out["queue_sheds"] = self.queue.sheds
            out["queue_expirations"] = self.queue.expirations
        if self.brownout is not None:
            out["brownout_transitions"] = [
                [slot, tier] for slot, tier in self.brownout.transitions
            ]
            out["final_tier"] = self.brownout.tier
        if self.hedge is not None:
            out["hedges_spent"] = self.hedge.hedges_spent
            out["hedge_wins"] = self.hedge.hedge_wins
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts: List[str] = []
        if self.policy is not None:
            parts.append(f"policy={self.policy!r}")
        if self.queue is not None:
            parts.append(f"queue={self.queue!r}")
        if self.brownout is not None:
            parts.append(f"brownout={self.brownout!r}")
        if self.hedge is not None:
            parts.append(f"hedge={self.hedge!r}")
        return f"AdmissionController({', '.join(parts)})"
