"""Dynamic maintenance of a served entanglement tree under deltas.

A served MUERP solution is a tree of user-to-user channels.  When a
structural event fires, recomputing the whole tree wastes nearly all
work if the event touched at most one channel — the regime the dynamic
multi-tree literature (Yang et al., arXiv:2408.06207) identifies as the
common case.  This module implements the classify-then-repair ladder:

====================  ===========================================
break count           classification / action
====================  ===========================================
0 channels broken     **tree-disjoint** — no-op, the tree stands
1 channel broken      **replaceable** — splice one reconnecting
                      channel found by a neighborhood-bounded
                      search (escalate if none verifies)
>= 2 channels broken  **structural** — full re-solve
====================  ===========================================

The splice search is *masked*: switches farther than ``radius`` fiber
hops from the broken channel's path get zero residual qubits, so the
search can only relay through the local neighborhood (global repairs
belong to escalation).  Both the incremental router and the from-scratch
reference run exactly this policy code — byte-equality between the two
modes then exercises the caching/delta machinery, not policy luck.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Set,
    Tuple,
)

from repro.core.channel import best_channels_from
from repro.core.optimal import channel_sort_key
from repro.core.problem import Channel, MUERPSolution
from repro.incremental.delta import region_of
from repro.network.link import fiber_key
from repro.utils.unionfind import UnionFind

__all__ = [
    "DISJOINT",
    "REPLACEABLE",
    "STRUCTURAL",
    "broken_channels",
    "classify_break",
    "splice_region",
    "splice_solution",
]

DISJOINT = "disjoint"
REPLACEABLE = "replaceable"
STRUCTURAL = "structural"


def channel_broken(
    channel: Channel,
    dead_fibers: Set[Tuple[Hashable, Hashable]],
    dead_switches: Set[Hashable],
) -> bool:
    """Whether *channel* uses any failed fiber or switch."""
    if any(s in dead_switches for s in channel.switches):
        return True
    return any(
        fiber_key(u, v) in dead_fibers
        for u, v in zip(channel.path, channel.path[1:])
    )


def broken_channels(
    solution: MUERPSolution,
    dead_fibers: Iterable[Tuple[Hashable, Hashable]] = (),
    dead_switches: Iterable[Hashable] = (),
) -> Tuple[Channel, ...]:
    """The channels of *solution* that use a failed element (in order)."""
    fibers = {fiber_key(u, v) for u, v in dead_fibers}
    switches = set(dead_switches)
    return tuple(
        c
        for c in solution.channels
        if channel_broken(c, fibers, switches)
    )


def classify_break(
    solution: MUERPSolution,
    dead_fibers: Iterable[Tuple[Hashable, Hashable]] = (),
    dead_switches: Iterable[Hashable] = (),
) -> Tuple[str, Tuple[Channel, ...]]:
    """Classify a structural event against a served tree.

    Returns ``(classification, broken_channels)`` with the
    classification one of :data:`DISJOINT`, :data:`REPLACEABLE`,
    :data:`STRUCTURAL`.
    """
    broken = broken_channels(solution, dead_fibers, dead_switches)
    if not broken:
        return DISJOINT, broken
    if len(broken) == 1:
        return REPLACEABLE, broken
    return STRUCTURAL, broken


def splice_region(
    network, channel: Channel, radius: int = 2
) -> FrozenSet[Hashable]:
    """Nodes within *radius* fiber hops of the broken channel's path."""
    return region_of(network, channel.path, radius)


def splice_solution(
    damaged,
    solution: MUERPSolution,
    broken: Channel,
    residual: Dict[Hashable, int],
    radius: int = 2,
) -> Optional[MUERPSolution]:
    """Replace one broken channel by a neighborhood-bounded search.

    Args:
        damaged: The post-event topology (failed elements removed).
        solution: The served tree, exactly one channel of which is
            *broken*.
        broken: The casualty channel.
        residual: Free-qubit budget *including* this tree's own
            reservations (the caller's ledger view plus its usage, the
            same contract as :func:`repro.extensions.recovery.
            repair_solution`).
        radius: Fiber-hop radius of the search region around the broken
            channel's path.

    Returns:
        The spliced tree (kept channels + one replacement, in
        deterministic order), or ``None`` when no replacement exists
        inside the region — the caller escalates to a full re-solve.
    """
    kept = [c for c in solution.channels if c != broken]
    if len(kept) != len(solution.channels) - 1:
        return None  # broken channel not in (or duplicated in) the tree
    avail = dict(residual)
    for channel in kept:
        for switch in channel.switches:
            avail[switch] = avail.get(switch, 0) - 2

    region = splice_region(damaged, broken, radius)
    masked = {
        switch: (avail.get(switch, 0) if switch in region else 0)
        for switch in damaged.switch_ids
    }

    users = sorted(solution.users, key=repr)
    unions = UnionFind(users)
    for channel in kept:
        unions.union(*channel.endpoints)
    if unions.n_components != 2:
        return None  # not a single-edge break of a spanning tree

    best: Optional[Channel] = None
    for index, source in enumerate(users):
        targets = [
            t
            for t in users[index + 1 :]
            if not unions.connected(source, t)
        ]
        if not targets:
            continue
        found = best_channels_from(damaged, source, targets, masked)
        for candidate in found.values():
            if best is None or channel_sort_key(candidate) < channel_sort_key(
                best
            ):
                best = candidate
    if best is None:
        return None
    return MUERPSolution(
        channels=tuple(kept) + (best,),
        users=solution.users,
        method=_spliced_method(solution.method),
        feasible=True,
        extra_log_rate=solution.extra_log_rate,
    )


def _spliced_method(method: str) -> str:
    """Tag a method name as spliced exactly once (idempotent)."""
    return method if method.endswith("+splice") else method + "+splice"
