"""The delta bus: typed change events instead of fingerprint bumps.

Before this layer existed, every structural mutation told the channel
cache "the world changed" by invalidating the *whole* routing
fingerprint (``ChannelCache.invalidate_graph``) — a single fiber cut
evicted every cached search over that topology.  The bus replaces the
bump with a typed :class:`~repro.incremental.events.DeltaEvent` flow:

* :meth:`QuantumNetwork._content_changed <repro.network.graph.
  QuantumNetwork._content_changed>` publishes the mutation it just
  performed;
* :class:`~repro.resilience.faults.FaultInjector` publishes fire/repair
  events;
* :class:`~repro.core.ledger.CapacityLedger` publishes relay-threshold
  crossings.

Subscribers (the incremental router, tests) see the raw stream; the bus
also performs the cache hygiene itself, scoped by policy:

* ``scope="region"`` (the new default while a bus is active) — drop only
  entries whose source or blocked-set intersects the changed element's
  switch neighborhood (:func:`region_of`);
* ``scope="fingerprint"`` — reproduce the legacy whole-fingerprint bump
  (kept selectable so the region-scoping win stays measurable; the churn
  benchmark runs both and compares invalidation counts).

Correctness never depends on either policy: cache keys are exact
(fingerprint + blocked set), so a stale entry can never be *hit* — the
policies only decide how eagerly dead entries stop crowding the LRU
window.

Bulk rebuilds of throwaway topology copies (``apply_failures``) run
under :meth:`DeltaBus.suspended` so a damaged-view reconstruction does
not masquerade as a stream of real faults.

Activation mirrors the metrics/cache registries::

    from repro.incremental import delta as incremental_delta

    with incremental_delta.tracking(scope="region") as bus:
        run_churn(...)
    print(bus.delta.summary())
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import repro.obs.metrics as obs_metrics
from repro.exec import cache as exec_cache
from repro.incremental.events import DeltaEvent, DeltaKind

__all__ = [
    "GraphDelta",
    "DeltaBus",
    "region_of",
    "active",
    "enable",
    "disable",
    "tracking",
]


def region_of(
    network, seeds: Iterable[Hashable], radius: int = 1
) -> FrozenSet[Hashable]:
    """Nodes within *radius* fiber hops of *seeds* (seeds included).

    The region of a changed element bounds which cached searches the
    change can plausibly have helped or hindered; sources and
    blocked-set members outside it kept their search structure.  Seeds
    that are no longer in *network* (e.g. both endpoints of a removed
    fiber remain, but defensive callers may pass stale ids) are kept in
    the region and simply not expanded.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    frontier = [s for s in seeds]
    region = set(frontier)
    for _ in range(radius):
        next_frontier: List[Hashable] = []
        for node in frontier:
            if node not in network:
                continue
            for neighbor in network.neighbors(node):
                if neighbor not in region:
                    region.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return frozenset(region)


class GraphDelta:
    """An ordered accumulation of :class:`DeltaEvent`.

    The bus appends every published event here; consumers drain it
    between solver consultations (:meth:`take`) or inspect the running
    totals (:meth:`summary`).
    """

    def __init__(self, events: Iterable[DeltaEvent] = ()) -> None:
        self._events: Deque[DeltaEvent] = deque(events)

    def append(self, event: DeltaEvent) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[DeltaEvent]) -> None:
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DeltaEvent]:
        return iter(self._events)

    def take(self) -> Tuple[DeltaEvent, ...]:
        """Drain and return all accumulated events (oldest first)."""
        drained = tuple(self._events)
        self._events.clear()
        return drained

    def clear(self) -> None:
        self._events.clear()

    @property
    def structural(self) -> Tuple[DeltaEvent, ...]:
        return tuple(e for e in self._events if e.structural)

    def summary(self) -> Dict[str, int]:
        """Event counts by kind (stable key order)."""
        counts: Dict[str, int] = {}
        for kind in DeltaKind:
            n = sum(1 for e in self._events if e.kind is kind)
            if n:
                counts[kind.value] = n
        return counts


class DeltaBus:
    """Receives typed deltas from the mutation hooks and applies policy.

    Args:
        scope: Cache-hygiene policy for structural events —
            ``"region"`` (neighborhood-scoped invalidation) or
            ``"fingerprint"`` (legacy whole-fingerprint invalidation).
        radius: Fiber-hop radius of :func:`region_of` under the region
            scope.
    """

    SCOPES = ("region", "fingerprint")

    def __init__(self, scope: str = "region", radius: int = 1) -> None:
        if scope not in self.SCOPES:
            raise ValueError(
                f"scope must be one of {self.SCOPES}, got {scope!r}"
            )
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.scope = scope
        self.radius = radius
        self.delta = GraphDelta()
        self._subscribers: List[Callable[[DeltaEvent], None]] = []
        self._suspend_depth = 0
        self._lock = threading.RLock()
        self.events_published = 0
        self.events_suppressed = 0

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[DeltaEvent], None]) -> None:
        """Register *callback* to run synchronously on every publish."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # Suppression (bulk rebuilds of throwaway copies)
    # ------------------------------------------------------------------
    @property
    def is_suspended(self) -> bool:
        return self._suspend_depth > 0

    @contextmanager
    def suspended(self) -> Iterator["DeltaBus"]:
        """Swallow publishes inside the block (re-entrant).

        Used around :func:`repro.extensions.recovery.apply_failures`'s
        internal mutations: rebuilding a damaged *copy* replays cuts
        that were already published when the faults actually fired, and
        must not double-count events or re-invalidate cache regions.
        """
        with self._lock:
            self._suspend_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._suspend_depth -= 1

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(
        self,
        event: DeltaEvent,
        network=None,
        fingerprint: Optional[str] = None,
    ) -> bool:
        """Record *event*, notify subscribers, and run cache hygiene.

        Args:
            event: The change that just happened.
            network: The graph the change applies to, *post-mutation*
                (needed to compute the region under the region scope).
            fingerprint: The routing fingerprint whose cache entries the
                change strands (the *pre-mutation* fingerprint for
                topology mutations, the injector network's fingerprint
                for fault events).  ``None`` widens region invalidation
                to all fingerprints and degrades the fingerprint scope
                to :meth:`ChannelCache.invalidate_all`.

        Returns ``False`` when the bus is suspended (nothing recorded).
        """
        with self._lock:
            if self._suspend_depth > 0:
                self.events_suppressed += 1
                return False
            self.delta.append(event)
            self.events_published += 1
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("repro.incremental.events.published")
            metrics.inc(
                f"repro.incremental.events.kind.{event.kind.value}"
            )
        for callback in self._subscribers:
            callback(event)
        if event.structural:
            self._structural_hygiene(event, network, fingerprint)
        # Capacity crossings need no hygiene here: the ledger already
        # ran the polarity-exact ChannelCache.invalidate_switch hook.
        return True

    def _structural_hygiene(
        self,
        event: DeltaEvent,
        network,
        fingerprint: Optional[str],
    ) -> None:
        cache = exec_cache.active()
        if cache is None:
            return
        if self.scope == "region" and network is not None:
            region = region_of(
                network, event.element_nodes(), self.radius
            )
            cache.invalidate_region(region, fingerprint=fingerprint)
        elif fingerprint is not None:
            cache.invalidate_graph(fingerprint)
        else:
            cache.invalidate_all()


# ----------------------------------------------------------------------
# Active-bus plumbing (module-level, mirroring obs.metrics / exec.cache
# so the disabled check on mutation hot paths is one None comparison).
# ----------------------------------------------------------------------
_active_bus: Optional[DeltaBus] = None
_state_lock = threading.Lock()


def active() -> Optional[DeltaBus]:
    """The bus mutation hooks publish to, or ``None`` when disabled."""
    return _active_bus


def enable(bus: Optional[DeltaBus] = None) -> DeltaBus:
    """Route mutation events through *bus* (a new one if omitted)."""
    global _active_bus
    with _state_lock:
        _active_bus = bus if bus is not None else DeltaBus()
        return _active_bus


def disable() -> Optional[DeltaBus]:
    """Stop delta tracking; returns the bus that was active (if any)."""
    global _active_bus
    with _state_lock:
        bus, _active_bus = _active_bus, None
        return bus


@contextmanager
def tracking(
    bus: Optional[DeltaBus] = None,
    scope: str = "region",
    radius: int = 1,
) -> Iterator[DeltaBus]:
    """Scope delta tracking; restores the prior state on exit.

    Nested scopes compose like :func:`repro.exec.cache.caching`: the
    innermost bus wins while its block is open.
    """
    global _active_bus
    with _state_lock:
        previous = _active_bus
        current = (
            bus if bus is not None else DeltaBus(scope=scope, radius=radius)
        )
        _active_bus = current
    try:
        yield current
    finally:
        with _state_lock:
            _active_bus = previous
