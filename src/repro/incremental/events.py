"""Typed graph-delta events — the vocabulary of the incremental layer.

Every change the online hot path reacts to is one of five events:

* ``FIBER_CUT`` / ``FIBER_RESTORE`` — a fiber leaves / re-enters the
  topology (fault injection, transient flap repair, or a direct
  :meth:`~repro.network.graph.QuantumNetwork.remove_fiber` /
  ``add_fiber`` mutation);
* ``SWITCH_DARK`` / ``SWITCH_RECOVER`` — a switch loses / regains all
  of its incident fibers and its qubits (the dark-node fault model of
  :func:`repro.extensions.recovery.apply_failures`);
* ``CAPACITY_CROSSING`` — a switch's free-qubit count crosses the
  2-qubit relay threshold (Def. 3), flipping its polarity in every
  blocked-switch cache signature without touching the topology.

The first four are **structural**: they change the routing fingerprint
and therefore where channel searches can go.  Capacity crossings are
**residual-only**: the fingerprint is unchanged and only the blocked-set
component of cache keys moves, which is what makes warm-started searches
(:mod:`repro.incremental.warmstart`) sound for them.

Events are frozen, hashable, and carry a canonical target (fiber
endpoint pairs are normalized through
:func:`repro.network.link.fiber_key`), so event streams can be compared,
replayed, and serialized deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, Optional, Tuple

from repro.network.link import fiber_key

__all__ = ["DeltaKind", "DeltaEvent", "STRUCTURAL_KINDS"]


class DeltaKind(str, Enum):
    """The incremental layer's event taxonomy."""

    FIBER_CUT = "fiber-cut"
    FIBER_RESTORE = "fiber-restore"
    SWITCH_DARK = "switch-dark"
    SWITCH_RECOVER = "switch-recover"
    CAPACITY_CROSSING = "capacity-crossing"


#: Kinds that change the topology (and hence the routing fingerprint).
STRUCTURAL_KINDS = frozenset(
    {
        DeltaKind.FIBER_CUT,
        DeltaKind.FIBER_RESTORE,
        DeltaKind.SWITCH_DARK,
        DeltaKind.SWITCH_RECOVER,
    }
)

_FIBER_KINDS = (DeltaKind.FIBER_CUT, DeltaKind.FIBER_RESTORE)
_SWITCH_KINDS = (DeltaKind.SWITCH_DARK, DeltaKind.SWITCH_RECOVER)


@dataclass(frozen=True)
class DeltaEvent:
    """One typed change to the routing substrate.

    Attributes:
        kind: The event class.
        target: Canonical fiber key for fiber kinds, switch id for
            switch kinds and capacity crossings.
        slot: Optional slot index of the originating fault/mutation
            (informational; never affects routing decisions).
        now_blocked: For ``CAPACITY_CROSSING`` only — the switch's new
            relay polarity (``True`` = below 2 free qubits).
    """

    kind: DeltaKind
    target: Hashable
    slot: Optional[int] = None
    now_blocked: Optional[bool] = None

    def __post_init__(self) -> None:
        kind = DeltaKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if kind in _FIBER_KINDS:
            if not isinstance(self.target, tuple) or len(self.target) != 2:
                raise ValueError(
                    f"{kind.value} needs a (u, v) fiber target, "
                    f"got {self.target!r}"
                )
            object.__setattr__(self, "target", fiber_key(*self.target))
        elif self.target is None:
            raise ValueError(f"{kind.value} needs a node target")
        if kind is DeltaKind.CAPACITY_CROSSING:
            if self.now_blocked is None:
                raise ValueError(
                    "capacity-crossing must carry its new polarity "
                    "(now_blocked)"
                )
        elif self.now_blocked is not None:
            raise ValueError(f"{kind.value} does not take now_blocked")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def fiber_cut(
        cls, u: Hashable, v: Hashable, slot: Optional[int] = None
    ) -> "DeltaEvent":
        return cls(DeltaKind.FIBER_CUT, (u, v), slot=slot)

    @classmethod
    def fiber_restore(
        cls, u: Hashable, v: Hashable, slot: Optional[int] = None
    ) -> "DeltaEvent":
        return cls(DeltaKind.FIBER_RESTORE, (u, v), slot=slot)

    @classmethod
    def switch_dark(
        cls, switch: Hashable, slot: Optional[int] = None
    ) -> "DeltaEvent":
        return cls(DeltaKind.SWITCH_DARK, switch, slot=slot)

    @classmethod
    def switch_recover(
        cls, switch: Hashable, slot: Optional[int] = None
    ) -> "DeltaEvent":
        return cls(DeltaKind.SWITCH_RECOVER, switch, slot=slot)

    @classmethod
    def capacity_crossing(
        cls,
        switch: Hashable,
        now_blocked: bool,
        slot: Optional[int] = None,
    ) -> "DeltaEvent":
        return cls(
            DeltaKind.CAPACITY_CROSSING,
            switch,
            slot=slot,
            now_blocked=bool(now_blocked),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def structural(self) -> bool:
        """Whether this event changes the routing fingerprint."""
        return self.kind in STRUCTURAL_KINDS

    @property
    def is_fiber(self) -> bool:
        return self.kind in _FIBER_KINDS

    @property
    def is_switch(self) -> bool:
        return self.kind in _SWITCH_KINDS

    def element_nodes(self) -> Tuple[Hashable, ...]:
        """The graph nodes the changed element touches (region seeds)."""
        if self.is_fiber:
            return tuple(self.target)  # type: ignore[arg-type]
        return (self.target,)

    def describe(self) -> str:
        """A stable one-line description (used in logs and the CLI)."""
        where = f" at slot {self.slot}" if self.slot is not None else ""
        if self.kind is DeltaKind.CAPACITY_CROSSING:
            polarity = "blocked" if self.now_blocked else "unblocked"
            return f"{self.kind.value} {self.target!r} -> {polarity}{where}"
        return f"{self.kind.value} {self.target!r}{where}"

    def to_spec(self) -> Dict[str, object]:
        """Declarative dict form (stable across runs; JSON-friendly)."""
        spec: Dict[str, object] = {
            "kind": self.kind.value,
            "target": (
                list(self.target) if self.is_fiber else self.target
            ),
        }
        if self.slot is not None:
            spec["slot"] = self.slot
        if self.now_blocked is not None:
            spec["now_blocked"] = self.now_blocked
        return spec
