"""The incremental re-solve engine: delta streams in, maintained tree out.

:class:`IncrementalRouter` consumes a stream of
:class:`~repro.incremental.events.DeltaEvent` and keeps one served
entanglement tree alive across it, applying the classify/splice/escalate
ladder of :mod:`repro.incremental.tree`.  It runs in two modes that
execute the *same policy code* and are required to produce byte-identical
aggregates (:meth:`digest`):

* ``mode="incremental"`` — the hot path: the damaged topology view is
  maintained by applying each delta in place (O(degree) per event), the
  break classification tests only the firing element, and channel
  searches benefit from whatever exact cache / warm-start index the
  caller activated;
* ``mode="from_scratch"`` — the reference: every event rebuilds the
  damaged view with a full :func:`~repro.extensions.recovery.
  apply_failures` copy and re-derives the break set against *all*
  active faults, the way the online loop behaved before this subsystem.

Because both modes make identical decisions from identical inputs, any
divergence is a bug in the delta machinery — which is exactly what the
equivalence suite and the churn benchmark's byte-equality gate detect.

A third mode, ``mode="resolve"``, is the naive throughput baseline: no
delta awareness at all — every structural event rebuilds the damaged
view and recomputes the full tree from scratch.  It is *not* part of
the byte-equality contract (a fresh solve after a tree-disjoint cut may
legitimately pick a different equal-rate tree); it exists so the churn
benchmark can price what "recompute from scratch on every change"
costs against the classify/splice/escalate ladder.

Capacity-crossing events model *external* load: a crossing to blocked
reserves the switch's free qubits down to below the relay threshold on
the shared ledger; the crossing back releases them.  The served tree's
own reservations are never touched by crossings (reserved qubits are
reserved), matching the online scheduler's semantics.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import repro.obs.metrics as obs_metrics
from repro.core.conflict_free import solve_conflict_free
from repro.core.ledger import CapacityLedger, QUBITS_PER_CHANNEL
from repro.core.prim_based import solve_prim
from repro.core.problem import MUERPSolution, infeasible_solution
from repro.extensions.recovery import apply_failures
from repro.incremental.events import DeltaEvent, DeltaKind
from repro.incremental.tree import (
    DISJOINT,
    REPLACEABLE,
    STRUCTURAL,
    classify_break,
    splice_solution,
)
from repro.network.graph import QuantumNetwork
from repro.utils.rng import ensure_rng

__all__ = ["EventOutcome", "IncrementalRouter"]

#: Router actions, in the order they appear in reports.
ACTIONS = ("noop", "splice", "escalate", "reacquire", "lost")

#: Per-event rng streams must be identical across modes and runs; the
#: stride keeps them disjoint from the initial-solve stream.
_RNG_STRIDE = 1_000_003


@dataclass(frozen=True)
class EventOutcome:
    """What one delta did to the served tree."""

    index: int
    kind: str
    target: str
    classification: str
    action: str
    feasible: bool
    log_rate: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "target": self.target,
            "classification": self.classification,
            "action": self.action,
            "feasible": self.feasible,
            # repr() round-trips floats exactly; byte-equality of
            # aggregates must not be softened by formatting.
            "log_rate": (
                None if self.log_rate is None else repr(self.log_rate)
            ),
        }


class IncrementalRouter:
    """Maintain one served tree across a delta stream.

    Args:
        network: The intact base topology.
        users: User group to keep entangled (default: all users).
        method: ``"prim"`` or ``"conflict_free"`` — both the initial
            solve and escalations use it.
        seed: Master seed; per-event solver rng streams derive from it
            identically in both modes.
        mode: ``"incremental"``, ``"from_scratch"``, or the naive
            ``"resolve"`` baseline (see module docs).
        verify: Audit spliced and escalated trees with the
            :class:`~repro.verify.verifier.SolutionVerifier` before they
            enter service; a tree that fails the audit is treated as
            unavailable (splice failures escalate, escalation failures
            lose the tree).
        radius: Fiber-hop radius of the splice search region.
    """

    MODES = ("incremental", "from_scratch", "resolve")

    def __init__(
        self,
        network: QuantumNetwork,
        users: Optional[Sequence[Hashable]] = None,
        method: str = "prim",
        seed: int = 0,
        mode: str = "incremental",
        verify: bool = True,
        radius: int = 2,
    ) -> None:
        if method not in ("prim", "conflict_free"):
            raise ValueError(f"unsupported method {method!r}")
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.base = network
        self.users: Tuple[Hashable, ...] = tuple(
            users if users is not None else network.user_ids
        )
        if len(self.users) < 2:
            raise ValueError("need at least 2 users")
        self.method = method
        self.seed = int(seed)
        self.mode = mode
        self.radius = radius
        self.verifier = None
        if verify:
            from repro.verify.verifier import SolutionVerifier

            self.verifier = SolutionVerifier()

        self.ledger = CapacityLedger.from_network(network)
        self.active_cuts: set = set()
        self.active_darks: set = set()
        self.external: Dict[Hashable, int] = {}
        self.counters: Dict[str, int] = {}
        self.outcomes: List[EventOutcome] = []
        self._events_applied = 0
        #: Incrementally-maintained post-fault view (incremental mode).
        self._damaged = network.copy()
        #: Per-event rebuilt view (from-scratch mode).
        self._fs_view: Optional[QuantumNetwork] = None

        self.solution = self._solve_full(
            self._damaged_view(), self.ledger.as_dict(), event_index=-1
        )
        self.usage: Dict[Hashable, int] = {}
        if self.solution.feasible:
            self.usage = self.solution.switch_usage()
            self.ledger.reserve(self.usage)

    # ------------------------------------------------------------------
    # Damaged-view maintenance
    # ------------------------------------------------------------------
    def _damaged_view(self) -> QuantumNetwork:
        """The current post-fault topology, per the router's mode."""
        if self.mode == "incremental":
            return self._damaged
        if self._fs_view is None:
            self._fs_view = self.base.copy()
        return self._fs_view

    def _apply_structural(self, event: DeltaEvent) -> None:
        """Fold a structural event into the fault state (both modes) and
        into the maintained damaged copy (incremental mode)."""
        incremental = self.mode == "incremental"
        if event.kind is DeltaKind.FIBER_CUT:
            self.active_cuts.add(event.target)
            if incremental and self._damaged.has_fiber(*event.target):
                self._damaged.remove_fiber(*event.target)
        elif event.kind is DeltaKind.FIBER_RESTORE:
            self.active_cuts.discard(event.target)
            if incremental:
                self._restore_fiber(*event.target)
        elif event.kind is DeltaKind.SWITCH_DARK:
            self.active_darks.add(event.target)
            if incremental:
                for fiber in list(
                    self._damaged.incident_fibers(event.target)
                ):
                    self._damaged.remove_fiber(fiber.u, fiber.v)
        elif event.kind is DeltaKind.SWITCH_RECOVER:
            self.active_darks.discard(event.target)
            if incremental:
                for fiber in self.base.incident_fibers(event.target):
                    self._restore_fiber(fiber.u, fiber.v)
        if not incremental:
            # The pre-subsystem online loop rebuilds the damaged view on
            # every active-fault-signature change; the reference mode
            # pays that full copy on every structural event.
            self._fs_view = (
                apply_failures(
                    self.base, self.active_cuts, self.active_darks
                )
                if (self.active_cuts or self.active_darks)
                else self.base.copy()
            )

    @staticmethod
    def _bus_guard():
        """Suspension over the active bus, or a no-op context."""
        from repro.incremental import delta as incremental_delta

        bus = incremental_delta.active()
        return bus.suspended() if bus is not None else nullcontext()

    def _restore_fiber(self, u: Hashable, v: Hashable) -> None:
        """Re-add a base fiber to the damaged copy unless still failed."""
        original = self.base.fiber_between(u, v)
        if original is None or self._damaged.has_fiber(u, v):
            return
        if original.key in self.active_cuts:
            return
        if u in self.active_darks or v in self.active_darks:
            return
        self._damaged.add_fiber(u, v, original.length, original.cores)
        # add_fiber appends; a fresh apply_failures rebuild keeps base
        # order, so realign or equal-cost Dijkstra ties diverge.
        self._damaged.align_fiber_order(self.base, nodes=(u, v))

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: DeltaEvent) -> EventOutcome:
        """Apply one delta; returns the recorded outcome."""
        index = self._events_applied
        self._events_applied += 1
        if event.kind is DeltaKind.CAPACITY_CROSSING:
            classification, action = self._apply_capacity(event)
        else:
            # Maintaining the router's own damaged view is bookkeeping
            # over an already-published event; under an active bus it
            # must not re-publish or re-run cache hygiene.
            with self._bus_guard():
                self._apply_structural(event)
            classification, action = self._maintain_tree(event, index)
        outcome = EventOutcome(
            index=index,
            kind=event.kind.value,
            target=repr(event.target),
            classification=classification,
            action=action,
            feasible=self.solution.feasible,
            log_rate=(
                self.solution.log_rate
                if self.solution.feasible
                else None
            ),
        )
        self.outcomes.append(outcome)
        self._bump(f"classify.{classification}")
        self._bump(f"actions.{action}")
        return outcome

    def run(self, events: Iterable[DeltaEvent]) -> List[EventOutcome]:
        """Apply *events* in order; returns their outcomes."""
        return [self.apply(event) for event in events]

    def _apply_capacity(self, event: DeltaEvent) -> Tuple[str, str]:
        """External load crossing the relay threshold at one switch.

        A served tree keeps its reservations regardless (reserved
        qubits cannot be taken), so crossings never break the tree —
        they only shrink/grow the budget future splices and escalations
        route within.
        """
        switch = event.target
        if event.now_blocked:
            free = self.ledger.available(switch)
            grab = max(free - (QUBITS_PER_CHANNEL - 1), 0)
            if grab:
                self.ledger.reserve({switch: grab})
                self.external[switch] = (
                    self.external.get(switch, 0) + grab
                )
        else:
            held = self.external.pop(switch, 0)
            if held:
                self.ledger.release({switch: held})
        return "capacity", "noop"

    def _maintain_tree(
        self, event: DeltaEvent, index: int
    ) -> Tuple[str, str]:
        if self.mode == "resolve":
            # Naive baseline: any topology change -> full re-solve.
            return "resolve", self._escalate(
                index, reacquire=not self.solution.feasible
            )
        if not self.solution.feasible:
            # No served tree: every structural event is a chance to
            # reacquire one (restores may have made it possible again).
            return STRUCTURAL, self._escalate(index, reacquire=True)

        restoring = event.kind in (
            DeltaKind.FIBER_RESTORE,
            DeltaKind.SWITCH_RECOVER,
        )
        if restoring:
            # A restoration cannot break a valid tree; rate maintenance
            # (re-optimizing onto restored elements) is out of scope.
            return DISJOINT, "noop"

        if self.mode == "incremental":
            # The serving tree provably avoids every previously-active
            # failed element (it was routed and verified on the damaged
            # view), so testing the firing element alone equals testing
            # the full active set.
            cuts = {event.target} if event.is_fiber else set()
            darks = set() if event.is_fiber else {event.target}
        else:
            cuts = set(self.active_cuts)
            darks = set(self.active_darks)
        classification, broken = classify_break(
            self.solution, cuts, darks
        )
        if classification == DISJOINT:
            return classification, "noop"
        if classification == REPLACEABLE:
            if self._try_splice(broken[0]):
                return classification, "splice"
        return classification, self._escalate(index)

    # ------------------------------------------------------------------
    # Repair ladder
    # ------------------------------------------------------------------
    def _own_budget(self) -> Dict[Hashable, int]:
        """Ledger view plus the tree's own reservations (repair contract)."""
        avail = self.ledger.as_dict()
        for switch, qubits in self.usage.items():
            avail[switch] = avail.get(switch, 0) + qubits
        return avail

    def _try_splice(self, broken) -> bool:
        damaged = self._damaged_view()
        spliced = splice_solution(
            damaged,
            self.solution,
            broken,
            self._own_budget(),
            radius=self.radius,
        )
        if spliced is not None and self.verifier is not None:
            issues = self.verifier.audit(
                damaged, spliced, users=self.users
            )
            self._bump(
                "splice.verified" if not issues else "splice.rejected"
            )
            if issues:
                spliced = None
        if spliced is None:
            return False
        self._install(spliced)
        return True

    def _escalate(self, index: int, reacquire: bool = False) -> str:
        damaged = self._damaged_view()
        solution = self._solve_full(
            damaged, self._own_budget(), event_index=index
        )
        if solution.feasible and self.verifier is not None:
            issues = self.verifier.audit(
                damaged, solution, users=self.users
            )
            if issues:
                solution = infeasible_solution(
                    self.users, solution.method
                )
        if solution.feasible:
            self._install(solution)
            return "reacquire" if reacquire else "escalate"
        if self.usage:
            self.ledger.release(self.usage)
        self.solution = infeasible_solution(
            self.users, self.method + "+lost"
        )
        self.usage = {}
        return "lost"

    def _install(self, solution: MUERPSolution) -> None:
        new_usage = solution.switch_usage()
        with self.ledger.transaction():
            if self.usage:
                self.ledger.release(self.usage)
            self.ledger.reserve(new_usage)
        self.solution = solution
        self.usage = new_usage

    def _solve_full(
        self,
        damaged: QuantumNetwork,
        residual: Dict[Hashable, int],
        event_index: int,
    ) -> MUERPSolution:
        rng = ensure_rng(
            self.seed + _RNG_STRIDE * (event_index + 2)
        )
        if self.method == "prim":
            return solve_prim(
                damaged, self.users, rng=rng, residual=dict(residual)
            )
        return solve_conflict_free(
            damaged, self.users, rng=rng, residual=dict(residual)
        )

    def _bump(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc(f"repro.incremental.{name}")

    # ------------------------------------------------------------------
    # Aggregates (the byte-equality surface)
    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, object]:
        """Canonical end-state: everything equivalence compares.

        Floats are rendered with ``repr`` (exact round-trip); orderings
        are explicit; nothing here depends on wall-clock, cache state,
        or mode.
        """
        solution = self.solution
        return {
            "mode-independent": True,
            "method": self.method,
            "users": [repr(u) for u in self.users],
            "events_applied": self._events_applied,
            "final": {
                "feasible": solution.feasible,
                "method": solution.method,
                "log_rate": (
                    repr(solution.log_rate) if solution.feasible else None
                ),
                "channels": [
                    [repr(node) for node in channel.path]
                    for channel in solution.channels
                ],
            },
            "counters": {
                k: self.counters[k] for k in sorted(self.counters)
            },
            "ledger": {
                repr(s): self.ledger.available(s)
                for s in sorted(self.ledger.keys(), key=repr)
            },
            "external": {
                repr(s): self.external[s]
                for s in sorted(self.external, key=repr)
            },
            "faults": {
                "cuts": sorted(repr(c) for c in self.active_cuts),
                "darks": sorted(repr(d) for d in self.active_darks),
            },
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def digest(self) -> str:
        """sha256 of the canonical JSON aggregate."""
        import hashlib
        import json

        payload = json.dumps(
            self.aggregate(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
