"""Warm-started channel searches: frontier reuse across capacity churn.

The channel cache is exact: a search result is reusable only under the
*identical* (fingerprint, source, blocked-set, forbidden, flag) key.
Under capacity churn the blocked set wobbles constantly, so exact keys
keep missing even though most wobbles cannot change the search — the
flipped switch was never reached, or sits beyond the settled frontier.

:class:`WarmStartIndex` keeps, per *search family* (everything in the
key except the blocked set), the most recent ``(blocked, dist, prev)``
and answers a lookup for a *different* blocked set when reuse is
provably byte-identical:

Let ``dist_old`` be the cached result under ``blocked_old`` and let
``blocked_new`` differ.  The cached value is returned verbatim iff

1. every **newly blocked** switch is absent from ``dist_old`` (the old
   search never entered it — blocking it removes nothing the search
   used), and
2. every **newly unblocked** switch has no neighbor that could expand
   into it: no neighbor is the source, and no neighbor is a settled
   relay switch (in ``dist_old`` and unblocked under ``blocked_new``).

**Soundness argument** (docs/INCREMENTAL.md carries the full version):
Dijkstra only ever enters unblocked nodes, so condition 1 guarantees
every node the old run entered remains enterable and every settled
switch keeps its relay capability; condition 2 guarantees no newly
unblocked switch is adjacent to any node the run expands, so it can
never be entered either.  By induction over pop order the heap, ``dist``
and ``prev`` evolve identically — the fresh run would produce the exact
dictionaries already cached.  Reuse therefore preserves byte-for-byte
equality with from-scratch computation, which is what the equivalence
suite (`tests/incremental/test_equivalence.py`) checks end to end.

The index is consulted by :func:`repro.core.channel.dijkstra` *after*
an exact-cache miss, via the :attr:`ChannelCache.warmstart
<repro.exec.cache.ChannelCache.warmstart>` hook; a warm hit is re-stored
under the new exact key so subsequent identical searches hit the fast
path.  Metrics: ``repro.incremental.warmstart.hits`` / ``.misses`` /
``.settled_reused``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

import repro.obs.metrics as obs_metrics

__all__ = ["WarmStartIndex"]

#: Everything in a cache key except the blocked set: (fingerprint,
#: source, forbidden fibers, allow_switch_source).
FamilyKey = Tuple[str, Hashable, FrozenSet, bool]

_RELAY_QUBITS = 2


def _family(key) -> FamilyKey:
    fingerprint, source, _blocked, forbidden, allow = key
    return (fingerprint, source, forbidden, allow)


class WarmStartIndex:
    """Per-family latest search results, reusable across blocked-set drift.

    Args:
        max_families: LRU bound on resident families (>= 1).
    """

    def __init__(self, max_families: int = 512) -> None:
        if max_families < 1:
            raise ValueError(
                f"max_families must be >= 1, got {max_families}"
            )
        self.max_families = max_families
        self._lock = threading.RLock()
        self._families: "OrderedDict[FamilyKey, Tuple[FrozenSet, Dict, Dict]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.settled_reused = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    # ------------------------------------------------------------------
    # Write side (fed by ChannelCache.put)
    # ------------------------------------------------------------------
    def record(self, key, value) -> None:
        """Remember *value* as the family's latest result."""
        dist, prev = value
        family = _family(key)
        with self._lock:
            self._families[family] = (key[2], dict(dist), dict(prev))
            self._families.move_to_end(family)
            while len(self._families) > self.max_families:
                self._families.popitem(last=False)

    # ------------------------------------------------------------------
    # Read side (consulted on exact-cache miss)
    # ------------------------------------------------------------------
    def lookup(self, key, network) -> Optional[Tuple[Dict, Dict]]:
        """A byte-identical ``(dist, prev)`` for *key*, or ``None``.

        Applies the frontier-reuse conditions against the family's
        stored result; any doubt is a miss (reuse must be provable, not
        plausible).
        """
        family = _family(key)
        source = key[1]
        blocked_new = key[2]
        with self._lock:
            entry = self._families.get(family)
            if entry is not None:
                self._families.move_to_end(family)
        if entry is None:
            self._count(hit=False)
            return None
        blocked_old, dist, prev = entry
        reusable = self._frontier_reusable(
            network, source, blocked_old, blocked_new, dist
        )
        if not reusable:
            self._count(hit=False)
            return None
        self._count(hit=True, settled=len(dist))
        return dict(dist), dict(prev)

    @staticmethod
    def _frontier_reusable(
        network,
        source: Hashable,
        blocked_old: FrozenSet,
        blocked_new: FrozenSet,
        dist: Dict,
    ) -> bool:
        for switch in blocked_new - blocked_old:
            if switch in dist:
                return False  # the old run entered it: result changes
        for switch in blocked_old - blocked_new:
            if switch not in network:
                return False  # stale family (defensive; fp should differ)
            for neighbor in network.neighbors(switch):
                if neighbor == source:
                    return False  # the source expands unconditionally
                if (
                    neighbor in dist
                    and network.is_switch(neighbor)
                    and neighbor not in blocked_new
                ):
                    return False  # a settled relay could now enter it
        return True

    def _count(self, hit: bool, settled: int = 0) -> None:
        with self._lock:
            if hit:
                self.hits += 1
                self.settled_reused += settled
            else:
                self.misses += 1
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc(
                "repro.incremental.warmstart.hits"
                if hit
                else "repro.incremental.warmstart.misses"
            )
            if settled:
                metrics.inc(
                    "repro.incremental.warmstart.settled_reused", settled
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def reuse_ratio(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "settled_reused": self.settled_reused,
                "families": len(self._families),
                "max_families": self.max_families,
                "reuse_ratio": self.reuse_ratio,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WarmStartIndex(families={len(self)}/{self.max_families}, "
            f"hits={self.hits}, misses={self.misses})"
        )
