"""Incremental re-solve engine: delta-aware routing for the hot path.

See docs/INCREMENTAL.md for the event taxonomy, the splice-vs-escalate
decision table, the warm-start soundness argument, and the metric
catalog.
"""

from repro.incremental.delta import (
    DeltaBus,
    GraphDelta,
    active,
    disable,
    enable,
    region_of,
    tracking,
)
from repro.incremental.engine import EventOutcome, IncrementalRouter
from repro.incremental.events import DeltaEvent, DeltaKind
from repro.incremental.tree import (
    DISJOINT,
    REPLACEABLE,
    STRUCTURAL,
    broken_channels,
    classify_break,
    splice_solution,
)
from repro.incremental.warmstart import WarmStartIndex

__all__ = [
    "DeltaBus",
    "DeltaEvent",
    "DeltaKind",
    "EventOutcome",
    "GraphDelta",
    "IncrementalRouter",
    "WarmStartIndex",
    "DISJOINT",
    "REPLACEABLE",
    "STRUCTURAL",
    "active",
    "broken_channels",
    "classify_break",
    "disable",
    "enable",
    "region_of",
    "splice_solution",
    "tracking",
]
