"""The central controller of Sec. II-B, as a facade.

The paper describes the operational loop: "a central node collects
entanglement requests from users and, using all available network
information like topology and switches' capacity, formulates
entanglement routes in an offline process … the network executes the
entanglement process."  :class:`EntanglementController` packages that
loop over the library's layers:

* **plan** — route with the configured algorithm, post-optimize with
  local search, and validate (an invalid plan raises — planner bugs
  must never reach the network);
* **execute** — drive the discrete-event simulator until the tree
  succeeds, returning protocol telemetry;
* **handle_failure** — incremental repair after fiber/switch loss, with
  a from-scratch replan fallback when repair fails;
* **serve** — the whole request lifecycle in one call.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, List, Optional, Sequence, Tuple

import repro.obs.metrics as obs_metrics
import repro.obs.trace as obs_trace
from repro.core.localsearch import improve_solution
from repro.core.problem import MUERPSolution
from repro.core.registry import (
    CAPACITY_EXEMPT_METHODS,
    CircuitBreaker,
    SolveAudit,
    solve,
    solve_robust,
)
from repro.core.tree import ValidationReport, validate_solution
from repro.extensions.recovery import RepairReport, apply_failures, repair_solution
from repro.network.graph import QuantumNetwork
from repro.sim.engine import SlottedEntanglementSimulator, SlottedRunResult
from repro.utils.rng import RngLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.admission.control import AdmissionController
    from repro.resilience.faults import FaultInjector
    from repro.resilience.retry import RetryPolicy
    from repro.resilience.runtime import ResilientServiceReport

logger = logging.getLogger("repro.controller")


class PlanningError(RuntimeError):
    """The planner produced an invalid solution (library bug guard)."""

    def __init__(self, report: ValidationReport) -> None:
        super().__init__(f"invalid plan: {report}")
        self.report = report


@dataclass(frozen=True)
class ServiceReport:
    """Outcome of one full request lifecycle (:meth:`serve`)."""

    solution: MUERPSolution
    run: Optional[SlottedRunResult]

    @property
    def entangled(self) -> bool:
        return self.run is not None and self.run.succeeded

    @property
    def windows_used(self) -> int:
        return self.run.slots_used if self.run is not None else 0


class EntanglementController:
    """Offline planner + protocol driver over one quantum network.

    Args:
        network: The controlled network (the controller tracks failures
            applied through :meth:`handle_failure` on an internal copy).
        method: Routing algorithm name from the solver registry
            (default Algorithm 3).
        use_local_search: Post-optimize plans with the hill climber.
        rng: Random source shared by planning and protocol execution.
        verify: Plan through the hardened
            :func:`~repro.core.registry.solve_robust` path: every
            candidate is independently re-checked by the
            :class:`~repro.verify.verifier.SolutionVerifier` and the
            attempt history lands in :attr:`last_audit`.  Default on.
        fallback_chain: Solver names tried after *method* when it times
            out, crashes or emits an invalid plan (only consulted when
            *verify* is on).  Default: no fallbacks — the configured
            method solves or the plan is rejected, exactly the classic
            behaviour.
        solve_timeout_s: Optional per-solver wall-clock watchdog for
            the verified path.
    """

    def __init__(
        self,
        network: QuantumNetwork,
        method: str = "conflict_free",
        use_local_search: bool = True,
        rng: RngLike = None,
        verify: bool = True,
        fallback_chain: Optional[Sequence[str]] = None,
        solve_timeout_s: Optional[float] = None,
    ) -> None:
        self._network = network.copy()
        self.method = method
        self.use_local_search = use_local_search
        self.rng = ensure_rng(rng)
        self.verify = verify
        self.fallback_chain: Tuple[str, ...] = (method,) + tuple(
            m for m in (fallback_chain or ()) if m != method
        )
        self.solve_timeout_s = solve_timeout_s
        #: Audit trail of the most recent verified planning call.
        self.last_audit: Optional[SolveAudit] = None
        self._breaker = CircuitBreaker()

    @property
    def network(self) -> QuantumNetwork:
        """The controller's current view of the network (post-failures)."""
        return self._network

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        users: Optional[Iterable[Hashable]] = None,
        verify: Optional[bool] = None,
    ) -> MUERPSolution:
        """Formulate a validated entanglement route for *users*.

        With verification on (the default) the request runs through the
        hardened :func:`~repro.core.registry.solve_robust` chain — the
        configured method plus any :attr:`fallback_chain` entries, each
        watchdog-guarded and independently verified — and the attempt
        history is kept in :attr:`last_audit`.

        Returns an infeasible solution (rate 0) when the request cannot
        be served; raises :class:`PlanningError` if the solver(s) only
        ever emit structurally invalid plans.
        """
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("controller.plan.calls")
        with obs_trace.span(
            "controller.plan", method=self.method
        ) as plan_span:
            solution = self._plan_impl(users, verify)
            if plan_span is not None:
                plan_span.set_attr("feasible", solution.feasible)
            if metrics is not None and not solution.feasible:
                metrics.inc("controller.plan.infeasible")
            return solution

    def _plan_impl(
        self,
        users: Optional[Iterable[Hashable]],
        verify: Optional[bool],
    ) -> MUERPSolution:
        use_verify = self.verify if verify is None else verify
        planned_method = self.method
        if use_verify:
            result = solve_robust(
                self._network,
                users=users,
                rng=self.rng,
                chain=self.fallback_chain,
                timeout_s=self.solve_timeout_s,
                breaker=self._breaker,
            )
            self.last_audit = result.audit
            solution = result.solution
            if result.audit.winner is not None:
                planned_method = result.audit.winner
            elif any(
                a.status == "invalid" for a in result.audit.attempts
            ):
                # The whole chain failed and at least one solver emitted
                # a structurally broken plan: that is a library bug, not
                # a legitimate infeasible instance.
                report = ValidationReport()
                for attempt in result.audit.attempts:
                    if attempt.status != "invalid":
                        continue
                    for code in attempt.violations:
                        report.add(
                            f"solver {attempt.method!r} violated "
                            f"invariant {code!r}"
                        )
                    if attempt.detail:
                        report.add(f"{attempt.method}: {attempt.detail}")
                raise PlanningError(report)
        else:
            solution = solve(
                self.method, self._network, users=users, rng=self.rng
            )
        if solution.feasible and self.use_local_search:
            solution = improve_solution(self._network, solution)
        report = validate_solution(
            self._network,
            solution,
            enforce_capacity=planned_method not in CAPACITY_EXEMPT_METHODS,
        )
        if not report.ok:
            raise PlanningError(report)
        return solution

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, solution: MUERPSolution, max_slots: int = 1_000_000
    ) -> SlottedRunResult:
        """Run the synchronized protocol until the tree succeeds."""
        simulator = SlottedEntanglementSimulator(
            self._network, solution, rng=self.rng
        )
        return simulator.run(max_slots=max_slots)

    def serve(
        self,
        users: Optional[Iterable[Hashable]] = None,
        max_slots: int = 1_000_000,
    ) -> ServiceReport:
        """Plan and execute one request end to end."""
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("controller.serve.requests")
        with obs_trace.span(
            "controller.serve", method=self.method
        ) as serve_span:
            solution = self.plan(users)
            if not solution.feasible:
                if serve_span is not None:
                    serve_span.set_attr("outcome", "infeasible")
                return ServiceReport(solution=solution, run=None)
            run = self.execute(solution, max_slots=max_slots)
            if metrics is not None and run.succeeded:
                metrics.inc("controller.serve.entangled")
            if serve_span is not None:
                serve_span.set_attr(
                    "outcome", "entangled" if run.succeeded else "failed"
                )
                serve_span.set_attr("slots_used", run.slots_used)
            return ServiceReport(solution=solution, run=run)

    def serve_resilient(
        self,
        users: Optional[Iterable[Hashable]] = None,
        injector: Optional["FaultInjector"] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        max_slots: int = 100_000,
        deadline_slot: Optional[int] = None,
        request_name: str = "request",
        admission: Optional["AdmissionController"] = None,
    ) -> "ResilientServiceReport":
        """Serve one request under a live fault timeline.

        Like :meth:`serve`, but the protocol runs against *injector*'s
        fault schedule with *retry_policy* pacing failed attempts:
        permanent faults on the plan trigger incremental repair (then a
        full replan, then graceful degradation to the largest user
        subset), and the full history lands in the returned report's
        :class:`~repro.resilience.report.ResilienceReport`.

        *admission* puts an
        :class:`~repro.admission.AdmissionController` in front of the
        lifecycle: a refused request is closed with a ``shed``
        disposition before any planning work is spent on it.
        """
        from repro.resilience.runtime import execute_with_resilience

        return execute_with_resilience(
            self,
            users=users,
            injector=injector,
            retry_policy=retry_policy,
            max_slots=max_slots,
            deadline_slot=deadline_slot,
            request_name=request_name,
            admission=admission,
        )

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def absorb_failures(
        self,
        failed_fibers: Sequence[Tuple[Hashable, Hashable]] = (),
        failed_switches: Sequence[Hashable] = (),
    ) -> None:
        """Fold failures into the controller's network view.

        Subsequent :meth:`plan` calls route around the dead elements.
        """
        logger.info(
            "absorbing failures: %d fibers, %d switches",
            len(tuple(failed_fibers)),
            len(tuple(failed_switches)),
        )
        self._network = apply_failures(
            self._network, failed_fibers, failed_switches
        )

    def handle_failure(
        self,
        solution: MUERPSolution,
        failed_fibers: Sequence[Tuple[Hashable, Hashable]] = (),
        failed_switches: Sequence[Hashable] = (),
    ) -> MUERPSolution:
        """Absorb failures into the network view and fix *solution*.

        Tries incremental repair first (keeps surviving channels and
        their reservations); falls back to a full replan on the damaged
        network.  Returns the best feasible fix, or an infeasible
        solution when the users are no longer connectable.
        """
        report: RepairReport = repair_solution(
            self._network, solution, failed_fibers, failed_switches
        )
        self._network = apply_failures(
            self._network, failed_fibers, failed_switches
        )
        if report.repaired:
            return report.solution
        fresh = self.plan(sorted(solution.users, key=repr))
        return fresh
