"""Volchenkov–Blanchard power-law random-graph generator.

Volchenkov & Blanchard (2002) describe an algorithm producing graphs with
power-law degree distributions.  We reproduce its essence: draw a target
degree for every node from a truncated power law ``P(k) ∝ k^{-τ}``
(re-scaled so the mean matches the configured average degree), then
realise the degree sequence with a preferential, distance-agnostic
stub-matching pass.  Connectivity is repaired geometrically afterwards.
"""

from __future__ import annotations

import math
from typing import List, Set, Tuple

import numpy as np

from repro.network.graph import QuantumNetwork
from repro.topology.base import (
    GeneratedTopology,
    TopologyConfig,
    assemble_network,
    choose_user_indices,
    repair_connectivity,
    scatter_positions,
    trim_to_edge_target,
)
from repro.utils.rng import RngLike, ensure_rng

DEFAULT_EXPONENT = 2.5


def volchenkov_network(
    config: TopologyConfig,
    rng: RngLike = None,
    exponent: float = DEFAULT_EXPONENT,
) -> QuantumNetwork:
    """Generate a power-law (Volchenkov-style) quantum network."""
    return volchenkov_topology(config, rng, exponent).network


def volchenkov_topology(
    config: TopologyConfig,
    rng: RngLike = None,
    exponent: float = DEFAULT_EXPONENT,
) -> GeneratedTopology:
    """Like :func:`volchenkov_network` with metadata."""
    generator = ensure_rng(rng)
    positions = scatter_positions(config, generator)
    n = config.n_nodes

    degrees = _power_law_degrees(n, config.avg_degree, exponent, generator)

    # Stub matching: nodes with remaining stubs are paired preferentially
    # by remaining-degree weight; rejected pairs (duplicates/self-loops)
    # are retried a bounded number of times.
    edges: Set[Tuple[int, int]] = set()
    stubs = degrees.copy()
    attempts = 0
    max_attempts = 50 * max(1, sum(stubs))
    while sum(1 for s in stubs if s > 0) >= 2 and attempts < max_attempts:
        attempts += 1
        weights = np.array([max(s, 0) for s in stubs], dtype=float)
        total = weights.sum()
        if total <= 0:
            break
        weights /= total
        i = int(generator.choice(n, p=weights))
        weights_j = weights.copy()
        weights_j[i] = 0.0
        total_j = weights_j.sum()
        if total_j <= 0:
            break
        weights_j /= total_j
        j = int(generator.choice(n, p=weights_j))
        edge = (i, j) if i < j else (j, i)
        if edge in edges:
            continue
        edges.add(edge)
        stubs[i] -= 1
        stubs[j] -= 1

    edges = repair_connectivity(positions, edges)
    edges = trim_to_edge_target(
        positions, edges, config.target_edges, generator
    )
    user_indices = choose_user_indices(config, generator)
    network = assemble_network(config, positions, edges, user_indices)
    return GeneratedTopology(
        network=network,
        config=config,
        method="volchenkov",
        positions={node.id: node.position for node in network.nodes},
    )


def _power_law_degrees(
    n: int,
    avg_degree: float,
    exponent: float,
    generator: np.random.Generator,
) -> List[int]:
    """Sample a degree sequence ``P(k) ∝ k^{-exponent}`` with given mean.

    Degrees are drawn from ``{1, …, n-1}``, then linearly re-scaled so the
    empirical mean is close to *avg_degree*, and the total stub count is
    made even.
    """
    ks = np.arange(1, max(2, n), dtype=float)
    weights = ks ** (-exponent)
    weights /= weights.sum()
    raw = generator.choice(ks, size=n, p=weights)
    mean = raw.mean()
    if mean > 0:
        scaled = np.maximum(1, np.round(raw * (avg_degree / mean))).astype(int)
    else:
        scaled = np.ones(n, dtype=int)
    scaled = np.minimum(scaled, n - 1)
    degrees = [int(d) for d in scaled]
    if sum(degrees) % 2 == 1:
        # Make total stub count even by bumping the smallest degree.
        index = degrees.index(min(degrees))
        degrees[index] += 1
    return degrees
