"""Name-based dispatch for topology generators."""

from __future__ import annotations

from typing import Callable, Dict

from repro.network.graph import QuantumNetwork
from repro.topology.base import TopologyConfig
from repro.topology.extras import erdos_renyi_network
from repro.topology.volchenkov import volchenkov_network
from repro.topology.watts_strogatz import watts_strogatz_network
from repro.topology.waxman import waxman_network
from repro.utils.rng import RngLike

Generator = Callable[[TopologyConfig, RngLike], QuantumNetwork]

#: The three methods from the paper's Sec. V-A plus an Erdős–Rényi extra.
GENERATORS: Dict[str, Generator] = {
    "waxman": waxman_network,
    "watts_strogatz": watts_strogatz_network,
    "volchenkov": volchenkov_network,
    "erdos_renyi": erdos_renyi_network,
}


def generate(
    method: str, config: TopologyConfig, rng: RngLike = None
) -> QuantumNetwork:
    """Generate a network with the named *method* ("waxman" by default).

    Raises ``KeyError`` listing the available methods on an unknown name.
    """
    try:
        generator = GENERATORS[method]
    except KeyError:
        raise KeyError(
            f"unknown topology method {method!r}; "
            f"available: {sorted(GENERATORS)}"
        ) from None
    return generator(config, rng)
