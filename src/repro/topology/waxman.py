"""Waxman random-graph generator (the paper's default topology).

Waxman (1988): nodes are scattered in the plane and each pair (i, j) is
wired with probability ``β · exp(-d(i,j) / (γ · L_max))`` where ``L_max``
is the maximum inter-node distance.  To hit the paper's average-degree
target exactly we rank pairs by their Waxman score perturbed with Gumbel
noise (equivalent to sampling without replacement proportionally to the
Waxman probability) and keep the top ``target_edges`` pairs, then repair
connectivity.
"""

from __future__ import annotations

import math
from typing import List, Set, Tuple

import numpy as np

from repro.network.graph import QuantumNetwork
from repro.topology.base import (
    GeneratedTopology,
    TopologyConfig,
    assemble_network,
    choose_user_indices,
    euclidean,
    repair_connectivity,
    scatter_positions,
    trim_to_edge_target,
)
from repro.utils.rng import RngLike, ensure_rng

#: Classic Waxman parameters; β scales overall density (we re-normalize to
#: the degree target anyway), γ controls how strongly distance suppresses
#: long edges.
DEFAULT_BETA = 0.4
DEFAULT_GAMMA = 0.2


def waxman_network(
    config: TopologyConfig,
    rng: RngLike = None,
    beta: float = DEFAULT_BETA,
    gamma: float = DEFAULT_GAMMA,
) -> QuantumNetwork:
    """Generate a Waxman-style quantum network per the paper's setup."""
    return waxman_topology(config, rng, beta=beta, gamma=gamma).network


def waxman_topology(
    config: TopologyConfig,
    rng: RngLike = None,
    beta: float = DEFAULT_BETA,
    gamma: float = DEFAULT_GAMMA,
) -> GeneratedTopology:
    """Like :func:`waxman_network` but returns generation metadata too."""
    generator = ensure_rng(rng)
    positions = scatter_positions(config, generator)
    n = config.n_nodes

    max_distance = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            max_distance = max(max_distance, euclidean(positions[i], positions[j]))
    if max_distance <= 0.0:
        max_distance = 1.0

    # Score every pair by log(Waxman probability) + Gumbel noise; taking
    # the top-k of such scores samples k pairs with probabilities
    # proportional to the Waxman weights (the Gumbel-max trick).
    scores: List[Tuple[float, int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            distance = euclidean(positions[i], positions[j])
            log_prob = math.log(beta) - distance / (gamma * max_distance)
            gumbel = -math.log(-math.log(generator.uniform(1e-12, 1.0)))
            scores.append((log_prob + gumbel, i, j))
    scores.sort(reverse=True)

    target = min(config.target_edges, len(scores))
    edges: Set[Tuple[int, int]] = {(i, j) for _, i, j in scores[:target]}
    edges = repair_connectivity(positions, edges)
    edges = trim_to_edge_target(positions, edges, target, generator)

    user_indices = choose_user_indices(config, generator)
    network = assemble_network(config, positions, edges, user_indices)
    return GeneratedTopology(
        network=network,
        config=config,
        method="waxman",
        positions={node.id: node.position for node in network.nodes},
    )
