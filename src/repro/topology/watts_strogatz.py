"""Watts–Strogatz small-world generator.

A ring lattice over the scattered nodes (ordered by angle around the
area's centre so "ring neighbours" are geometrically coherent) with each
node joined to its ``k`` nearest ring neighbours, then each edge rewired
with probability ``p_rewire``.  Fiber lengths still derive from the true
Euclidean positions, so rewired edges are typically long and low-rate —
which is exactly why the paper observes N-FUSION failing on this
topology.
"""

from __future__ import annotations

import math
from typing import List, Set, Tuple

from repro.network.graph import QuantumNetwork
from repro.topology.base import (
    GeneratedTopology,
    TopologyConfig,
    assemble_network,
    choose_user_indices,
    repair_connectivity,
    scatter_positions,
)
from repro.utils.rng import RngLike, ensure_rng

DEFAULT_REWIRE_PROB = 0.1


def watts_strogatz_network(
    config: TopologyConfig,
    rng: RngLike = None,
    rewire_prob: float = DEFAULT_REWIRE_PROB,
) -> QuantumNetwork:
    """Generate a Watts–Strogatz-style quantum network."""
    return watts_strogatz_topology(config, rng, rewire_prob).network


def watts_strogatz_topology(
    config: TopologyConfig,
    rng: RngLike = None,
    rewire_prob: float = DEFAULT_REWIRE_PROB,
) -> GeneratedTopology:
    """Like :func:`watts_strogatz_network` with metadata."""
    generator = ensure_rng(rng)
    positions = scatter_positions(config, generator)
    n = config.n_nodes

    # Order nodes by polar angle around the centroid to make the ring
    # lattice geometrically meaningful.
    cx = sum(p[0] for p in positions) / n
    cy = sum(p[1] for p in positions) / n
    ring: List[int] = sorted(
        range(n), key=lambda i: math.atan2(positions[i][1] - cy, positions[i][0] - cx)
    )
    rank = {node: index for index, node in enumerate(ring)}

    # Each node connects to k/2 successors on the ring; k is the even
    # number closest to the average-degree target.
    k = max(2, int(round(config.avg_degree / 2.0)) * 2)
    k = min(k, n - 1 if (n - 1) % 2 == 0 else n - 2) or 2
    half = k // 2

    edges: Set[Tuple[int, int]] = set()
    for position_on_ring, node in enumerate(ring):
        for offset in range(1, half + 1):
            neighbor = ring[(position_on_ring + offset) % n]
            if node == neighbor:
                continue
            edge = (node, neighbor) if node < neighbor else (neighbor, node)
            edges.add(edge)

    # Rewire: with probability p, replace edge (u, v) by (u, w) for a
    # uniform random w avoiding self-loops and duplicates.
    for edge in sorted(edges):
        if generator.uniform() >= rewire_prob:
            continue
        u, v = edge
        candidates = [
            w
            for w in range(n)
            if w != u
            and (min(u, w), max(u, w)) not in edges
        ]
        if not candidates:
            continue
        w = int(candidates[int(generator.integers(0, len(candidates)))])
        edges.discard(edge)
        edges.add((min(u, w), max(u, w)))

    edges = repair_connectivity(positions, edges)
    user_indices = choose_user_indices(config, generator)
    network = assemble_network(config, positions, edges, user_indices)
    return GeneratedTopology(
        network=network,
        config=config,
        method="watts_strogatz",
        positions={node.id: node.position for node in network.nodes},
    )
