"""Random network topology generators used by the paper's evaluation.

Sec. V-A of the paper generates networks with three methods — Waxman,
Watts–Strogatz and Volchenkov (power-law) — over a 10k × 10k km area, with
50 switches, 10 users, average degree 6 and 4 qubits per switch by
default.  :func:`generate` dispatches on a method name and returns a fully
built :class:`~repro.network.QuantumNetwork`.
"""

from repro.topology.base import TopologyConfig, GeneratedTopology, repair_connectivity
from repro.topology.waxman import waxman_network
from repro.topology.watts_strogatz import watts_strogatz_network
from repro.topology.volchenkov import volchenkov_network
from repro.topology.extras import grid_network, ring_network, erdos_renyi_network
from repro.topology.real_world import real_world_network, TOPOLOGY_DATA
from repro.topology.perturb import (
    remove_random_fibers,
    densify,
    jitter_positions,
    degrade_switches,
)
from repro.topology.registry import GENERATORS, generate

__all__ = [
    "TopologyConfig",
    "GeneratedTopology",
    "repair_connectivity",
    "waxman_network",
    "watts_strogatz_network",
    "volchenkov_network",
    "grid_network",
    "ring_network",
    "erdos_renyi_network",
    "real_world_network",
    "TOPOLOGY_DATA",
    "remove_random_fibers",
    "densify",
    "jitter_positions",
    "degrade_switches",
    "GENERATORS",
    "generate",
]
