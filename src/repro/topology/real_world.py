"""Reference real-world research-network topologies.

The paper evaluates on synthetic generators; real deployments are often
benchmarked on published research topologies.  We ship two classics with
approximate geographic coordinates (scaled to kilometres):

* **NSFNET** (14 nodes, 21 links) — the historical US research backbone,
  a standard testbed in optical/quantum networking papers.
* **ABILENE** (11 nodes, 14 links) — the Internet2 backbone.

Nodes default to switches; callers pick which sites host quantum users
(by name or count).  Fiber lengths are great-circle-ish straight-line
distances from the embedded coordinates.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.graph import NetworkParams, QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng

# Approximate (x, y) positions in km on a flat projection of the US.
_NSFNET_SITES: Dict[str, Tuple[float, float]] = {
    "WA": (0, 2600), "CA1": (0, 1200), "CA2": (250, 800),
    "UT": (1100, 1800), "CO": (1600, 1600), "TX": (2100, 400),
    "NE": (2300, 1800), "IL": (3100, 2000), "PA": (3900, 1900),
    "GA": (3600, 900), "MI": (3500, 2300), "NY": (4300, 2200),
    "NJ": (4250, 2000), "DC": (4100, 1800),
}

_NSFNET_LINKS: List[Tuple[str, str]] = [
    ("WA", "CA1"), ("WA", "CA2"), ("WA", "IL"),
    ("CA1", "CA2"), ("CA1", "UT"), ("CA2", "TX"),
    ("UT", "CO"), ("UT", "MI"), ("CO", "NE"), ("CO", "TX"),
    ("NE", "IL"), ("NE", "UT"), ("TX", "GA"), ("TX", "DC"),
    ("IL", "PA"), ("GA", "PA"), ("GA", "MI"), ("MI", "NY"),
    ("PA", "NY"), ("NY", "NJ"), ("NJ", "DC"),
]

_ABILENE_SITES: Dict[str, Tuple[float, float]] = {
    "SEA": (0, 2600), "SNV": (100, 1100), "LAX": (300, 700),
    "DEN": (1600, 1700), "KSC": (2500, 1500), "HOU": (2300, 300),
    "CHI": (3100, 2000), "IPL": (3300, 1800), "ATL": (3600, 900),
    "WDC": (4100, 1800), "NYC": (4300, 2200),
}

_ABILENE_LINKS: List[Tuple[str, str]] = [
    ("SEA", "SNV"), ("SEA", "DEN"), ("SNV", "LAX"), ("SNV", "DEN"),
    ("LAX", "HOU"), ("DEN", "KSC"), ("KSC", "HOU"), ("KSC", "IPL"),
    ("HOU", "ATL"), ("CHI", "IPL"), ("CHI", "NYC"), ("IPL", "ATL"),
    ("ATL", "WDC"), ("NYC", "WDC"),
]

TOPOLOGY_DATA: Dict[str, Tuple[Dict[str, Tuple[float, float]], List[Tuple[str, str]]]] = {
    "nsfnet": (_NSFNET_SITES, _NSFNET_LINKS),
    "abilene": (_ABILENE_SITES, _ABILENE_LINKS),
}


def real_world_network(
    name: str,
    user_sites: Optional[Sequence[str]] = None,
    n_users: int = 4,
    qubits_per_switch: int = 4,
    params: Optional[NetworkParams] = None,
    rng: RngLike = None,
) -> QuantumNetwork:
    """Build a named reference topology as a quantum network.

    Args:
        name: ``"nsfnet"`` or ``"abilene"``.
        user_sites: Site names that host quantum users.  When omitted,
            *n_users* sites are drawn uniformly at random with *rng*.
        n_users: Number of random user sites when *user_sites* is None.
        qubits_per_switch: Budget for every non-user site.
        params: Physical parameters (paper defaults when omitted).
        rng: Random source for the user-site draw.

    Returns:
        A connected :class:`QuantumNetwork` whose fiber lengths are the
        straight-line site distances.
    """
    try:
        sites, links = TOPOLOGY_DATA[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; available: {sorted(TOPOLOGY_DATA)}"
        ) from None

    if user_sites is None:
        generator = ensure_rng(rng)
        if not 2 <= n_users <= len(sites):
            raise ValueError(
                f"n_users must be in [2, {len(sites)}], got {n_users}"
            )
        names = sorted(sites)
        chosen = generator.choice(len(names), size=n_users, replace=False)
        user_set = {names[int(i)] for i in chosen}
    else:
        user_set = set(user_sites)
        unknown = user_set - set(sites)
        if unknown:
            raise ValueError(f"unknown sites: {sorted(unknown)}")
        if len(user_set) < 2:
            raise ValueError("need at least 2 user sites")

    network = QuantumNetwork(params)
    for site, position in sites.items():
        if site in user_set:
            network.add_user(site, position)
        else:
            network.add_switch(site, position, qubits=qubits_per_switch)
    for u, v in links:
        du = sites[u]
        dv = sites[v]
        network.add_fiber(u, v, math.hypot(du[0] - dv[0], du[1] - dv[1]))
    return network
