"""Topology perturbation utilities.

The resilience analyses (Fig. 7(b), the recovery extension, chaos tests)
need controlled ways to mutate a topology.  All helpers return modified
*copies* and are deterministic under a seed.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Tuple

from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


def remove_random_fibers(
    network: QuantumNetwork,
    count: int,
    rng: RngLike = None,
    keep_connected: bool = False,
) -> QuantumNetwork:
    """Copy of *network* with *count* uniformly random fibers removed.

    With ``keep_connected`` fibers whose removal would disconnect the
    graph are skipped (the trim may then fall short of *count*).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    generator = ensure_rng(rng)
    result = network.copy()
    removed = 0
    attempts = 0
    max_attempts = 20 * max(count, 1)
    while removed < count and attempts < max_attempts:
        attempts += 1
        fibers = result.fibers
        if not fibers:
            break
        fiber = fibers[int(generator.integers(0, len(fibers)))]
        result.remove_fiber(fiber.u, fiber.v)
        if keep_connected and not result.is_connected():
            result.add_fiber(fiber.u, fiber.v, fiber.length, fiber.cores)
            continue
        removed += 1
    return result


def densify(
    network: QuantumNetwork,
    count: int,
    rng: RngLike = None,
    max_length: Optional[float] = None,
) -> QuantumNetwork:
    """Copy of *network* with up to *count* new random fibers added.

    Candidate endpoints are uniform node pairs without an existing
    fiber; ``max_length`` (km) filters out overly long additions.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    generator = ensure_rng(rng)
    result = network.copy()
    nodes = result.node_ids
    if len(nodes) < 2:
        return result
    added = 0
    attempts = 0
    max_attempts = 50 * max(count, 1)
    while added < count and attempts < max_attempts:
        attempts += 1
        i, j = generator.choice(len(nodes), size=2, replace=False)
        u, v = nodes[int(i)], nodes[int(j)]
        if result.has_fiber(u, v):
            continue
        length = result.node(u).distance_to(result.node(v))
        if length <= 0.0:
            length = 1e-9
        if max_length is not None and length > max_length:
            continue
        result.add_fiber(u, v, length)
        added += 1
    return result


def jitter_positions(
    network: QuantumNetwork,
    sigma_km: float,
    rng: RngLike = None,
) -> QuantumNetwork:
    """Rebuild *network* with Gaussian-perturbed node positions.

    Fiber lengths are recomputed from the new positions, modelling
    deployment uncertainty; the wiring is preserved.
    """
    if sigma_km < 0:
        raise ValueError("sigma_km must be >= 0")
    generator = ensure_rng(rng)
    result = QuantumNetwork(network.params)
    for node in network.nodes:
        dx, dy = generator.normal(0.0, sigma_km, size=2)
        position = (node.position[0] + dx, node.position[1] + dy)
        if network.is_user(node.id):
            result.add_user(node.id, position)
        else:
            result.add_switch(
                node.id, position, qubits=network.qubits_of(node.id)
            )
    for fiber in network.fibers:
        result.add_fiber(fiber.u, fiber.v, cores=fiber.cores)
    return result


def degrade_switches(
    network: QuantumNetwork,
    fraction: float,
    rng: RngLike = None,
    to_qubits: int = 0,
) -> Tuple[QuantumNetwork, List[Hashable]]:
    """Set a random *fraction* of switches to *to_qubits* memories.

    Returns ``(network_copy, degraded_switch_ids)`` — models partially
    failed or maintenance-drained switches for resilience studies.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    generator = ensure_rng(rng)
    switches = network.switch_ids
    n_degraded = int(round(fraction * len(switches)))
    chosen = set()
    if n_degraded:
        picks = generator.choice(len(switches), size=n_degraded, replace=False)
        chosen = {switches[int(i)] for i in picks}
    result = QuantumNetwork(network.params)
    for node in network.nodes:
        if network.is_user(node.id):
            result.add_user(node.id, node.position)
        elif node.id in chosen:
            result.add_switch(node.id, node.position, qubits=to_qubits)
        else:
            result.add_switch(
                node.id, node.position, qubits=network.qubits_of(node.id)
            )
    for fiber in network.fibers:
        result.add_fiber(fiber.u, fiber.v, fiber.length, fiber.cores)
    return result, sorted(chosen, key=repr)
