"""Shared scaffolding for topology generation.

All generators follow the same recipe, mirroring the paper's setup:

1. scatter ``n_switches + n_users`` nodes uniformly at random in a square
   deployment area (default 10 000 × 10 000 km);
2. create fibers according to the generator's wiring rule, targeting a
   total edge count of ``⌈D · |V| / 2⌉`` for average degree ``D``;
3. repair connectivity by joining components with their geometrically
   shortest inter-component fiber;
4. pick which nodes are quantum users uniformly at random and assign the
   per-switch qubit budget.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Sequence, Set, Tuple

import numpy as np

from repro.network.graph import NetworkParams, QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters for random network generation (paper defaults).

    Attributes:
        n_switches: Number of quantum switches (paper default 50).
        n_users: Number of quantum users (paper default 10).
        avg_degree: Target average fiber degree ``D`` (paper default 6).
        qubits_per_switch: Qubit budget ``Q`` per switch (paper default 4).
        area: Side length of the square deployment area in km (10 000).
        alpha: Fiber attenuation constant (1e-4 per km).
        swap_prob: BSM swapping success probability ``q`` (0.9).
        n_edges: Optional explicit edge-count target overriding
            ``avg_degree`` (used by the Fig. 7(b) 600-fiber setup).
    """

    n_switches: int = 50
    n_users: int = 10
    avg_degree: float = 6.0
    qubits_per_switch: int = 4
    area: float = 10_000.0
    alpha: float = 1e-4
    swap_prob: float = 0.9
    n_edges: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ValueError(f"need at least 2 users, got {self.n_users}")
        if self.n_switches < 0:
            raise ValueError(f"n_switches must be >= 0, got {self.n_switches}")
        require_positive(self.avg_degree, "avg_degree")
        require_positive(self.area, "area")
        require_positive(self.alpha, "alpha")
        require_probability(self.swap_prob, "swap_prob")
        if self.qubits_per_switch < 0:
            raise ValueError("qubits_per_switch must be >= 0")

    @property
    def n_nodes(self) -> int:
        return self.n_switches + self.n_users

    @property
    def target_edges(self) -> int:
        """Edge-count target: explicit ``n_edges`` or ``⌈D·n/2⌉``."""
        if self.n_edges:
            return self.n_edges
        return int(math.ceil(self.avg_degree * self.n_nodes / 2.0))

    def network_params(self) -> NetworkParams:
        return NetworkParams(alpha=self.alpha, swap_prob=self.swap_prob)

    def replace(self, **changes) -> "TopologyConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class GeneratedTopology:
    """A generated network plus generation metadata."""

    network: QuantumNetwork
    config: TopologyConfig
    method: str
    positions: Dict[Hashable, Tuple[float, float]] = field(default_factory=dict)


def scatter_positions(
    config: TopologyConfig, rng: RngLike = None
) -> List[Tuple[float, float]]:
    """Uniform random (x, y) positions for all nodes inside the area."""
    generator = ensure_rng(rng)
    coords = generator.uniform(0.0, config.area, size=(config.n_nodes, 2))
    return [(float(x), float(y)) for x, y in coords]


def euclidean(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def choose_user_indices(
    config: TopologyConfig, rng: RngLike = None
) -> Set[int]:
    """Pick which of the ``n_nodes`` placed nodes become quantum users."""
    generator = ensure_rng(rng)
    chosen = generator.choice(config.n_nodes, size=config.n_users, replace=False)
    return {int(i) for i in chosen}


def assemble_network(
    config: TopologyConfig,
    positions: Sequence[Tuple[float, float]],
    edges: Set[Tuple[int, int]],
    user_indices: Set[int],
) -> QuantumNetwork:
    """Build a :class:`QuantumNetwork` from index-based edges.

    Users are named ``"u<i>"`` and switches ``"s<i>"`` with a stable
    renumbering so node ids are self-describing.
    """
    names: Dict[int, str] = {}
    user_counter = itertools.count()
    switch_counter = itertools.count()
    network = QuantumNetwork(config.network_params())
    for index in range(config.n_nodes):
        if index in user_indices:
            name = f"u{next(user_counter)}"
            network.add_user(name, positions[index])
        else:
            name = f"s{next(switch_counter)}"
            network.add_switch(
                name, positions[index], qubits=config.qubits_per_switch
            )
        names[index] = name
    for i, j in edges:
        network.add_fiber(
            names[i], names[j], euclidean(positions[i], positions[j])
        )
    return network


def repair_connectivity(
    positions: Sequence[Tuple[float, float]],
    edges: Set[Tuple[int, int]],
) -> Set[Tuple[int, int]]:
    """Join disconnected components with their shortest bridging edge.

    Mutates nothing; returns a new edge set that induces a connected
    graph over ``range(len(positions))``.  Greedy: repeatedly merge the
    component containing node 0 with the nearest outside node.
    """
    n = len(positions)
    if n == 0:
        return set(edges)
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(n)}
    result = set(edges)
    for i, j in result:
        adjacency[i].add(j)
        adjacency[j].add(i)

    def component_from(seed: int) -> Set[int]:
        seen: Set[int] = set()
        stack = [seed]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(adjacency[current] - seen)
        return seen

    component = component_from(0)
    while len(component) < n:
        outside = [i for i in range(n) if i not in component]
        best: Tuple[float, int, int] = (math.inf, -1, -1)
        for i in component:
            for j in outside:
                distance = euclidean(positions[i], positions[j])
                if distance < best[0]:
                    best = (distance, i, j)
        _, i, j = best
        edge = (i, j) if i < j else (j, i)
        result.add(edge)
        adjacency[i].add(j)
        adjacency[j].add(i)
        component |= component_from(j)
    return result


def trim_to_edge_target(
    positions: Sequence[Tuple[float, float]],
    edges: Set[Tuple[int, int]],
    target: int,
    rng: RngLike = None,
) -> Set[Tuple[int, int]]:
    """Randomly drop edges down to *target*, never disconnecting the graph.

    Edges whose removal would disconnect the graph (bridges at removal
    time) are kept.  If every remaining edge is a bridge the trim stops
    early, so the result may exceed *target* on tree-like graphs.
    """
    generator = ensure_rng(rng)
    result = set(edges)
    candidates = list(result)
    generator.shuffle(candidates)
    for edge in candidates:
        if len(result) <= target:
            break
        result.discard(edge)
        if not _is_connected(len(positions), result):
            result.add(edge)
    return result


def pad_to_edge_target(
    positions: Sequence[Tuple[float, float]],
    edges: Set[Tuple[int, int]],
    target: int,
    rng: RngLike = None,
) -> Set[Tuple[int, int]]:
    """Add shortest missing edges until the edge count reaches *target*."""
    n = len(positions)
    result = set(edges)
    missing = [
        (euclidean(positions[i], positions[j]), i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if (i, j) not in result
    ]
    missing.sort()
    for _, i, j in missing:
        if len(result) >= target:
            break
        result.add((i, j))
    return result


def _is_connected(n: int, edges: Set[Tuple[int, int]]) -> bool:
    if n == 0:
        return True
    adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
    for i, j in edges:
        adjacency[i].append(j)
        adjacency[j].append(i)
    seen: Set[int] = set()
    stack = [0]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(nb for nb in adjacency[current] if nb not in seen)
    return len(seen) == n
