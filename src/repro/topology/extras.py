"""Deterministic auxiliary topologies (grids, rings, Erdős–Rényi).

Not used by the paper's evaluation directly, but invaluable for unit
tests (known structure → known optimal routes) and for the lattice-style
scenarios cited in related work.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.network.graph import NetworkParams, QuantumNetwork
from repro.topology.base import (
    GeneratedTopology,
    TopologyConfig,
    assemble_network,
    choose_user_indices,
    repair_connectivity,
    scatter_positions,
)
from repro.utils.rng import RngLike, ensure_rng


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 1000.0,
    corner_users: bool = True,
    qubits_per_switch: int = 4,
    params: Optional[NetworkParams] = None,
) -> QuantumNetwork:
    """Build a ``rows × cols`` lattice of switches with users at corners.

    When *corner_users* is false, users sit at the west and east midpoints
    instead (always at least two users).  Spacing is the fiber length of
    every lattice edge.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2x2 nodes")
    network = QuantumNetwork(params)
    if corner_users:
        user_cells = {(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)}
    else:
        user_cells = {(rows // 2, 0), (rows // 2, cols - 1)}

    def name(r: int, c: int) -> str:
        return f"n{r}_{c}"

    for r in range(rows):
        for c in range(cols):
            position = (c * spacing, r * spacing)
            if (r, c) in user_cells:
                network.add_user(name(r, c), position)
            else:
                network.add_switch(name(r, c), position, qubits=qubits_per_switch)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_fiber(name(r, c), name(r, c + 1), spacing)
            if r + 1 < rows:
                network.add_fiber(name(r, c), name(r + 1, c), spacing)
    return network


def ring_network(
    n_nodes: int,
    n_users: int = 2,
    circumference: float = 10_000.0,
    qubits_per_switch: int = 4,
    params: Optional[NetworkParams] = None,
) -> QuantumNetwork:
    """Cycle of *n_nodes* nodes with *n_users* users evenly spread."""
    import math

    if n_nodes < 3:
        raise ValueError("ring needs at least 3 nodes")
    if not 2 <= n_users <= n_nodes:
        raise ValueError("need 2 <= n_users <= n_nodes")
    network = QuantumNetwork(params)
    radius = circumference / (2 * math.pi)
    user_slots = {round(i * n_nodes / n_users) % n_nodes for i in range(n_users)}
    while len(user_slots) < n_users:  # collisions on tiny rings
        user_slots.add(len(user_slots))
    names = []
    for i in range(n_nodes):
        angle = 2 * math.pi * i / n_nodes
        position = (radius * math.cos(angle), radius * math.sin(angle))
        if i in user_slots:
            node_name = f"u{i}"
            network.add_user(node_name, position)
        else:
            node_name = f"s{i}"
            network.add_switch(node_name, position, qubits=qubits_per_switch)
        names.append(node_name)
    segment = circumference / n_nodes
    for i in range(n_nodes):
        network.add_fiber(names[i], names[(i + 1) % n_nodes], segment)
    return network


def erdos_renyi_network(
    config: TopologyConfig, rng: RngLike = None
) -> QuantumNetwork:
    """G(n, m) random network with the config's edge-count target."""
    return erdos_renyi_topology(config, rng).network


def erdos_renyi_topology(
    config: TopologyConfig, rng: RngLike = None
) -> GeneratedTopology:
    """Like :func:`erdos_renyi_network` with metadata."""
    generator = ensure_rng(rng)
    positions = scatter_positions(config, generator)
    n = config.n_nodes
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    target = min(config.target_edges, len(all_pairs))
    chosen = generator.choice(len(all_pairs), size=target, replace=False)
    edges: Set[Tuple[int, int]] = {all_pairs[int(k)] for k in chosen}
    edges = repair_connectivity(positions, edges)
    user_indices = choose_user_indices(config, generator)
    network = assemble_network(config, positions, edges, user_indices)
    return GeneratedTopology(
        network=network,
        config=config,
        method="erdos_renyi",
        positions={node.id: node.position for node in network.nodes},
    )
