"""Command-line interface.

Examples::

    repro list
    repro solve --topology waxman --method conflict_free --seed 42
    repro experiment fig5 --networks 5 --seed 7
    repro experiment headline --networks 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.ascii_plot import log_bar_chart
from repro.core.registry import SOLVERS, solve
from repro.core.tree import validate_solution
from repro.experiments.catalog import EXPERIMENTS, run_named
from repro.experiments.config import ExperimentConfig
from repro.topology.base import TopologyConfig
from repro.topology.registry import GENERATORS, generate


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multi-user entanglement routing over quantum internets "
            "(ICDCS 2024 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list solvers, topologies and experiments")

    solve_parser = sub.add_parser(
        "solve", help="generate one network and route it"
    )
    solve_parser.add_argument("--topology", default="waxman")
    solve_parser.add_argument("--method", default="conflict_free")
    solve_parser.add_argument("--switches", type=int, default=50)
    solve_parser.add_argument("--users", type=int, default=10)
    solve_parser.add_argument("--degree", type=float, default=6.0)
    solve_parser.add_argument("--qubits", type=int, default=4)
    solve_parser.add_argument("--swap-prob", type=float, default=0.9)
    solve_parser.add_argument("--seed", type=int, default=7)
    solve_parser.add_argument(
        "--show-channels", action="store_true", help="print channel paths"
    )

    experiment_parser = sub.add_parser(
        "experiment", help="run a named experiment (fig5, fig6a, …)"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument(
        "--networks", type=int, default=20, help="random networks per point"
    )
    experiment_parser.add_argument("--seed", type=int, default=7)
    experiment_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a Markdown section instead of a text table",
    )

    stats_parser = sub.add_parser(
        "stats", help="generate one network and print its topology stats"
    )
    stats_parser.add_argument("--topology", default="waxman")
    stats_parser.add_argument("--switches", type=int, default=50)
    stats_parser.add_argument("--users", type=int, default=10)
    stats_parser.add_argument("--degree", type=float, default=6.0)
    stats_parser.add_argument("--seed", type=int, default=7)

    montecarlo_parser = sub.add_parser(
        "montecarlo", help="validate a routed tree's rate by simulation"
    )
    montecarlo_parser.add_argument("--topology", default="waxman")
    montecarlo_parser.add_argument("--method", default="conflict_free")
    montecarlo_parser.add_argument("--switches", type=int, default=50)
    montecarlo_parser.add_argument("--users", type=int, default=10)
    montecarlo_parser.add_argument("--trials", type=int, default=100_000)
    montecarlo_parser.add_argument("--seed", type=int, default=7)

    return parser


def _command_list() -> int:
    print("solvers:     ", ", ".join(sorted(SOLVERS)))
    print("topologies:  ", ", ".join(sorted(GENERATORS)))
    print("experiments: ", ", ".join(sorted(EXPERIMENTS)))
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        avg_degree=args.degree,
        qubits_per_switch=args.qubits,
        swap_prob=args.swap_prob,
    )
    network = generate(args.topology, config, rng=args.seed)
    solution = solve(args.method, network, rng=args.seed)
    report = validate_solution(
        network, solution, enforce_capacity=args.method not in ("optimal", "alg2")
    )
    print(network)
    print(solution)
    if not report.ok:
        print(report)
        return 1
    if solution.feasible and args.show_channels:
        for channel in solution.channels:
            print(f"  {channel}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.network.statistics import degree_histogram, topology_stats

    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        avg_degree=args.degree,
    )
    network = generate(args.topology, config, rng=args.seed)
    stats = topology_stats(network)
    print(network)
    print(stats.describe())
    print("degree histogram:")
    for degree, count in sorted(degree_histogram(network).items()):
        print(f"  {degree:3d}: {'#' * count} ({count})")
    return 0


def _command_montecarlo(args: argparse.Namespace) -> int:
    from repro.sim.protocol import simulate_solution

    config = TopologyConfig(
        n_switches=args.switches, n_users=args.users
    )
    network = generate(args.topology, config, rng=args.seed)
    solution = solve(args.method, network, rng=args.seed)
    print(network)
    print(solution)
    if not solution.feasible:
        print("infeasible; nothing to simulate")
        return 1
    result = simulate_solution(
        network, solution, trials=args.trials, rng=args.seed
    )
    low, high = result.confidence_interval()
    print(
        f"analytic rate (Eq.2): {result.analytic_rate:.6e}\n"
        f"empirical rate:       {result.empirical_rate:.6e} "
        f"(95% CI [{low:.3e}, {high:.3e}], {args.trials} trials)\n"
        f"consistent:           {'yes' if result.consistent else 'NO'}"
    )
    return 0 if result.consistent else 1


def _command_experiment(args: argparse.Namespace) -> int:
    base = ExperimentConfig(n_networks=args.networks, seed=args.seed)
    result = run_named(args.name, base)
    if args.markdown:
        from repro.analysis import report
        from repro.experiments.sweeps import SweepResult
        from repro.experiments.fig7_edges import EdgeRemovalResult

        if isinstance(result, SweepResult):
            print(report.sweep_markdown(result, f"experiment {args.name}"))
        elif isinstance(result, EdgeRemovalResult):
            print(report.edge_removal_markdown(result, f"experiment {args.name}"))
        elif hasattr(result, "to_table"):
            print(result.to_table(title=f"experiment {args.name}").render())
        return 0
    if hasattr(result, "to_table"):
        print(result.to_table(title=f"experiment {args.name}").render())
    else:  # pragma: no cover - all catalogue entries render tables
        print(result)
    # Bonus: a terminal log-scale chart for single-point summaries.
    if hasattr(result, "results") and result.results:
        last = result.results[-1]
        chart = log_bar_chart(
            {o.display: o.mean_rate for o in last.outcomes},
            title=f"(last swept point: {result.parameter}={result.values[-1]})",
        )
        print()
        print(chart)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "solve":
        return _command_solve(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "montecarlo":
        return _command_montecarlo(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
