"""Command-line interface.

Examples::

    repro list
    repro solve --topology waxman --method conflict_free --seed 42
    repro experiment fig5 --networks 5 --seed 7
    repro experiment headline --networks 3 --checkpoint out.jsonl --resume

Exit codes are distinct per failure class so scripts can branch on
them: ``0`` success, ``1`` generic failure, ``2`` invalid input
(:class:`~repro.utils.validation.ValidationError` / bad arguments),
``3`` solver failure (unknown solver, solver crash or timeout), ``4``
verification failure (a produced solution violated a MUERP invariant).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.ascii_plot import log_bar_chart
from repro.core.registry import (
    CAPACITY_EXEMPT_METHODS,
    SOLVERS,
    SolveTimeout,
    UnknownSolverError,
    solve,
    solve_robust,
)
from repro.core.tree import validate_solution
from repro.experiments.catalog import EXPERIMENTS, run_named
from repro.experiments.config import ExperimentConfig
from repro.topology.base import TopologyConfig
from repro.topology.registry import GENERATORS, generate
from repro.utils.validation import ValidationError

#: Process exit codes, one per failure class (see module docstring).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_VALIDATION_ERROR = 2
EXIT_SOLVER_ERROR = 3
EXIT_VERIFICATION_ERROR = 4
#: Conventional 128+SIGINT: the run was interrupted; progress report
#: (including unflushed trials) was printed before exiting.
EXIT_INTERRUPTED = 130


def _obs_parent() -> argparse.ArgumentParser:
    """Shared ``--metrics``/``--trace`` flags for every subcommand.

    The same options exist on the top-level parser (with real
    defaults); the per-subcommand copies use ``argparse.SUPPRESS`` so
    ``repro --metrics m.json solve`` and ``repro solve --metrics
    m.json`` both work, with the subcommand position winning.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help="write solver/runtime metrics to FILE after the command",
    )
    parent.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default=argparse.SUPPRESS,
        help="metrics file format (default json; prom = Prometheus text)",
    )
    parent.add_argument(
        "--trace",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help="write spans as JSONL to FILE after the command",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multi-user entanglement routing over quantum internets "
            "(ICDCS 2024 reproduction)"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write solver/runtime metrics to FILE after the command",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default="json",
        help="metrics file format (default json; prom = Prometheus text)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write spans as JSONL to FILE after the command",
    )
    obs_parent = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list",
        help="list solvers, topologies and experiments",
        parents=[obs_parent],
    )

    solve_parser = sub.add_parser(
        "solve",
        help="generate one network and route it",
        parents=[obs_parent],
    )
    solve_parser.add_argument("--topology", default="waxman")
    solve_parser.add_argument("--method", default="conflict_free")
    solve_parser.add_argument("--switches", type=int, default=50)
    solve_parser.add_argument("--users", type=int, default=10)
    solve_parser.add_argument("--degree", type=float, default=6.0)
    solve_parser.add_argument("--qubits", type=int, default=4)
    solve_parser.add_argument("--swap-prob", type=float, default=0.9)
    solve_parser.add_argument("--seed", type=int, default=7)
    solve_parser.add_argument(
        "--show-channels", action="store_true", help="print channel paths"
    )
    solve_parser.add_argument(
        "--robust",
        action="store_true",
        help=(
            "solve through the verified fallback chain "
            "(watchdog + independent verifier) and print the audit"
        ),
    )
    solve_parser.add_argument(
        "--fallback",
        action="append",
        default=None,
        metavar="METHOD",
        help="extra solver tried when --method fails (repeatable; "
        "implies --robust semantics only when --robust is given)",
    )

    obs_parser = sub.add_parser(
        "obs",
        help="run an instrumented demo solve and print its metrics",
        parents=[obs_parent],
    )
    obs_parser.add_argument("--topology", default="waxman")
    obs_parser.add_argument("--method", default="conflict_free")
    obs_parser.add_argument("--switches", type=int, default=40)
    obs_parser.add_argument("--users", type=int, default=8)
    obs_parser.add_argument("--degree", type=float, default=6.0)
    obs_parser.add_argument("--qubits", type=int, default=4)
    obs_parser.add_argument("--seed", type=int, default=7)
    obs_parser.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="stdout format for the metric snapshot",
    )

    experiment_parser = sub.add_parser(
        "experiment",
        help="run a named experiment (fig5, fig6a, …)",
        parents=[obs_parent],
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument(
        "--networks", type=int, default=20, help="random networks per point"
    )
    experiment_parser.add_argument("--seed", type=int, default=7)
    experiment_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a Markdown section instead of a text table",
    )
    experiment_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="JSONL file receiving one atomic record per finished trial",
    )
    experiment_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip trials already recorded in --checkpoint "
        "(losslessly continues a killed run)",
    )
    experiment_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard trials over N processes via the execution engine "
        "(results are byte-identical for every N; N=1 runs the "
        "engine's serial backend with channel caching on)",
    )
    experiment_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the channel-computation cache inside the engine "
        "(only meaningful with --workers)",
    )

    exec_parser = sub.add_parser(
        "exec",
        help="run a named experiment through the parallel execution "
        "engine and report shard/cache statistics",
        parents=[obs_parent],
    )
    exec_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    exec_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = in-process serial backend)",
    )
    exec_parser.add_argument(
        "--networks", type=int, default=20, help="random networks per point"
    )
    exec_parser.add_argument("--seed", type=int, default=7)
    exec_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the channel-computation cache",
    )
    exec_parser.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        metavar="N",
        help="LRU bound on cached channel searches (per process)",
    )
    exec_parser.add_argument(
        "--verify-determinism",
        action="store_true",
        help="also run serially (1 worker, no cache) and fail unless "
        "the results are byte-identical",
    )
    exec_parser.add_argument(
        "--chaos",
        action="store_true",
        help="chaos soak: deterministically inject worker kills, hangs "
        "and checkpoint truncation mid-sweep and let the shard "
        "supervisor recover (requires --workers >= 2)",
    )
    exec_parser.add_argument(
        "--chaos-kills",
        type=int,
        default=3,
        metavar="N",
        help="worker-kill budget for --chaos (default 3)",
    )
    exec_parser.add_argument(
        "--chaos-hangs",
        type=int,
        default=1,
        metavar="N",
        help="worker-hang budget for --chaos (default 1)",
    )
    exec_parser.add_argument(
        "--chaos-truncations",
        type=int,
        default=1,
        metavar="N",
        help="shard-checkpoint truncation budget for --chaos (default 1)",
    )
    exec_parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="shuffle seed for the chaos action order (default 0)",
    )
    exec_parser.add_argument(
        "--hang-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervisor hang watchdog: recycle the pool when a shard "
        "makes no progress for this long (default 120; 2 under --chaos)",
    )

    stats_parser = sub.add_parser(
        "stats",
        help="generate one network and print its topology stats",
        parents=[obs_parent],
    )
    stats_parser.add_argument("--topology", default="waxman")
    stats_parser.add_argument("--switches", type=int, default=50)
    stats_parser.add_argument("--users", type=int, default=10)
    stats_parser.add_argument("--degree", type=float, default=6.0)
    stats_parser.add_argument("--seed", type=int, default=7)

    montecarlo_parser = sub.add_parser(
        "montecarlo",
        help="validate a routed tree's rate by simulation",
        parents=[obs_parent],
    )
    montecarlo_parser.add_argument("--topology", default="waxman")
    montecarlo_parser.add_argument("--method", default="conflict_free")
    montecarlo_parser.add_argument("--switches", type=int, default=50)
    montecarlo_parser.add_argument("--users", type=int, default=10)
    montecarlo_parser.add_argument("--trials", type=int, default=100_000)
    montecarlo_parser.add_argument("--seed", type=int, default=7)

    resilience_parser = sub.add_parser(
        "resilience",
        help="run a chaos scenario: online service under injected faults",
        parents=[obs_parent],
    )
    resilience_parser.add_argument("--topology", default="waxman")
    resilience_parser.add_argument(
        "--method", default="prim", choices=("prim", "conflict_free")
    )
    resilience_parser.add_argument("--switches", type=int, default=40)
    resilience_parser.add_argument("--users", type=int, default=10)
    resilience_parser.add_argument("--qubits", type=int, default=4)
    resilience_parser.add_argument(
        "--faults", type=int, default=10, help="fault events to inject"
    )
    resilience_parser.add_argument(
        "--horizon", type=int, default=40, help="arrival/fault horizon (slots)"
    )
    resilience_parser.add_argument(
        "--arrival-rate", type=float, default=0.6, help="requests per slot"
    )
    resilience_parser.add_argument(
        "--retry",
        default="backoff",
        choices=("none", "fixed", "backoff"),
        help="retry policy pacing blocked requests",
    )
    resilience_parser.add_argument(
        "--no-degradation",
        action="store_true",
        help="abandon faulted requests instead of serving user subsets",
    )
    resilience_parser.add_argument("--seed", type=int, default=7)
    resilience_parser.add_argument(
        "--verify-determinism",
        action="store_true",
        help="run the scenario twice and fail unless reports are identical",
    )

    admit_parser = sub.add_parser(
        "admit",
        help="overload demo: online serving behind admission control",
        parents=[obs_parent],
    )
    admit_parser.add_argument("--topology", default="waxman")
    admit_parser.add_argument(
        "--method", default="prim", choices=("prim", "conflict_free")
    )
    admit_parser.add_argument("--switches", type=int, default=40)
    admit_parser.add_argument("--users", type=int, default=10)
    admit_parser.add_argument("--qubits", type=int, default=4)
    admit_parser.add_argument(
        "--horizon", type=int, default=40, help="arrival horizon (slots)"
    )
    admit_parser.add_argument(
        "--arrival-rate",
        type=float,
        default=3.0,
        help="requests per slot (crank this up to overload the network)",
    )
    admit_parser.add_argument(
        "--tenants",
        type=int,
        default=3,
        help="tenant labels for per-tenant rate limiting (0 = untenanted)",
    )
    admit_parser.add_argument(
        "--max-wait", type=int, default=5, help="blocked-request patience"
    )
    admit_parser.add_argument(
        "--rate",
        type=float,
        default=1.0,
        help="token-bucket refill per tenant per slot",
    )
    admit_parser.add_argument(
        "--burst", type=float, default=4.0, help="token-bucket capacity"
    )
    admit_parser.add_argument(
        "--bulkhead",
        type=int,
        default=32,
        help="max in-system requests per tenant",
    )
    admit_parser.add_argument(
        "--queue-size", type=int, default=8, help="admission queue bound"
    )
    admit_parser.add_argument(
        "--shed-policy",
        default="drop-newest",
        choices=(
            "drop-newest",
            "drop-oldest",
            "deadline-aware",
            "lowest-rate-first",
        ),
        help="victim selection when the admission queue is full",
    )
    admit_parser.add_argument("--seed", type=int, default=7)
    admit_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the no-admission comparison run",
    )
    admit_parser.add_argument(
        "--verify-determinism",
        action="store_true",
        help=(
            "run the scenario twice and fail unless reports and "
            "admission stats are byte-identical"
        ),
    )

    incremental_parser = sub.add_parser(
        "incremental",
        help=(
            "delta-aware routing demo: replay a churn stream "
            "incrementally and against the from-scratch reference"
        ),
        parents=[obs_parent],
    )
    incremental_parser.add_argument("--topology", default="waxman")
    incremental_parser.add_argument(
        "--method", default="prim", choices=("prim", "conflict_free")
    )
    incremental_parser.add_argument("--switches", type=int, default=40)
    incremental_parser.add_argument("--users", type=int, default=8)
    incremental_parser.add_argument("--qubits", type=int, default=4)
    incremental_parser.add_argument(
        "--events", type=int, default=60, help="churn events to generate"
    )
    incremental_parser.add_argument(
        "--fault-mix",
        default="0.5,0.2,0.3",
        help=(
            "comma-separated weights over fiber, switch, capacity "
            "event families (default 0.5,0.2,0.3)"
        ),
    )
    incremental_parser.add_argument(
        "--radius",
        type=int,
        default=2,
        help="fiber-hop radius of the splice search region",
    )
    incremental_parser.add_argument(
        "--scope",
        default="region",
        choices=("region", "fingerprint"),
        help="cache-invalidation scope for structural events",
    )
    incremental_parser.add_argument("--seed", type=int, default=7)
    incremental_parser.add_argument(
        "--skip-baseline",
        action="store_true",
        help="skip the from-scratch reference run (no equivalence check)",
    )
    incremental_parser.add_argument(
        "--verify-determinism",
        action="store_true",
        help=(
            "replay the incremental run twice and fail unless the "
            "aggregate digests are byte-identical"
        ),
    )

    serve_parser = sub.add_parser(
        "serve",
        help=(
            "multi-tenant demo: SLO-guarded serving with k-redundant "
            "trees, weighted-fair shedding and chaos faults"
        ),
        parents=[obs_parent],
    )
    serve_parser.add_argument("--topology", default="waxman")
    serve_parser.add_argument(
        "--method", default="prim", choices=("prim", "conflict_free")
    )
    serve_parser.add_argument("--switches", type=int, default=25)
    serve_parser.add_argument("--users", type=int, default=10)
    serve_parser.add_argument("--qubits", type=int, default=4)
    serve_parser.add_argument(
        "--horizon", type=int, default=48, help="arrival horizon (slots)"
    )
    serve_parser.add_argument(
        "--arrival-rate",
        type=float,
        default=2.0,
        help="mean requests per slot (Poisson)",
    )
    serve_parser.add_argument(
        "--tenants", type=int, default=4, help="number of tenant labels"
    )
    serve_parser.add_argument(
        "--tenant-skew",
        type=float,
        default=1.1,
        help="Zipf exponent over tenant popularity (0 = uniform)",
    )
    serve_parser.add_argument(
        "--diurnal-amplitude",
        type=float,
        default=0.5,
        help="sinusoidal load swing in [0, 1] (0 = flat rate)",
    )
    serve_parser.add_argument(
        "--diurnal-period",
        type=int,
        default=24,
        help="slots per diurnal cycle",
    )
    serve_parser.add_argument(
        "--max-wait", type=int, default=5, help="blocked-request patience"
    )
    serve_parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="trees reserved per admitted group (k-redundancy; 1 = off)",
    )
    serve_parser.add_argument(
        "--faults",
        type=int,
        default=12,
        help="chaos faults injected over the horizon (0 = no chaos)",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=1.0,
        help="token-bucket refill per tenant per slot",
    )
    serve_parser.add_argument(
        "--burst", type=float, default=4.0, help="token-bucket capacity"
    )
    serve_parser.add_argument(
        "--bulkhead",
        type=int,
        default=32,
        help="max in-system requests per tenant",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=16, help="admission queue bound"
    )
    serve_parser.add_argument("--seed", type=int, default=7)
    serve_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full serving summary as JSON instead of the table",
    )
    serve_parser.add_argument(
        "--verify-determinism",
        action="store_true",
        help=(
            "run the scenario twice and fail unless the serving "
            "summaries are byte-identical"
        ),
    )

    bounds_parser = sub.add_parser(
        "bounds",
        help=(
            "certify one network: LP relaxation bound, per-method "
            "optimality gaps and the rounding-based solver"
        ),
        parents=[obs_parent],
    )
    bounds_parser.add_argument("--topology", default="waxman")
    bounds_parser.add_argument("--switches", type=int, default=50)
    bounds_parser.add_argument("--users", type=int, default=10)
    bounds_parser.add_argument("--degree", type=float, default=6.0)
    bounds_parser.add_argument("--qubits", type=int, default=4)
    bounds_parser.add_argument("--swap-prob", type=float, default=0.9)
    bounds_parser.add_argument("--seed", type=int, default=7)
    bounds_parser.add_argument(
        "--backend",
        choices=("auto", "simplex", "scipy"),
        default="auto",
        help="LP backend (auto prefers scipy when installed)",
    )
    bounds_parser.add_argument(
        "--method",
        action="append",
        default=None,
        metavar="METHOD",
        help="solver to gap against the bound (repeatable; default "
        "conflict_free, prim, lp_rounding)",
    )
    bounds_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the certificate and gaps as JSON instead of a table",
    )
    bounds_parser.add_argument(
        "--verify-determinism",
        action="store_true",
        help=(
            "solve the relaxation and the rounding solver twice and "
            "fail unless certificates and trees are byte-identical"
        ),
    )

    return parser


def _command_list() -> int:
    print("solvers:     ", ", ".join(sorted(SOLVERS)))
    print("topologies:  ", ", ".join(sorted(GENERATORS)))
    print("experiments: ", ", ".join(sorted(EXPERIMENTS)))
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        avg_degree=args.degree,
        qubits_per_switch=args.qubits,
        swap_prob=args.swap_prob,
    )
    network = generate(args.topology, config, rng=args.seed)
    if args.robust:
        chain = (args.method,) + tuple(
            m for m in (args.fallback or ()) if m != args.method
        )
        result = solve_robust(
            network, rng=args.seed, chain=chain, timeout_s=60.0
        )
        solution = result.solution
        print(network)
        print(solution)
        print(result.audit.render())
        if not result.audit.succeeded and any(
            a.status == "invalid" for a in result.audit.attempts
        ):
            return EXIT_VERIFICATION_ERROR
        if solution.feasible and args.show_channels:
            for channel in solution.channels:
                print(f"  {channel}")
        return EXIT_OK
    solution = solve(args.method, network, rng=args.seed)
    report = validate_solution(
        network,
        solution,
        enforce_capacity=args.method not in CAPACITY_EXEMPT_METHODS,
    )
    print(network)
    print(solution)
    if not report.ok:
        print(report)
        return EXIT_VERIFICATION_ERROR
    if solution.feasible and args.show_channels:
        for channel in solution.channels:
            print(f"  {channel}")
    return EXIT_OK


def _command_obs(args: argparse.Namespace) -> int:
    """Instrumented demo: robust-solve one network, print the metrics.

    The metric snapshot goes to stdout (pipe it straight into a file or
    a scrape target); the network/solution summary goes to stderr.
    """
    import json

    import repro.obs as obs

    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        avg_degree=args.degree,
        qubits_per_switch=args.qubits,
    )
    network = generate(args.topology, config, rng=args.seed)
    result = solve_robust(
        network, rng=args.seed, chain=(args.method,), timeout_s=60.0
    )
    print(network, file=sys.stderr)
    print(result.solution, file=sys.stderr)
    registry = obs.active()
    if registry is None:  # pragma: no cover - main() always enables here
        print("metrics collection inactive", file=sys.stderr)
        return EXIT_FAILURE
    if args.format == "prom":
        print(obs.render_prometheus(registry), end="")
    else:
        print(json.dumps(registry.to_dict(), indent=2, sort_keys=True))
    return EXIT_OK


def _command_stats(args: argparse.Namespace) -> int:
    from repro.network.statistics import degree_histogram, topology_stats

    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        avg_degree=args.degree,
    )
    network = generate(args.topology, config, rng=args.seed)
    stats = topology_stats(network)
    print(network)
    print(stats.describe())
    print("degree histogram:")
    for degree, count in sorted(degree_histogram(network).items()):
        print(f"  {degree:3d}: {'#' * count} ({count})")
    return 0


def _command_montecarlo(args: argparse.Namespace) -> int:
    from repro.sim.protocol import simulate_solution

    config = TopologyConfig(
        n_switches=args.switches, n_users=args.users
    )
    network = generate(args.topology, config, rng=args.seed)
    solution = solve(args.method, network, rng=args.seed)
    print(network)
    print(solution)
    if not solution.feasible:
        print("infeasible; nothing to simulate")
        return 1
    result = simulate_solution(
        network, solution, trials=args.trials, rng=args.seed
    )
    low, high = result.confidence_interval()
    print(
        f"analytic rate (Eq.2): {result.analytic_rate:.6e}\n"
        f"empirical rate:       {result.empirical_rate:.6e} "
        f"(95% CI [{low:.3e}, {high:.3e}], {args.trials} trials)\n"
        f"consistent:           {'yes' if result.consistent else 'NO'}"
    )
    return 0 if result.consistent else 1


def _command_resilience(args: argparse.Namespace) -> int:
    from repro.resilience import (
        ExponentialBackoffPolicy,
        FaultInjector,
        FixedRetryPolicy,
        random_schedule,
    )
    from repro.sim.online import OnlineScheduler
    from repro.sim.workload import WorkloadSpec, generate_workload

    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        qubits_per_switch=args.qubits,
    )
    network = generate(args.topology, config, rng=args.seed)
    spec = WorkloadSpec(
        arrival_rate=args.arrival_rate,
        horizon=args.horizon,
        mean_hold=6.0,
        max_wait=5,
    )

    def one_run():
        requests = generate_workload(
            network.user_ids, spec, rng=args.seed + 1
        )
        schedule = random_schedule(
            network, args.faults, args.horizon, rng=args.seed + 2
        )
        injector = FaultInjector(schedule, network)
        if args.retry == "fixed":
            policy = FixedRetryPolicy(delay=1, max_attempts=8)
        elif args.retry == "backoff":
            policy = ExponentialBackoffPolicy(
                base_delay=1,
                factor=2.0,
                max_delay=8,
                max_attempts=8,
                jitter=0.25,
                rng=args.seed + 3,
            )
        else:
            policy = None
        scheduler = OnlineScheduler(
            network,
            method=args.method,
            rng=args.seed,
            fault_injector=injector,
            retry_policy=policy,
            allow_degradation=not args.no_degradation,
        )
        return scheduler.run(requests), requests

    result, requests = one_run()
    report = result.resilience
    print(network)
    print(
        f"workload: {len(requests)} requests over {args.horizon} slots, "
        f"{args.faults} faults scheduled"
    )
    print(
        f"acceptance: {result.n_accepted}/{len(result.outcomes)} "
        f"({result.acceptance_ratio:.1%}), {result.n_degraded} degraded"
    )
    print(report.render())
    overbooked = [
        s
        for s, peak in result.peak_qubit_usage.items()
        if peak > (network.qubits_of(s) or 0)
    ]
    print(f"capacity overbooked: {'YES ' + repr(overbooked) if overbooked else 'no'}")
    if overbooked:
        return 1
    if args.verify_determinism:
        second, _ = one_run()
        if second.resilience.to_dict() != report.to_dict():
            print("determinism check: FAILED (reports differ)")
            return 1
        print("determinism check: ok (identical reports)")
    return 0


def _command_admit(args: argparse.Namespace) -> int:
    """Overload demo: one hot workload, with and without admission."""
    import json

    from repro.admission import AdmissionController
    from repro.sim.online import OnlineScheduler
    from repro.sim.workload import WorkloadSpec, generate_workload

    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        qubits_per_switch=args.qubits,
    )
    network = generate(args.topology, config, rng=args.seed)
    spec = WorkloadSpec(
        arrival_rate=args.arrival_rate,
        horizon=args.horizon,
        mean_hold=6.0,
        max_wait=args.max_wait,
        n_tenants=args.tenants,
    )

    def one_run(with_admission: bool):
        requests = generate_workload(
            network.user_ids, spec, rng=args.seed + 1
        )
        admission = None
        if with_admission:
            admission = AdmissionController.default(
                network,
                rate=args.rate,
                burst=args.burst,
                bulkhead=args.bulkhead,
                queue_size=args.queue_size,
                shed_policy=args.shed_policy,
            )
        scheduler = OnlineScheduler(
            network,
            method=args.method,
            rng=args.seed,
            admission=admission,
        )
        return scheduler.run(requests), requests

    result, requests = one_run(with_admission=True)
    print(network)
    print(
        f"workload: {len(requests)} requests over {args.horizon} slots "
        f"({args.arrival_rate} req/slot, {args.tenants} tenant(s))"
    )
    print(
        f"acceptance: {result.n_accepted}/{len(result.outcomes)} "
        f"({result.acceptance_ratio:.1%}), "
        f"{result.n_degraded} degraded, {result.n_shed} shed"
    )
    print("admission stats:")
    print(json.dumps(result.admission, indent=2, sort_keys=True))

    # Safety gates the overload scenario must hold:
    overbooked = [
        s
        for s, peak in result.peak_qubit_usage.items()
        if peak > (network.qubits_of(s) or 0)
    ]
    print(
        "capacity overbooked: "
        f"{'YES ' + repr(overbooked) if overbooked else 'no'}"
    )
    report = result.resilience
    unattributed = [
        r.name for r in requests if r.name not in report.dispositions
    ]
    print(
        "unattributed requests: "
        f"{'YES ' + repr(unattributed) if unattributed else 'none'}"
    )
    if overbooked or unattributed:
        return EXIT_FAILURE

    if not args.no_baseline:
        baseline, _ = one_run(with_admission=False)
        print(
            f"baseline (no admission): {baseline.n_accepted}/"
            f"{len(baseline.outcomes)} accepted "
            f"({baseline.acceptance_ratio:.1%})"
        )
    if args.verify_determinism:
        second, _ = one_run(with_admission=True)
        same = (
            second.resilience.to_dict() == report.to_dict()
            and json.dumps(second.admission, sort_keys=True, default=repr)
            == json.dumps(result.admission, sort_keys=True, default=repr)
        )
        if not same:
            print("determinism check: FAILED (reports differ)")
            return EXIT_FAILURE
        print("determinism check: ok (identical shed decisions)")
    return EXIT_OK


def _command_serve(args: argparse.Namespace) -> int:
    """Multi-tenant demo: SLO-guarded serving over redundant trees."""
    import json

    from repro.resilience.faults import FaultInjector, random_schedule
    from repro.sim.workload import WorkloadSpec, generate_workload
    from repro.tenancy import ReplicationPolicy, serve_tenants

    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        qubits_per_switch=args.qubits,
    )
    network = generate(args.topology, config, rng=args.seed)
    spec = WorkloadSpec(
        arrival_rate=args.arrival_rate,
        horizon=args.horizon,
        mean_hold=6.0,
        max_wait=args.max_wait,
        n_tenants=args.tenants,
        tenant_skew=args.tenant_skew,
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period=args.diurnal_period,
    )

    def one_run():
        requests = generate_workload(
            network.user_ids, spec, rng=args.seed + 1
        )
        injector = None
        if args.faults > 0:
            schedule = random_schedule(
                network,
                n_faults=args.faults,
                horizon=args.horizon,
                rng=args.seed + 2,
            )
            injector = FaultInjector(schedule, network)
        served = serve_tenants(
            network,
            requests,
            method=args.method,
            rng=args.seed,
            replication=ReplicationPolicy(k=max(1, args.replicas)),
            fault_injector=injector,
            rate=args.rate,
            burst=args.burst,
            bulkhead=args.bulkhead,
            queue_size=args.queue_size,
        )
        return served, requests

    served, requests = one_run()
    summary = served.to_dict()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=repr))
    else:
        print(network)
        print(
            f"workload: {len(requests)} requests over {args.horizon} "
            f"slots ({args.arrival_rate} req/slot, {args.tenants} "
            f"tenant(s), skew {args.tenant_skew})"
        )
        print(served.render())

    # Safety gates the multi-tenant scenario must hold:
    overbooked = served.overbooked_switches(network)
    print(
        "capacity overbooked: "
        f"{'YES ' + repr(overbooked) if overbooked else 'no'}"
    )
    unattributed = served.unattributed()
    print(
        "unattributed requests: "
        f"{'YES ' + repr(unattributed) if unattributed else 'none'}"
    )
    if overbooked or unattributed:
        return EXIT_VERIFICATION_ERROR

    if args.verify_determinism:
        second, _ = one_run()
        same = json.dumps(
            second.to_dict(), sort_keys=True, default=repr
        ) == json.dumps(summary, sort_keys=True, default=repr)
        if not same:
            print("determinism check: FAILED (serving summaries differ)")
            return EXIT_FAILURE
        print("determinism check: ok (identical serving summaries)")
    return EXIT_OK


def _command_experiment(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.experiments.checkpoint import CheckpointStore, checkpointing

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return EXIT_VALIDATION_ERROR
    scope = nullcontext()
    if args.checkpoint:
        import os

        if not args.resume and os.path.exists(args.checkpoint):
            # A fresh (non-resume) run must not silently blend with a
            # previous run's records.
            os.unlink(args.checkpoint)
        store = CheckpointStore(args.checkpoint)
        if args.resume and len(store):
            print(f"resuming: {len(store)} trial(s) already checkpointed")
        scope = checkpointing(store)
    base = ExperimentConfig(n_networks=args.networks, seed=args.seed)
    engine = None
    engine_cm = nullcontext()
    engine_scope = nullcontext()
    if args.workers is not None:
        # Explicit --workers (including 1) routes through the execution
        # engine: N>1 shards trials over a process pool, N=1 runs the
        # serial backend; both enable channel caching unless --no-cache.
        # The engine itself is a context manager: leaving it joins the
        # worker pool, so no executor outlives the command.
        from repro.exec.engine import ExecutionEngine, executing

        engine_cm = engine = ExecutionEngine(
            workers=args.workers, use_cache=not args.no_cache
        )
        engine_scope = executing(engine)
    try:
        with scope, engine_cm, engine_scope:
            result = run_named(args.name, base)
    except KeyboardInterrupt:
        # Tell --resume users exactly what state was kept: checkpointed
        # trials resume for free, unflushed ones re-run.
        print()
        if engine is not None:
            print(f"interrupted: {engine.stats.describe()}", file=sys.stderr)
            if engine.stats.unflushed_trials:
                print(
                    f"unflushed trial(s) {engine.stats.unflushed_trials} "
                    "had no checkpoint on disk and will re-run on "
                    "--resume",
                    file=sys.stderr,
                )
        else:
            print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    if args.markdown:
        from repro.analysis import report
        from repro.experiments.sweeps import SweepResult
        from repro.experiments.fig7_edges import EdgeRemovalResult

        if isinstance(result, SweepResult):
            print(report.sweep_markdown(result, f"experiment {args.name}"))
        elif isinstance(result, EdgeRemovalResult):
            print(report.edge_removal_markdown(result, f"experiment {args.name}"))
        elif hasattr(result, "to_table"):
            print(result.to_table(title=f"experiment {args.name}").render())
        return 0
    if hasattr(result, "to_table"):
        print(result.to_table(title=f"experiment {args.name}").render())
    else:  # pragma: no cover - all catalogue entries render tables
        print(result)
    # Bonus: a terminal log-scale chart for single-point summaries.
    if hasattr(result, "results") and result.results:
        last = result.results[-1]
        chart = log_bar_chart(
            {o.display: o.mean_rate for o in last.outcomes},
            title=f"(last swept point: {result.parameter}={result.values[-1]})",
        )
        print()
        print(chart)
    return 0


def _command_exec(args: argparse.Namespace) -> int:
    import json
    import tempfile
    import time as _time
    from contextlib import ExitStack

    from repro.exec.engine import ExecutionEngine, executing, result_payload
    from repro.exec.shard import ShardPlan

    base = ExperimentConfig(n_networks=args.networks, seed=args.seed)
    plan = ShardPlan.build(args.networks, args.workers)
    print(f"experiment {args.name}: shard plan {plan.describe()}")

    chaos = None
    supervision = None
    if args.chaos:
        if args.workers < 2:
            print(
                "--chaos needs the process backend: use --workers >= 2",
                file=sys.stderr,
            )
            return EXIT_VALIDATION_ERROR
        from repro.exec.chaos import ChaosInjector
        from repro.exec.supervisor import SupervisionPolicy

        hang_timeout = (
            args.hang_timeout if args.hang_timeout is not None else 2.0
        )
        # Tight backoff so the soak exercises recovery, not sleep.
        supervision = SupervisionPolicy(
            hang_timeout_s=hang_timeout, backoff_unit_s=0.05
        )
        chaos = ChaosInjector(
            kills=args.chaos_kills,
            hangs=args.chaos_hangs,
            truncations=args.chaos_truncations,
            seed=args.chaos_seed,
            hang_sleep_s=max(30.0, hang_timeout * 10),
        )
        print(
            f"chaos soak: budget {args.chaos_kills} kill(s), "
            f"{args.chaos_hangs} hang(s), {args.chaos_truncations} "
            f"truncation(s); hang watchdog {hang_timeout}s"
        )
    elif args.hang_timeout is not None:
        from repro.exec.supervisor import SupervisionPolicy

        supervision = SupervisionPolicy(hang_timeout_s=args.hang_timeout)

    engine = ExecutionEngine(
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_size=args.cache_size,
        supervision=supervision,
        chaos=chaos,
    )
    started = _time.perf_counter()
    try:
        with ExitStack() as stack:
            if args.chaos and args.chaos_truncations > 0:
                # Truncation injection needs shard checkpoint files to
                # tear; give the soak an ephemeral store.
                from repro.experiments.checkpoint import (
                    CheckpointStore,
                    checkpointing,
                )

                chaos_dir = stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro-chaos-")
                )
                stack.enter_context(
                    checkpointing(
                        CheckpointStore(f"{chaos_dir}/chaos-soak.jsonl")
                    )
                )
            stack.enter_context(engine)
            stack.enter_context(executing(engine))
            result = run_named(args.name, base)
    except KeyboardInterrupt:
        print()
        print(f"interrupted: {engine.stats.describe()}", file=sys.stderr)
        if engine.stats.unflushed_trials:
            print(
                f"unflushed trial(s) {engine.stats.unflushed_trials} had "
                "no checkpoint on disk and will re-run on --resume",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    elapsed = _time.perf_counter() - started

    if hasattr(result, "to_table"):
        print(result.to_table(title=f"experiment {args.name}").render())
    print()
    print(f"wall time: {elapsed:.2f}s with {args.workers} worker(s)")
    print(f"engine: {engine.stats.describe()}")
    if not engine.report.clean or args.chaos:
        print(engine.report.render())
    if chaos is not None:
        print(chaos.summary())

    if args.verify_determinism:
        reference_engine = ExecutionEngine(workers=1, use_cache=False)
        with reference_engine, executing(reference_engine):
            reference = run_named(args.name, base)
        canonical = lambda r: json.dumps(  # noqa: E731
            result_payload(r), sort_keys=True
        )
        if canonical(result) != canonical(reference):
            print(
                "determinism check FAILED: parallel result diverges "
                "from the serial reference",
                file=sys.stderr,
            )
            return EXIT_VERIFICATION_ERROR
        print("determinism check: ok (byte-identical to serial run)")
    return EXIT_OK


def _command_incremental(args: argparse.Namespace) -> int:
    """Churn replay: incremental engine vs the from-scratch reference.

    The two modes run the same maintenance policy over the same seeded
    event stream (:func:`repro.sim.workload.generate_churn`); their
    aggregate digests must be byte-identical — a mismatch exits with
    ``EXIT_VERIFICATION_ERROR``, exactly like a failed solution audit.
    """
    from repro.exec import cache as exec_cache
    from repro.incremental import IncrementalRouter, tracking
    from repro.incremental.warmstart import WarmStartIndex
    from repro.sim.workload import ChurnSpec, generate_churn

    try:
        mix = tuple(float(w) for w in args.fault_mix.split(","))
        spec = ChurnSpec(n_faults=args.events, fault_mix=mix)
    except ValueError as exc:
        print(f"bad --fault-mix / --events: {exc}", file=sys.stderr)
        return EXIT_VALIDATION_ERROR
    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        qubits_per_switch=args.qubits,
    )

    def one_run(mode: str):
        network = generate(args.topology, config, rng=args.seed)
        users = tuple(sorted(network.user_ids, key=repr))
        events = generate_churn(network, spec, rng=args.seed + 1)
        if mode == "from_scratch":
            router = IncrementalRouter(
                network,
                users=users,
                method=args.method,
                seed=args.seed,
                mode=mode,
                radius=args.radius,
            )
            router.run(events)
            return router, None
        cache = exec_cache.ChannelCache()
        cache.warmstart = WarmStartIndex()
        with exec_cache.caching(cache), tracking(
            scope=args.scope, radius=args.radius
        ):
            router = IncrementalRouter(
                network,
                users=users,
                method=args.method,
                seed=args.seed,
                mode="incremental",
                radius=args.radius,
            )
            router.run(events)
        return router, cache

    inc, cache = one_run("incremental")
    print(
        f"incremental: {len(inc.outcomes)} events applied, "
        f"final tree {'feasible' if inc.solution.feasible else 'INFEASIBLE'} "
        f"({inc.solution.method})"
    )
    for name in sorted(inc.counters):
        print(f"  {name}: {inc.counters[name]}")
    if cache is not None:
        stats = cache.stats()
        print(
            f"  cache: {stats.hits} hits / {stats.misses} misses, "
            f"{stats.invalidations} invalidations "
            f"{stats.invalidations_by_cause}"
        )
        if cache.warmstart is not None:
            print(f"  warmstart: {cache.warmstart.stats()}")
    print(f"digest: {inc.digest()}")

    if not args.skip_baseline:
        ref, _ = one_run("from_scratch")
        if ref.digest() != inc.digest():
            print(
                "equivalence check: FAILED (incremental and from-scratch "
                "aggregates differ)"
            )
            return EXIT_VERIFICATION_ERROR
        print("equivalence check: ok (byte-identical aggregates)")
    if args.verify_determinism:
        again, _ = one_run("incremental")
        if again.digest() != inc.digest():
            print("determinism check: FAILED (replay digest differs)")
            return EXIT_VERIFICATION_ERROR
        print("determinism check: ok (identical replay)")
    return EXIT_OK


def _command_bounds(args: argparse.Namespace) -> int:
    """Certify one network and gap the requested solvers against it.

    Computes both the capacitated and the uncapacitated LP bound (the
    latter is what capacity-exempt methods are measured against), runs
    every ``--method`` plus the LP-rounding solver, and prints the gap
    table.  Any solver beating its certified bound exits with
    ``EXIT_VERIFICATION_ERROR`` — that is a library bug, never a
    legitimate outcome.  ``--verify-determinism`` re-solves relaxation
    and rounding and fails the same way unless byte-identical.
    """
    import dataclasses
    import json

    from repro.bounds.gap import SOUNDNESS_TOLERANCE, gap_percent
    from repro.bounds.lp import solve_relaxation
    from repro.bounds.rounding import solve_lp_rounding

    try:
        from repro.bounds.lp import _resolve_backend

        _resolve_backend(args.backend)
    except ImportError as exc:
        print(f"backend error: {exc}", file=sys.stderr)
        return EXIT_VALIDATION_ERROR

    config = TopologyConfig(
        n_switches=args.switches,
        n_users=args.users,
        avg_degree=args.degree,
        qubits_per_switch=args.qubits,
        swap_prob=args.swap_prob,
    )
    network = generate(args.topology, config, rng=args.seed)
    relaxation = solve_relaxation(network, backend=args.backend)
    uncap = solve_relaxation(
        network, backend=args.backend, capacitated=False
    )
    certificate = relaxation.certificate

    def _comparable(cert):
        return dataclasses.replace(cert, solve_seconds=0.0)

    if args.verify_determinism:
        again = solve_relaxation(network, backend=args.backend)
        rounded_a = solve_lp_rounding(
            network, rng=args.seed, backend=args.backend
        )
        rounded_b = solve_lp_rounding(
            network, rng=args.seed, backend=args.backend
        )
        if (
            _comparable(again.certificate) != _comparable(certificate)
            or again.columns != relaxation.columns
            or again.values != relaxation.values
        ):
            print("determinism check: FAILED (relaxation differs)")
            return EXIT_VERIFICATION_ERROR
        if (
            rounded_a.channels != rounded_b.channels
            or rounded_a.log_rate != rounded_b.log_rate
        ):
            print("determinism check: FAILED (rounding differs)")
            return EXIT_VERIFICATION_ERROR
        print("determinism check: ok (identical certificate and tree)")

    methods = tuple(args.method or ("conflict_free", "prim", "lp_rounding"))
    rows = []
    violations = 0
    for method in methods:
        solution = solve(method, network, rng=args.seed)
        bound = (
            uncap.certificate
            if method in CAPACITY_EXEMPT_METHODS
            else certificate
        )
        gap = gap_percent(solution.rate, bound)
        if gap < -100.0 * SOUNDNESS_TOLERANCE:
            violations += 1
        rows.append((method, solution.rate, bound.rate_bound, gap))

    if args.json:
        payload = {
            "certificate": {
                **dataclasses.asdict(certificate),
                "rate_bound": certificate.rate_bound,
                "switch_duals": {
                    repr(k): v
                    for k, v in certificate.switch_duals.items()
                },
            },
            "uncapacitated_rate_bound": uncap.certificate.rate_bound,
            "gaps": [
                {
                    "method": m,
                    "rate": r,
                    "bound": b,
                    "gap_percent": g,
                }
                for m, r, b, g in rows
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(network)
        print(
            f"LP bound: rate ≤ {certificate.rate_bound:.6e} "
            f"(log {certificate.log_bound:.6f}, backend "
            f"{certificate.backend}, {certificate.rounds} round(s), "
            f"{certificate.pivots} pivot(s), "
            f"{certificate.n_columns} column(s), "
            f"{'converged' if certificate.dual_feasible else 'early stop'})"
        )
        print(
            f"uncapacitated bound: rate ≤ "
            f"{uncap.certificate.rate_bound:.6e}"
        )
        for method, rate, bound_rate, gap in rows:
            print(
                f"  {method:<16} rate {rate:.6e}  gap {gap:6.2f}%"
                + ("  [uncapacitated bound]"
                   if method in CAPACITY_EXEMPT_METHODS else "")
            )
    if violations:
        print(
            f"soundness check: FAILED ({violations} method(s) beat "
            "their certified bound)",
            file=sys.stderr,
        )
        return EXIT_VERIFICATION_ERROR
    return EXIT_OK


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _command_list()
    if args.command == "exec":
        return _command_exec(args)
    if args.command == "solve":
        return _command_solve(args)
    if args.command == "obs":
        return _command_obs(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "montecarlo":
        return _command_montecarlo(args)
    if args.command == "resilience":
        return _command_resilience(args)
    if args.command == "admit":
        return _command_admit(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "incremental":
        return _command_incremental(args)
    if args.command == "bounds":
        return _command_bounds(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Failure classes map to distinct exit codes (module docstring):
    validation → 2, solver → 3, verification → 4.

    ``--metrics FILE`` / ``--trace FILE`` (global or per-subcommand)
    collect observability data around the whole command and write it
    on the way out; the informational notes go to stderr so stdout
    stays byte-identical to an uninstrumented run.
    """
    import repro.obs as obs
    from repro.verify.invariants import InvariantViolation

    args = build_parser().parse_args(argv)
    metrics_path = getattr(args, "metrics", None)
    metrics_format = getattr(args, "metrics_format", "json")
    trace_path = getattr(args, "trace", None)
    collect_metrics = bool(metrics_path) or args.command == "obs"
    registry = obs.enable() if collect_metrics else None
    tracer = obs.enable_tracer() if trace_path else None
    try:
        return _dispatch(args)
    except ValidationError as exc:
        print(f"validation error: {exc}", file=sys.stderr)
        return EXIT_VALIDATION_ERROR
    except (UnknownSolverError, SolveTimeout) as exc:
        print(f"solver error: {exc}", file=sys.stderr)
        return EXIT_SOLVER_ERROR
    except InvariantViolation as exc:
        print(f"verification error: {exc}", file=sys.stderr)
        return EXIT_VERIFICATION_ERROR
    finally:
        if registry is not None:
            obs.disable()
            if metrics_path:
                if metrics_format == "prom":
                    obs.write_metrics_prometheus(registry, metrics_path)
                else:
                    obs.write_metrics_json(registry, metrics_path)
                print(f"metrics written to {metrics_path}", file=sys.stderr)
        if tracer is not None:
            obs.disable_tracer()
            n_spans = obs.write_trace_jsonl(tracer, trace_path)
            print(
                f"{n_spans} span(s) written to {trace_path}",
                file=sys.stderr,
            )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
