"""Retry and timeout policies for entanglement attempts.

The paper's protocol re-attempts every slot forever (the geometric
``1/P`` expectation of Sec. II-C).  Real control planes bound that:
after a failed attempt they wait, back off, and eventually give up.
This module provides the policy family consulted by
:class:`repro.sim.engine.SlottedEntanglementSimulator` on failed
link/swap slots and by :class:`repro.sim.online.OnlineScheduler` when
pacing blocked requests:

* :class:`FixedRetryPolicy` — constant inter-retry delay, optional
  attempt cap;
* :class:`ExponentialBackoffPolicy` — delays grow geometrically up to a
  cap, with optional deterministic jitter drawn from
  :mod:`repro.utils.rng`;
* :class:`RetryBudget` / :class:`BudgetedRetryPolicy` — a shared,
  finite retry pool so a fleet of requests can never spend more than a
  configured total number of retries.

The contract is :meth:`RetryPolicy.next_delay`: given the number of
failures so far (1-based), return how many *extra* slots to wait before
the next attempt (0 = retry on the very next slot), or ``None`` to give
up.  Delays never exceed the policy's configured cap — a property the
test suite checks exhaustively.
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass
from typing import Optional

from repro.utils.rng import RngLike, ensure_rng

logger = logging.getLogger("repro.resilience.retry")


class RetryPolicy(abc.ABC):
    """Decides whether — and after how many slots — to retry."""

    @abc.abstractmethod
    def next_delay(self, attempt: int) -> Optional[int]:
        """Delay (in slots) before the retry following failure *attempt*.

        Args:
            attempt: Number of failed attempts so far (>= 1).

        Returns:
            Extra slots to wait (0 = retry next slot), or ``None`` when
            the policy is exhausted and the caller should give up.
        """

    def should_retry(self, attempt: int) -> bool:
        """Whether a retry is allowed after *attempt* failures."""
        return self.next_delay(attempt) is not None


@dataclass(frozen=True)
class FixedRetryPolicy(RetryPolicy):
    """Retry after a constant delay, at most ``max_attempts`` tries.

    Attributes:
        delay: Extra slots between attempts (>= 0).
        max_attempts: Total attempts allowed; ``None`` = unbounded.
    """

    delay: int = 0
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 when set")

    def next_delay(self, attempt: int) -> Optional[int]:
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if self.max_attempts is not None and attempt >= self.max_attempts:
            logger.debug(
                "fixed policy exhausted after %d attempts", attempt
            )
            return None
        return self.delay


class ExponentialBackoffPolicy(RetryPolicy):
    """Exponential backoff with a hard delay cap and optional jitter.

    The deterministic delay after the ``k``-th failure is
    ``min(max_delay, base_delay * factor**(k-1))``; jitter multiplies it
    by a uniform factor in ``[1 - jitter, 1 + jitter]`` drawn from the
    policy's own seeded generator (so two policies with the same seed
    produce identical delay sequences).  The returned delay is always an
    integer in ``[0, max_delay]`` — it never exceeds the cap, jitter or
    not.

    Args:
        base_delay: Delay after the first failure (>= 0 slots).
        factor: Geometric growth factor (>= 1).
        max_delay: Hard per-retry cap in slots (>= base_delay).
        max_attempts: Total attempts allowed; ``None`` = unbounded.
        jitter: Relative jitter amplitude in [0, 1).
        rng: Seed / generator for the jitter stream.
    """

    def __init__(
        self,
        base_delay: int = 1,
        factor: float = 2.0,
        max_delay: int = 64,
        max_attempts: Optional[int] = None,
        jitter: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        if base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {base_delay}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if max_delay < base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not (0.0 <= jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 when set")
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay
        self.max_attempts = max_attempts
        self.jitter = jitter
        self.rng = ensure_rng(rng)

    def next_delay(self, attempt: int) -> Optional[int]:
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if self.max_attempts is not None and attempt >= self.max_attempts:
            logger.debug(
                "backoff policy exhausted after %d attempts", attempt
            )
            return None
        delay = min(
            float(self.max_delay),
            self.base_delay * self.factor ** (attempt - 1),
        )
        if self.jitter > 0.0:
            spread = float(self.rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
            delay *= spread
        bounded = max(0, min(self.max_delay, int(round(delay))))
        logger.debug("backoff attempt %d -> delay %d", attempt, bounded)
        return bounded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExponentialBackoffPolicy(base={self.base_delay}, "
            f"factor={self.factor}, cap={self.max_delay}, "
            f"max_attempts={self.max_attempts}, jitter={self.jitter})"
        )


class RetryBudget:
    """A shared, finite pool of retries.

    Several policies (or several requests sharing one policy) can draw
    from the same budget; once drained no caller retries again.
    """

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ValueError(f"budget must be >= 0, got {total}")
        self.total = total
        self.spent = 0

    @property
    def remaining(self) -> int:
        return self.total - self.spent

    def try_spend(self) -> bool:
        """Consume one retry if available; report whether it was."""
        if self.spent >= self.total:
            return False
        self.spent += 1
        return True

    def reset(self) -> None:
        self.spent = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RetryBudget(spent={self.spent}/{self.total})"


class BudgetedRetryPolicy(RetryPolicy):
    """Wrap *inner* so total retries can never exceed *budget*.

    The wrapped policy is consulted first; if it would retry, one unit
    is drawn from the (possibly shared) budget.  When the budget is
    drained the policy reports exhaustion regardless of *inner*.
    """

    def __init__(self, inner: RetryPolicy, budget: RetryBudget) -> None:
        self.inner = inner
        self.budget = budget

    def next_delay(self, attempt: int) -> Optional[int]:
        delay = self.inner.next_delay(attempt)
        if delay is None:
            return None
        if not self.budget.try_spend():
            logger.debug(
                "retry budget drained (%d total); giving up", self.budget.total
            )
            return None
        return delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BudgetedRetryPolicy({self.inner!r}, {self.budget!r})"
