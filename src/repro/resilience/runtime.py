"""Controller-level resilient execution: plan, run, re-route, degrade.

:func:`execute_with_resilience` drives one request's whole lifecycle
against a live fault timeline: it executes the plan slot by slot with
the fault-aware :class:`~repro.sim.engine.SlottedEntanglementSimulator`,
and whenever a *permanent* injected fault kills a planned fiber or
switch (signalled by :class:`TransientFaultError`), it repairs the tree
incrementally, falls back to a full replan, and as a last resort
degrades to the largest user subset the surviving channels still span.
The whole history — faults, retries, re-routes, degradations — lands in
a deterministic :class:`ResilienceReport`.

This is what :meth:`repro.controller.EntanglementController.serve_resilient`
delegates to; the ``repro resilience`` CLI subcommand builds on the
online-scheduler variant in :mod:`repro.sim.online`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, List, Optional, Tuple

import repro.obs.metrics as obs_metrics
import repro.obs.trace as obs_trace
from repro.core.problem import MUERPSolution
from repro.extensions.recovery import repair_solution
from repro.network.errors import DeadlineExceededError, TransientFaultError
from repro.resilience.faults import FaultInjector
from repro.resilience.report import (
    ABANDONED,
    DEADLINE_EXCEEDED,
    DEGRADED,
    SERVED,
    SHED,
    RequestDisposition,
    ResilienceReport,
)
from repro.resilience.retry import RetryPolicy
from repro.sim.engine import SlottedEntanglementSimulator, SlottedRunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.admission.control import AdmissionController

logger = logging.getLogger("repro.resilience.runtime")


@dataclass(frozen=True)
class ResilientServiceReport:
    """Outcome of one fault-exposed request lifecycle.

    Attributes:
        solution: The initial (pre-fault) plan.
        final_solution: The plan in force when the run ended (repaired
            or degraded version of the initial one, or the initial plan
            itself).
        runs: Telemetry of every execution segment (one per re-route).
        report: The accumulated resilience telemetry.
        served_users: Users actually entangled (empty when abandoned).
    """

    solution: MUERPSolution
    final_solution: MUERPSolution
    runs: Tuple[SlottedRunResult, ...]
    report: ResilienceReport
    served_users: Tuple[Hashable, ...]

    @property
    def entangled(self) -> bool:
        return bool(self.runs) and self.runs[-1].succeeded

    @property
    def degraded(self) -> bool:
        return self.entangled and set(self.served_users) < set(
            self.solution.users
        )

    @property
    def windows_used(self) -> int:
        return sum(run.slots_used for run in self.runs)


def _degrade_to_subset(
    solution: MUERPSolution, kept_channels
) -> Optional[MUERPSolution]:
    """Largest-subset degraded tree from surviving channels (or None)."""
    from repro.sim.online import _largest_served_component

    subset = _largest_served_component(solution.users, kept_channels)
    if len(subset) < 2:
        return None
    members = set(subset)
    channels = tuple(
        c for c in kept_channels if c.endpoints[0] in members
    )
    return MUERPSolution(
        channels=channels,
        users=frozenset(subset),
        method=solution.method + "+degraded",
        feasible=True,
    )


def execute_with_resilience(
    controller,
    users: Optional[Iterable[Hashable]] = None,
    injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    max_slots: int = 100_000,
    deadline_slot: Optional[int] = None,
    request_name: str = "request",
    admission: Optional["AdmissionController"] = None,
) -> ResilientServiceReport:
    """Serve one request end to end under a fault timeline.

    Args:
        controller: An :class:`~repro.controller.EntanglementController`
            (duck-typed: needs ``plan``, ``absorb_failures``,
            ``network``, ``rng``).
        users: The user group to entangle (default: all users).
        injector: Fault timeline; ``None`` degenerates to plain serve.
        retry_policy: Per-slot retry pacing for the protocol engine.
        max_slots: Total slot budget across all re-route segments.
        deadline_slot: Absolute slot by which entanglement must be
            reached; blowing it abandons the request with a
            ``deadline-exceeded`` disposition.
        request_name: Id used in the report's disposition table.
        admission: Optional
            :class:`~repro.admission.AdmissionController` consulted
            before any planning work; a refused request is closed
            with a ``shed`` disposition and never touches the solver.
    """
    with obs_trace.span(
        "resilience.execute", request=request_name
    ) as lifecycle_span:
        result = _execute_with_resilience(
            controller,
            users=users,
            injector=injector,
            retry_policy=retry_policy,
            max_slots=max_slots,
            deadline_slot=deadline_slot,
            request_name=request_name,
            admission=admission,
        )
        if lifecycle_span is not None:
            disposition = result.report.dispositions.get(request_name)
            if disposition is not None:
                lifecycle_span.set_attr("status", disposition.status)
                lifecycle_span.set_attr("reroutes", disposition.reroutes)
                lifecycle_span.set_attr("retries", disposition.retries)
        return result


def _execute_with_resilience(
    controller,
    users: Optional[Iterable[Hashable]] = None,
    injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    max_slots: int = 100_000,
    deadline_slot: Optional[int] = None,
    request_name: str = "request",
    admission: Optional["AdmissionController"] = None,
) -> ResilientServiceReport:
    report = ResilienceReport()
    metrics = obs_metrics.active()
    if metrics is not None:
        metrics.inc("resilience.runtime.requests")
    if injector is not None:
        injector.reset()

    request = None
    if admission is not None:
        from repro.sim.online import EntanglementRequest

        group = (
            tuple(sorted(users, key=repr))
            if users is not None
            else tuple(sorted(controller.network.user_ids, key=repr))
        )
        request = EntanglementRequest(
            name=request_name,
            users=group,
            arrival=0,
            deadline=deadline_slot,
        )
        decision = admission.decide(request, 0)
        if not decision.admitted:
            # No queue to wait in for a one-shot lifecycle: any
            # non-admit verdict is a shed, fully attributed.
            if decision.action == "throttle":
                admission.count_shed(decision.policy or "throttle")
            report.close_request(
                RequestDisposition(
                    name=request_name,
                    status=SHED,
                    reason=(
                        f"refused by admission policy {decision.policy!r}"
                        + (
                            f": {decision.reason}"
                            if decision.reason
                            else ""
                        )
                    ),
                    slot=0,
                )
            )
            placeholder = MUERPSolution(
                channels=(),
                users=frozenset(group),
                method="unplanned",
                feasible=False,
            )
            return ResilientServiceReport(
                solution=placeholder,
                final_solution=placeholder,
                runs=(),
                report=report,
                served_users=(),
            )

    initial = controller.plan(users)
    if not initial.feasible:
        report.close_request(
            RequestDisposition(
                name=request_name,
                status=ABANDONED,
                reason="initial plan infeasible",
                slot=0,
            )
        )
        if admission is not None and request is not None:
            admission.on_closed(request, 0)
        return ResilientServiceReport(
            solution=initial,
            final_solution=initial,
            runs=(),
            report=report,
            served_users=(),
        )

    current = initial
    runs: List[SlottedRunResult] = []
    slot_offset = 0
    handled_fibers: set = set()
    handled_switches: set = set()
    reroutes_here = 0
    retries_here = 0
    faulted = False

    def _finish(status: str, reason: str) -> ResilientServiceReport:
        served: Tuple[Hashable, ...] = ()
        if status in (SERVED, DEGRADED):
            served = tuple(sorted(current.users, key=repr))
        if metrics is not None:
            metrics.inc(f"resilience.runtime.dispositions.{status}")
            metrics.inc("resilience.runtime.retries", retries_here)
            metrics.inc("resilience.runtime.reroutes", reroutes_here)
        report.close_request(
            RequestDisposition(
                name=request_name,
                status=status,
                reason=reason,
                slot=slot_offset,
                retries=retries_here,
                reroutes=reroutes_here,
                served_users=served,
            )
        )
        if status == SERVED and faulted:
            report.record_recovery(request_name)
        if admission is not None and request is not None:
            admission.on_closed(request, slot_offset)
        return ResilientServiceReport(
            solution=initial,
            final_solution=current,
            runs=tuple(runs),
            report=report,
            served_users=served,
        )

    while slot_offset < max_slots:
        simulator = SlottedEntanglementSimulator(
            controller.network,
            current,
            rng=controller.rng,
            retry_policy=retry_policy,
            fault_injector=injector,
            start_slot=slot_offset,
        )
        try:
            run = simulator.run(
                max_slots=max_slots - slot_offset,
                deadline_slot=deadline_slot,
            )
        except TransientFaultError as fault:
            faulted = True
            partial = fault.partial
            if partial is not None:
                runs.append(partial)
                slot_offset += partial.slots_used
                retries_here += partial.retries_spent
                report.record_retries(partial.retries_spent)
            if injector is not None:
                report.faults_injected = injector.faults_injected
                report.faults_repaired = injector.faults_repaired
            new_fibers = [
                f for f in fault.fibers if f not in handled_fibers
            ]
            new_switches = [
                s for s in fault.switches if s not in handled_switches
            ]
            handled_fibers.update(new_fibers)
            handled_switches.update(new_switches)
            for key in new_fibers:
                report.fault_log.append(
                    f"slot {slot_offset}: plan lost fiber {key!r}"
                )
            for switch in new_switches:
                report.fault_log.append(
                    f"slot {slot_offset}: plan lost switch {switch!r}"
                )
            rep = repair_solution(
                controller.network, current, new_fibers, new_switches
            )
            controller.absorb_failures(new_fibers, new_switches)
            if rep.repaired:
                current = rep.solution
                reroutes_here += 1
                report.record_reroute(
                    request_name,
                    f"slot {slot_offset}: incremental repair "
                    f"({len(rep.new_channels)} new channels)",
                )
                continue
            fresh = controller.plan(sorted(current.users, key=repr))
            if fresh.feasible:
                current = fresh
                reroutes_here += 1
                report.record_reroute(
                    request_name,
                    f"slot {slot_offset}: full replan after "
                    "unrepairable fault",
                )
                continue
            degraded = _degrade_to_subset(current, rep.kept_channels)
            if degraded is not None:
                current = degraded
                if metrics is not None:
                    metrics.inc("resilience.runtime.degradations")
                report.record_degradation(
                    request_name,
                    f"slot {slot_offset}: continuing with "
                    f"{len(degraded.users)} of {len(initial.users)} users",
                )
                continue
            return _finish(
                ABANDONED,
                f"fault at slot {slot_offset} unrepairable; no feasible "
                "replan or >=2-user subset",
            )
        except DeadlineExceededError as exc:
            partial = exc.partial
            if partial is not None:
                runs.append(partial)
                slot_offset += partial.slots_used
                retries_here += partial.retries_spent
                report.record_retries(partial.retries_spent)
            if injector is not None:
                report.faults_injected = injector.faults_injected
                report.faults_repaired = injector.faults_repaired
            return _finish(
                DEADLINE_EXCEEDED,
                f"deadline slot {exc.deadline} passed before entanglement",
            )

        runs.append(run)
        slot_offset += run.slots_used
        retries_here += run.retries_spent
        report.record_retries(run.retries_spent)
        if injector is not None:
            report.faults_injected = injector.faults_injected
            report.faults_repaired = injector.faults_repaired
        if run.succeeded:
            status = (
                DEGRADED
                if set(current.users) < set(initial.users)
                else SERVED
            )
            reason = (
                f"degraded to {len(current.users)}/{len(initial.users)} users"
                if status == DEGRADED
                else ""
            )
            return _finish(status, reason)
        if run.abort_reason == "retry-budget-exhausted":
            return _finish(
                ABANDONED,
                f"retry policy exhausted at slot {slot_offset}",
            )
        # max-slots within the segment: global budget is spent.
        break

    return _finish(
        ABANDONED, f"slot budget {max_slots} exhausted without entanglement"
    )
