"""Resilience telemetry: what failed, what was retried, who survived.

A :class:`ResilienceReport` is accumulated by the fault-aware layers
(:mod:`repro.sim.engine`, :mod:`repro.sim.online`,
:mod:`repro.resilience.runtime`) and surfaced through
:class:`repro.controller.EntanglementController` and the ``resilience``
CLI subcommand.  It answers the operator questions:

* how many faults fired, and how many auto-repaired;
* how many retries and re-routes the control plane spent;
* which requests were fully served, served degraded (a user subset),
  or abandoned — and *why* (every abandonment is attributable);
* determinism: two runs with the same seed produce equal reports
  (``report_a == report_b``), the property the chaos suite pins down.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

logger = logging.getLogger("repro.resilience.report")

#: Request dispositions (the terminal states of the resilient lifecycle).
SERVED = "served"
DEGRADED = "degraded"
ABANDONED = "abandoned"
REJECTED = "rejected"
DEADLINE_EXCEEDED = "deadline-exceeded"
#: Refused by admission control (limiter, shed policy, or brownout)
#: before any capacity was spent on it.
SHED = "shed"

DISPOSITIONS = (SERVED, DEGRADED, ABANDONED, REJECTED, DEADLINE_EXCEEDED, SHED)


@dataclass(frozen=True)
class RequestDisposition:
    """Terminal record for one request under the resilient runtime.

    Attributes:
        name: Request id.
        status: One of :data:`DISPOSITIONS`.
        reason: Human-readable attribution ("" for clean service).
        slot: Slot at which the terminal state was reached.
        retries: Retries spent on this request.
        reroutes: Successful mid-service re-routes.
        served_users: Users actually served (may be a strict subset of
            the requested group when degraded; empty when never served).
        tenant: Account label the disposition bills to ("" when the
            request carried no tenant tag).
        failovers: Replica promotions absorbed mid-service (k-redundant
            serving; 0 for unreplicated requests).
    """

    name: str
    status: str
    reason: str = ""
    slot: Optional[int] = None
    retries: int = 0
    reroutes: int = 0
    served_users: Tuple[Hashable, ...] = ()
    tenant: str = ""
    failovers: int = 0

    def __post_init__(self) -> None:
        if self.status not in DISPOSITIONS:
            raise ValueError(f"unknown disposition {self.status!r}")


@dataclass
class ResilienceReport:
    """Mutable accumulator for one resilient run's telemetry.

    Equality is field-wise, so two same-seed runs can be compared
    directly; ``to_dict()`` gives a stable serializable form.
    """

    faults_injected: int = 0
    faults_repaired: int = 0
    retries_spent: int = 0
    reroutes: int = 0
    failovers: int = 0
    degradations: int = 0
    recovered: int = 0
    abandoned: int = 0
    verifications: int = 0
    verification_failures: int = 0
    fault_log: List[str] = field(default_factory=list)
    dispositions: Dict[str, RequestDisposition] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_fault(self, description: str) -> None:
        self.faults_injected += 1
        self.fault_log.append(description)
        logger.debug("fault recorded: %s", description)

    def record_repairs(self, count: int = 1) -> None:
        self.faults_repaired += count

    def record_retries(self, count: int = 1) -> None:
        self.retries_spent += count

    def record_reroute(self, name: str, description: str = "") -> None:
        self.reroutes += 1
        if description:
            self.fault_log.append(f"reroute[{name}]: {description}")
        logger.info("request %s re-routed (%s)", name, description or "n/a")

    def record_failover(self, name: str, description: str = "") -> None:
        """A serving tree died and a hot standby was promoted in place."""
        self.failovers += 1
        if description:
            self.fault_log.append(f"failover[{name}]: {description}")
        logger.info(
            "request %s failed over (%s)", name, description or "n/a"
        )

    def record_degradation(self, name: str, description: str = "") -> None:
        self.degradations += 1
        if description:
            self.fault_log.append(f"degrade[{name}]: {description}")
        logger.info("request %s degraded (%s)", name, description or "n/a")

    def record_recovery(self, name: str) -> None:
        """A request that survived at least one fault to completion."""
        self.recovered += 1
        logger.info("request %s recovered", name)

    def record_verification(self, name: str, ok: bool, detail: str = "") -> None:
        """An independent solution-verifier check of a repaired tree."""
        self.verifications += 1
        if not ok:
            self.verification_failures += 1
            self.fault_log.append(
                f"verify[{name}]: REJECTED {detail}".rstrip()
            )
            logger.warning(
                "request %s: repaired solution failed verification (%s)",
                name,
                detail or "n/a",
            )

    def close_request(self, disposition: RequestDisposition) -> None:
        """Finalize one request's terminal state."""
        if disposition.name in self.dispositions:
            raise ValueError(
                f"request {disposition.name!r} already finalized"
            )
        self.dispositions[disposition.name] = disposition
        if disposition.status in (ABANDONED, DEADLINE_EXCEEDED):
            self.abandoned += 1
        if disposition.status in (ABANDONED, DEADLINE_EXCEEDED, SHED):
            if not disposition.reason:
                raise ValueError(
                    f"{disposition.status} request {disposition.name!r} "
                    "must carry a reason (attributability)"
                )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def disposition_of(self, name: str) -> RequestDisposition:
        try:
            return self.dispositions[name]
        except KeyError:
            raise KeyError(f"no disposition recorded for {name!r}") from None

    def count(self, status: str) -> int:
        return sum(
            1 for d in self.dispositions.values() if d.status == status
        )

    def tenant_rollup(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant disposition counts (tenant → status → count).

        Requests without a tenant tag roll up under ``""``; the result
        is sorted on both axes so it serializes deterministically.
        """
        rollup: Dict[str, Dict[str, int]] = {}
        for d in self.dispositions.values():
            bucket = rollup.setdefault(d.tenant, {})
            bucket[d.status] = bucket.get(d.status, 0) + 1
        return {
            tenant: dict(sorted(statuses.items()))
            for tenant, statuses in sorted(rollup.items())
        }

    def to_dict(self) -> Dict[str, object]:
        """Stable, serializable summary (sorted by request name)."""
        return {
            "faults_injected": self.faults_injected,
            "faults_repaired": self.faults_repaired,
            "retries_spent": self.retries_spent,
            "reroutes": self.reroutes,
            "failovers": self.failovers,
            "degradations": self.degradations,
            "recovered": self.recovered,
            "abandoned": self.abandoned,
            "verifications": self.verifications,
            "verification_failures": self.verification_failures,
            "fault_log": list(self.fault_log),
            "tenants": self.tenant_rollup(),
            "dispositions": {
                name: {
                    "status": d.status,
                    "reason": d.reason,
                    "slot": d.slot,
                    "retries": d.retries,
                    "reroutes": d.reroutes,
                    "served_users": sorted(d.served_users, key=repr),
                    "tenant": d.tenant,
                    "failovers": d.failovers,
                }
                for name, d in sorted(self.dispositions.items())
            },
        }

    def render(self) -> str:
        """A compact operator-facing text summary."""
        lines = [
            "resilience report",
            f"  faults injected : {self.faults_injected}"
            f" (repaired {self.faults_repaired})",
            f"  retries spent   : {self.retries_spent}",
            f"  re-routes       : {self.reroutes}",
            f"  failovers       : {self.failovers}",
            f"  degradations    : {self.degradations}",
            f"  recovered       : {self.recovered}",
            f"  abandoned       : {self.abandoned}",
            f"  verifications   : {self.verifications}"
            f" ({self.verification_failures} failed)",
        ]
        if self.dispositions:
            lines.append("  requests:")
            for name, d in sorted(self.dispositions.items()):
                detail = f" ({d.reason})" if d.reason else ""
                extras = []
                if d.reroutes:
                    extras.append(f"{d.reroutes} reroutes")
                if d.retries:
                    extras.append(f"{d.retries} retries")
                if d.status == DEGRADED:
                    extras.append(f"served {len(d.served_users)} users")
                suffix = f" [{', '.join(extras)}]" if extras else ""
                lines.append(f"    {name}: {d.status}{detail}{suffix}")
        return "\n".join(lines)
