"""Deterministic, seedable fault injection for the simulation stack.

The paper's robustness study (Fig. 7b) removes edges *before* routing.
An operational quantum Internet experiences faults *while* requests are
in flight; this module provides the runtime fault model consumed by
:mod:`repro.sim.engine` and :mod:`repro.sim.online`:

* :class:`FaultKind` — the fault taxonomy: permanent **fiber cuts**,
  permanently **dark switches**, **transient flaps** (a fiber drops and
  is repaired after ``k`` slots), and **decoherence storms** (a
  network-wide window in which every per-slot success probability is
  multiplied by ``1 - severity``);
* :class:`FaultEvent` / :class:`FaultSchedule` — declarative, validated
  descriptions of *what* fails *when*;
* :class:`FaultInjector` — the slot-driven state machine that fires and
  repairs scheduled faults and exposes the currently-failed element
  sets.  Driven by :meth:`FaultInjector.advance` with a monotone slot
  clock, it is bit-for-bit deterministic: two injectors over the same
  schedule report identical histories.

Random schedules for chaos testing come from :func:`random_schedule`,
which is reproducible from one seed via :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import repro.obs.metrics as obs_metrics
from repro.network.errors import FaultScheduleError
from repro.network.graph import QuantumNetwork
from repro.network.link import fiber_key
from repro.utils.rng import RngLike, ensure_rng

logger = logging.getLogger("repro.resilience.faults")


class FaultKind(str, Enum):
    """The supported fault classes."""

    FIBER_CUT = "fiber-cut"
    SWITCH_DARK = "switch-dark"
    TRANSIENT_FLAP = "transient-flap"
    DECOHERENCE_STORM = "decoherence-storm"


#: Kinds whose target is a fiber endpoint pair.
_FIBER_KINDS = (FaultKind.FIBER_CUT, FaultKind.TRANSIENT_FLAP)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        slot: Slot index at which the fault fires (>= 0).
        kind: The fault class.
        target: Fiber endpoint pair for fiber kinds, switch id for
            ``SWITCH_DARK``, ``None`` for network-wide storms.
        duration: Slots until auto-repair; ``None`` means permanent.
            Transient flaps and storms *must* be bounded.
        severity: Storm strength in (0, 1]: per-slot success
            probabilities are multiplied by ``1 - severity``.
    """

    slot: int
    kind: FaultKind
    target: Optional[Hashable] = None
    duration: Optional[int] = None
    severity: float = 0.0

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise FaultScheduleError(f"fault slot must be >= 0, got {self.slot}")
        if self.duration is not None and self.duration < 1:
            raise FaultScheduleError(
                f"fault duration must be >= 1 slot, got {self.duration}"
            )
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if kind in _FIBER_KINDS:
            if (
                not isinstance(self.target, tuple)
                or len(self.target) != 2
            ):
                raise FaultScheduleError(
                    f"{kind.value} needs a (u, v) fiber target, "
                    f"got {self.target!r}"
                )
            object.__setattr__(self, "target", fiber_key(*self.target))
        elif kind is FaultKind.SWITCH_DARK:
            if self.target is None:
                raise FaultScheduleError("switch-dark needs a switch target")
        else:  # DECOHERENCE_STORM
            if self.target is not None:
                raise FaultScheduleError(
                    "decoherence-storm is network-wide; target must be None"
                )
            if not (0.0 < self.severity <= 1.0):
                raise FaultScheduleError(
                    f"storm severity must be in (0, 1], got {self.severity}"
                )
        if kind in (FaultKind.TRANSIENT_FLAP, FaultKind.DECOHERENCE_STORM):
            if self.duration is None:
                raise FaultScheduleError(
                    f"{kind.value} must carry a repair duration"
                )

    @property
    def permanent(self) -> bool:
        """Whether this fault never auto-repairs."""
        return self.duration is None

    @property
    def repair_slot(self) -> Optional[int]:
        """First slot at which the fault is repaired (None = never)."""
        if self.duration is None:
            return None
        return self.slot + self.duration

    def describe(self) -> str:
        """A stable one-line description (used in resilience logs)."""
        life = "permanent" if self.permanent else f"for {self.duration} slots"
        if self.kind is FaultKind.DECOHERENCE_STORM:
            return (
                f"slot {self.slot}: decoherence storm "
                f"(severity {self.severity:g}) {life}"
            )
        return f"slot {self.slot}: {self.kind.value} {self.target!r} {life}"

    def to_spec(self) -> Dict[str, object]:
        """Declarative dict form (inverse of :meth:`FaultSchedule.from_specs`)."""
        spec: Dict[str, object] = {"slot": self.slot, "kind": self.kind.value}
        if self.target is not None:
            spec["target"] = self.target
        if self.duration is not None:
            spec["duration"] = self.duration
        if self.kind is FaultKind.DECOHERENCE_STORM:
            spec["severity"] = self.severity
        return spec


class FaultSchedule:
    """An ordered, validated collection of :class:`FaultEvent`.

    Events are kept sorted by (slot, insertion order) so injector
    behavior is independent of construction order.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        indexed = list(enumerate(events))
        for _, event in indexed:
            if not isinstance(event, FaultEvent):
                raise FaultScheduleError(
                    f"schedule entries must be FaultEvent, got {event!r}"
                )
        indexed.sort(key=lambda pair: (pair[1].slot, pair[0]))
        self._events: Tuple[FaultEvent, ...] = tuple(e for _, e in indexed)

    @classmethod
    def from_specs(
        cls, specs: Iterable[Mapping[str, object]]
    ) -> "FaultSchedule":
        """Build a schedule from declarative dicts.

        Each spec needs ``slot`` and ``kind`` plus the kind's fields,
        e.g. ``{"slot": 3, "kind": "transient-flap", "target": ("a", "s0"),
        "duration": 4}``.
        """
        events = []
        for spec in specs:
            unknown = set(spec) - {"slot", "kind", "target", "duration", "severity"}
            if unknown:
                raise FaultScheduleError(
                    f"unknown fault spec fields: {sorted(unknown)}"
                )
            try:
                kind = FaultKind(spec["kind"])
            except (KeyError, ValueError) as exc:
                raise FaultScheduleError(f"bad fault kind in {spec!r}") from exc
            if "slot" not in spec:
                raise FaultScheduleError(f"fault spec missing slot: {spec!r}")
            target = spec.get("target")
            if kind in _FIBER_KINDS and target is not None:
                target = tuple(target)  # allow lists from JSON/YAML
            events.append(
                FaultEvent(
                    slot=int(spec["slot"]),
                    kind=kind,
                    target=target,
                    duration=(
                        None
                        if spec.get("duration") is None
                        else int(spec["duration"])
                    ),
                    severity=float(spec.get("severity", 0.0)),
                )
            )
        return cls(events)

    def to_specs(self) -> List[Dict[str, object]]:
        """Round-trippable declarative form."""
        return [event.to_spec() for event in self._events]

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._events == other._events

    @property
    def last_slot(self) -> int:
        """Latest slot at which schedule state can still change."""
        last = 0
        for event in self._events:
            last = max(last, event.slot)
            if event.repair_slot is not None:
                last = max(last, event.repair_slot)
        return last

    def validate_against(self, network: QuantumNetwork) -> None:
        """Check every fault targets something that exists in *network*.

        Raises:
            FaultScheduleError: On a missing fiber or non-switch target.
        """
        for event in self._events:
            if event.kind in _FIBER_KINDS:
                u, v = event.target  # type: ignore[misc]
                if not network.has_fiber(u, v):
                    raise FaultScheduleError(
                        f"fault targets missing fiber {u!r}-{v!r}"
                    )
            elif event.kind is FaultKind.SWITCH_DARK:
                if (
                    event.target not in network
                    or not network.is_switch(event.target)
                ):
                    raise FaultScheduleError(
                        f"fault targets non-switch {event.target!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({len(self._events)} events, last_slot={self.last_slot})"


class FaultInjector:
    """Slot-driven fault state machine over one :class:`FaultSchedule`.

    Usage: call :meth:`advance` once per slot with a non-decreasing slot
    index; it fires due faults, repairs expired ones, and returns the
    newly-fired events.  The ``active_*`` views then describe the world
    the simulators must respect for that slot.

    Args:
        schedule: What fails when.
        network: Optional network to validate targets against
            (recommended — catches typo'd fault specs up front).
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        network: Optional[QuantumNetwork] = None,
    ) -> None:
        if network is not None:
            schedule.validate_against(network)
        self.schedule = schedule
        self._network = network
        self.reset()

    def reset(self) -> None:
        """Return to the pre-slot-0 state (reusable across runs)."""
        self._cursor = 0
        self._clock: Optional[int] = None
        self._active: List[FaultEvent] = []
        self.faults_injected = 0
        self.faults_repaired = 0

    def clone(self) -> "FaultInjector":
        """A fresh injector over the same schedule (for repeat runs)."""
        return FaultInjector(self.schedule, self._network)

    def advance(self, slot: int) -> List[FaultEvent]:
        """Move the clock to *slot*; fire and repair due faults.

        Returns the events that fired at or before *slot* since the
        last call, in schedule order.

        Raises:
            ValueError: When called with a slot earlier than the clock.
        """
        if self._clock is not None and slot < self._clock:
            raise ValueError(
                f"injector clock cannot rewind: {slot} < {self._clock}"
            )
        self._clock = slot
        injected_before = self.faults_injected
        repaired_before = self.faults_repaired
        # Repair expired transients first so a flap of duration k is
        # down for exactly k slots.
        structural_change = False
        repaired_structural: List[FaultEvent] = []
        still_active = []
        for event in self._active:
            repair = event.repair_slot
            if repair is not None and repair <= slot:
                self.faults_repaired += 1
                if event.kind is not FaultKind.DECOHERENCE_STORM:
                    structural_change = True
                    repaired_structural.append(event)
                logger.info("slot %d: repaired %s", slot, event.describe())
            else:
                still_active.append(event)
        self._active = still_active

        fired: List[FaultEvent] = []
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].slot <= slot:
            event = events[self._cursor]
            self._cursor += 1
            self.faults_injected += 1
            fired.append(event)
            repair = event.repair_slot
            if repair is None or repair > slot:
                self._active.append(event)
            else:  # fired and already expired within the jump
                self.faults_repaired += 1
            logger.info("slot %d: injected %s", slot, event.describe())
        metrics = obs_metrics.active()
        if metrics is not None:
            if self.faults_injected > injected_before:
                metrics.inc(
                    "resilience.faults.injected",
                    self.faults_injected - injected_before,
                )
                for event in fired:
                    metrics.inc(f"resilience.faults.kind.{event.kind.value}")
            if self.faults_repaired > repaired_before:
                metrics.inc(
                    "resilience.faults.repaired",
                    self.faults_repaired - repaired_before,
                )
        structural_change = structural_change or any(
            e.kind is not FaultKind.DECOHERENCE_STORM for e in fired
        )
        if structural_change:
            self._notify_structural(fired, repaired_structural, slot)
        return fired

    def _notify_structural(
        self,
        fired: Sequence[FaultEvent],
        repaired: Sequence[FaultEvent],
        slot: int,
    ) -> None:
        """Tell the incremental layer which elements changed this slot.

        With an active :class:`~repro.incremental.delta.DeltaBus`, each
        structural fire/repair becomes one typed delta event — region
        hygiene then evicts only cache entries near the element instead
        of the whole fingerprint generation.  Without a bus, fall back
        to the legacy fingerprint-wide invalidation.
        """
        from repro.incremental import delta as incremental_delta

        bus = incremental_delta.active()
        if bus is None:
            self._invalidate_channel_cache()
            return
        from repro.incremental.events import DeltaEvent

        fingerprint = (
            self._network.fingerprint(scope="routing")
            if self._network is not None
            else None
        )
        deltas: List[DeltaEvent] = []
        for event in fired:
            if event.kind in _FIBER_KINDS:
                deltas.append(DeltaEvent.fiber_cut(*event.target, slot=slot))
            elif event.kind is FaultKind.SWITCH_DARK:
                deltas.append(DeltaEvent.switch_dark(event.target, slot=slot))
        for event in repaired:
            if event.kind in _FIBER_KINDS:
                deltas.append(
                    DeltaEvent.fiber_restore(*event.target, slot=slot)
                )
            elif event.kind is FaultKind.SWITCH_DARK:
                deltas.append(
                    DeltaEvent.switch_recover(event.target, slot=slot)
                )
        for delta_event in deltas:
            bus.publish(
                delta_event, network=self._network, fingerprint=fingerprint
            )

    def _invalidate_channel_cache(self) -> None:
        """Drop channel-cache entries outdated by a structural fault.

        Re-planning around a cut fiber or dark switch searches a
        *damaged copy* of the topology whose own fingerprint differs, so
        correctness never depends on this hook — but cached searches
        over the intact topology stop being useful the moment the
        physical network diverges from it, so they are evicted eagerly
        (and counted as ``repro.exec.cache.invalidations``).
        """
        from repro.exec import cache as exec_cache

        cache = exec_cache.active()
        if cache is None:
            return
        if self._network is not None:
            cache.invalidate_graph(self._network.fingerprint(scope="routing"))
        else:
            cache.invalidate_all()

    # ------------------------------------------------------------------
    # Active-fault views
    # ------------------------------------------------------------------
    @property
    def active_faults(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._active)

    @property
    def active_fiber_cuts(self) -> Set[Tuple[Hashable, Hashable]]:
        """Canonical fiber keys currently unusable (cuts + flaps)."""
        return {
            e.target  # type: ignore[misc]
            for e in self._active
            if e.kind in _FIBER_KINDS
        }

    @property
    def active_dark_switches(self) -> Set[Hashable]:
        return {
            e.target for e in self._active if e.kind is FaultKind.SWITCH_DARK
        }

    @property
    def permanent_fiber_cuts(self) -> Set[Tuple[Hashable, Hashable]]:
        """Active fiber faults that will never auto-repair."""
        return {
            e.target  # type: ignore[misc]
            for e in self._active
            if e.kind in _FIBER_KINDS and e.permanent
        }

    @property
    def permanent_dark_switches(self) -> Set[Hashable]:
        return {
            e.target
            for e in self._active
            if e.kind is FaultKind.SWITCH_DARK and e.permanent
        }

    @property
    def success_multiplier(self) -> float:
        """Product of ``1 - severity`` over active decoherence storms.

        Simulators multiply every per-slot link/swap success probability
        by this factor (1.0 when no storm is active).
        """
        factor = 1.0
        for event in self._active:
            if event.kind is FaultKind.DECOHERENCE_STORM:
                factor *= 1.0 - event.severity
        return factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(clock={self._clock}, active={len(self._active)}, "
            f"injected={self.faults_injected}, repaired={self.faults_repaired})"
        )


def random_schedule(
    network: QuantumNetwork,
    n_faults: int,
    horizon: int,
    rng: RngLike = None,
    kinds: Sequence[FaultKind] = (
        FaultKind.FIBER_CUT,
        FaultKind.SWITCH_DARK,
        FaultKind.TRANSIENT_FLAP,
        FaultKind.DECOHERENCE_STORM,
    ),
    mean_duration: float = 4.0,
    storm_severity: float = 0.5,
) -> FaultSchedule:
    """Draw a reproducible random fault schedule for chaos testing.

    Fault slots are uniform on ``[1, horizon]``, fiber targets uniform
    over the network's fibers, switch targets uniform over switches, and
    transient durations geometric with the given mean.  Deterministic
    under a fixed seed.

    Args:
        network: Topology the faults will hit (targets drawn from it).
        n_faults: Number of fault events to schedule.
        horizon: Latest slot at which a fault may fire.
        rng: Seed / generator for reproducibility.
        kinds: Fault classes to draw from (uniformly).
        mean_duration: Mean of the geometric repair time for transients
            and storms.
        storm_severity: Severity assigned to decoherence storms.
    """
    if n_faults < 0:
        raise ValueError("n_faults must be >= 0")
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    generator = ensure_rng(rng)
    fibers = network.fibers
    switches = network.switch_ids
    usable_kinds = [
        k
        for k in kinds
        if not (k in _FIBER_KINDS and not fibers)
        and not (k is FaultKind.SWITCH_DARK and not switches)
    ]
    if not usable_kinds:
        raise ValueError("no usable fault kinds for this network")

    events: List[FaultEvent] = []
    for _ in range(n_faults):
        kind = usable_kinds[int(generator.integers(0, len(usable_kinds)))]
        slot = int(generator.integers(1, horizon + 1))
        duration = int(generator.geometric(1.0 / max(mean_duration, 1.0)))
        if kind is FaultKind.FIBER_CUT:
            fiber = fibers[int(generator.integers(0, len(fibers)))]
            events.append(FaultEvent(slot, kind, (fiber.u, fiber.v)))
        elif kind is FaultKind.SWITCH_DARK:
            switch = switches[int(generator.integers(0, len(switches)))]
            events.append(FaultEvent(slot, kind, switch))
        elif kind is FaultKind.TRANSIENT_FLAP:
            fiber = fibers[int(generator.integers(0, len(fibers)))]
            events.append(
                FaultEvent(slot, kind, (fiber.u, fiber.v), duration=duration)
            )
        else:
            events.append(
                FaultEvent(
                    slot,
                    kind,
                    duration=duration,
                    severity=storm_severity,
                )
            )
    schedule = FaultSchedule(events)
    logger.debug(
        "random_schedule: %d faults over horizon %d (%s)",
        n_faults,
        horizon,
        ", ".join(k.value for k in usable_kinds),
    )
    return schedule
