"""Resilience runtime: fault injection, retry policies, degradation.

The paper studies robustness as a *pre-routing* perturbation (Fig. 7b:
remove edges, re-solve).  This package makes fault handling a runtime
concern across the whole simulation stack:

* :mod:`repro.resilience.faults` — deterministic, seedable fault
  injection (fiber cuts, dark switches, transient flaps, decoherence
  storms) from declarative schedules;
* :mod:`repro.resilience.retry` — retry/timeout policies (fixed,
  exponential backoff with jitter, shared budgets) consulted by the
  slotted engine and the online scheduler instead of blind per-slot
  re-attempts;
* :mod:`repro.resilience.report` — the :class:`ResilienceReport`
  telemetry every fault-aware run accumulates (deterministic under a
  fixed seed);
* :mod:`repro.resilience.runtime` — controller-level lifecycle: execute,
  re-route on permanent faults, degrade to the largest servable user
  subset, abandon only with attribution.

See ``docs/RESILIENCE.md`` for the fault model and semantics.
"""

from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    random_schedule,
)
from repro.resilience.report import (
    ABANDONED,
    DEADLINE_EXCEEDED,
    DEGRADED,
    DISPOSITIONS,
    REJECTED,
    SERVED,
    SHED,
    RequestDisposition,
    ResilienceReport,
)
from repro.resilience.retry import (
    BudgetedRetryPolicy,
    ExponentialBackoffPolicy,
    FixedRetryPolicy,
    RetryBudget,
    RetryPolicy,
)
from repro.resilience.runtime import (
    ResilientServiceReport,
    execute_with_resilience,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "random_schedule",
    "ResilienceReport",
    "RequestDisposition",
    "DISPOSITIONS",
    "SERVED",
    "DEGRADED",
    "ABANDONED",
    "REJECTED",
    "DEADLINE_EXCEEDED",
    "SHED",
    "RetryPolicy",
    "FixedRetryPolicy",
    "ExponentialBackoffPolicy",
    "RetryBudget",
    "BudgetedRetryPolicy",
    "ResilientServiceReport",
    "execute_with_resilience",
]
