"""repro — Multi-user Entanglement Routing over Quantum Internets.

A full reproduction of *"Multi-user Entanglement Routing Design over
Quantum Internets"* (Zeng et al., ICDCS 2024): the MUERP problem model,
Algorithms 1-4, the E-Q-CAST and N-FUSION baselines, the paper's entire
simulation study (Figs. 5-8), a verifying quantum-state substrate, a
Monte-Carlo/discrete-event protocol simulator, and the paper's stated
extensions (fidelity-aware routing, concurrent multi-group routing).

Quickstart::

    from repro import TopologyConfig, generate, solve

    network = generate("waxman", TopologyConfig(), rng=42)
    solution = solve("conflict_free", network)
    print(solution.rate, [c.path for c in solution.channels])
"""

import logging as _logging

# Library logging convention: every module logs under the "repro.*"
# hierarchy; applications opt in by configuring handlers/levels on it.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.network import (
    NetworkBuilder,
    NetworkParams,
    OpticalFiber,
    QuantumNetwork,
    QuantumSwitch,
    QuantumUser,
    network_from_networkx,
)
from repro.topology import (
    TopologyConfig,
    generate,
    grid_network,
    ring_network,
    volchenkov_network,
    watts_strogatz_network,
    waxman_network,
)
from repro.core import (
    Channel,
    MUERPSolution,
    best_channels_from,
    brute_force_optimal,
    channel_rate,
    dijkstra,
    find_best_channel,
    improve_solution,
    k_best_channels,
    solve_conflict_free,
    solve_optimal,
    solve_prim,
    trace_path,
    validate_solution,
)
import repro.baselines  # noqa: F401 - populate the solver registry
from repro.baselines import solve_eqcast, solve_nfusion, solve_random_tree
from repro.core.ledger import CapacityError, CapacityLedger
from repro.core.registry import (
    SOLVERS,
    RobustSolveResult,
    SolveAudit,
    SolveTimeout,
    UnknownSolverError,
    solve,
    solve_robust,
)
from repro.verify import (
    InvariantViolation,
    SolutionVerifier,
    VerificationCertificate,
    VerificationError,
    verify_solution,
)
from repro.sim import (
    MonteCarloResult,
    SlottedEntanglementSimulator,
    simulate_solution,
)
from repro.extensions import (
    FidelityModel,
    GroupRequest,
    apply_failures,
    repair_solution,
    route_groups,
    solve_fidelity_prim,
)
from repro.topology import real_world_network
from repro.network import topology_stats
from repro.experiments import ExperimentConfig, run_experiment, run_named
import repro.obs as obs  # noqa: F401 - observability subsystem
from repro.obs import MetricsRegistry, Tracer
from repro.controller import EntanglementController, PlanningError, ServiceReport
from repro.resilience import (
    BudgetedRetryPolicy,
    ExponentialBackoffPolicy,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FixedRetryPolicy,
    ResilienceReport,
    ResilientServiceReport,
    RetryBudget,
    RetryPolicy,
    random_schedule,
)
import repro.exec as exec_  # noqa: F401 - parallel execution subsystem
from repro.exec import ChannelCache, ExecutionEngine, ShardPlan, caching
from repro.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionQueue,
    BrownoutController,
    ConcurrencyLimiter,
    HedgePolicy,
    PolicyChain,
    TokenBucketLimiter,
)
from repro.bounds import (
    BoundCertificate,
    GapAggregate,
    LPRelaxationResult,
    aggregate_gaps,
    compute_bound,
    optimality_gap,
    solve_lp_rounding,
    solve_relaxation,
)

__version__ = "1.0.0"

__all__ = [
    "NetworkBuilder",
    "NetworkParams",
    "OpticalFiber",
    "QuantumNetwork",
    "QuantumSwitch",
    "QuantumUser",
    "network_from_networkx",
    "TopologyConfig",
    "generate",
    "grid_network",
    "ring_network",
    "volchenkov_network",
    "watts_strogatz_network",
    "waxman_network",
    "Channel",
    "MUERPSolution",
    "best_channels_from",
    "brute_force_optimal",
    "channel_rate",
    "dijkstra",
    "trace_path",
    "find_best_channel",
    "solve_conflict_free",
    "solve_optimal",
    "solve_prim",
    "validate_solution",
    "solve_eqcast",
    "solve_nfusion",
    "solve_random_tree",
    "SOLVERS",
    "solve",
    "solve_robust",
    "RobustSolveResult",
    "SolveAudit",
    "SolveTimeout",
    "UnknownSolverError",
    "CapacityError",
    "CapacityLedger",
    "InvariantViolation",
    "SolutionVerifier",
    "VerificationCertificate",
    "VerificationError",
    "verify_solution",
    "MonteCarloResult",
    "SlottedEntanglementSimulator",
    "simulate_solution",
    "FidelityModel",
    "GroupRequest",
    "apply_failures",
    "repair_solution",
    "route_groups",
    "solve_fidelity_prim",
    "improve_solution",
    "k_best_channels",
    "real_world_network",
    "topology_stats",
    "ExperimentConfig",
    "run_experiment",
    "run_named",
    "EntanglementController",
    "PlanningError",
    "ServiceReport",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "random_schedule",
    "ResilienceReport",
    "ResilientServiceReport",
    "RetryPolicy",
    "FixedRetryPolicy",
    "ExponentialBackoffPolicy",
    "RetryBudget",
    "BudgetedRetryPolicy",
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionQueue",
    "BrownoutController",
    "ConcurrencyLimiter",
    "HedgePolicy",
    "PolicyChain",
    "TokenBucketLimiter",
    "obs",
    "MetricsRegistry",
    "Tracer",
    "ChannelCache",
    "ExecutionEngine",
    "ShardPlan",
    "caching",
    "BoundCertificate",
    "GapAggregate",
    "LPRelaxationResult",
    "aggregate_gaps",
    "compute_bound",
    "optimality_gap",
    "solve_lp_rounding",
    "solve_relaxation",
    "__version__",
]
