"""Structured invariant violations raised by the solution verifier.

Every violation is a typed exception carrying a machine-readable diff:
which invariant broke, on which subject (a switch, a channel path, the
tree as a whole), what was expected and what was actually observed.
``to_dict()`` serializes the diff for audits, logs and CLI output.

The class hierarchy lets callers catch at the granularity they need:

* :class:`InvariantViolation` — any verifier failure;
* :class:`SpanningViolation` / :class:`CycleViolation` /
  :class:`ChannelCountViolation` — tree-structure invariants;
* :class:`CapacityViolation` — a switch over its qubit budget ``Q_r``;
* :class:`RateViolation` — a claimed rate inconsistent with Eq. 1/2;
* :class:`PathViolation` — a channel path that does not exist in the
  raw fiber graph (missing fiber, non-switch intermediate, non-user
  endpoint);
* :class:`UserSetViolation` — the solution's user set differs from the
  requested one.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


class InvariantViolation(AssertionError):
    """A verified MUERP invariant does not hold for a solution.

    Attributes:
        code: Stable machine-readable identifier of the invariant.
        subject: What the violation is about (switch id, channel path,
            ``"tree"``, …); repr-able.
        expected: The value the invariant requires.
        actual: The value independently recomputed from the raw graph.
        detail: Optional free-form human context.
    """

    code: str = "invariant"

    def __init__(
        self,
        message: str,
        *,
        subject: Any = None,
        expected: Any = None,
        actual: Any = None,
        detail: str = "",
    ) -> None:
        super().__init__(message)
        self.subject = subject
        self.expected = expected
        self.actual = actual
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable diff of the violated invariant."""
        return {
            "code": self.code,
            "message": str(self),
            "subject": repr(self.subject),
            "expected": repr(self.expected),
            "actual": repr(self.actual),
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({str(self)!r})"


class SpanningViolation(InvariantViolation):
    """The channel set does not connect every user transitively."""

    code = "spanning"


class CycleViolation(InvariantViolation):
    """A channel closes a cycle in the user-level tree."""

    code = "cycle"


class ChannelCountViolation(InvariantViolation):
    """A spanning tree over ``U`` needs exactly ``|U| - 1`` channels."""

    code = "channel-count"


class CapacityViolation(InvariantViolation):
    """A switch carries more than its qubit budget ``Q_r`` (Def. 3)."""

    code = "capacity"


class RateViolation(InvariantViolation):
    """A claimed rate disagrees with the Eq. 1/2 recomputation."""

    code = "rate"


class PathViolation(InvariantViolation):
    """A channel path is not realizable in the raw fiber graph."""

    code = "path"


class UserSetViolation(InvariantViolation):
    """The solution serves a different user set than requested."""

    code = "user-set"


class VerificationError(InvariantViolation):
    """Aggregate of several violations found in one verification pass.

    Raised by :meth:`SolutionVerifier.verify` when more than one
    invariant fails; ``violations`` holds the individual typed
    exceptions in discovery order.
    """

    code = "multiple"

    def __init__(self, violations: Tuple[InvariantViolation, ...]) -> None:
        codes = ", ".join(v.code for v in violations)
        super().__init__(
            f"{len(violations)} invariant violations: {codes}",
            subject="solution",
        )
        self.violations = violations

    def to_dict(self) -> Dict[str, Any]:
        base = super().to_dict()
        base["violations"] = [v.to_dict() for v in self.violations]
        return base
