"""Independent trust-but-verify checking of MUERP solutions.

Any solver (including third-party ones registered at runtime) can claim
a solution; :class:`SolutionVerifier` re-derives every invariant **from
the raw network graph**, never trusting the solver's own bookkeeping:

1. *Path integrity* — every channel path exists fiber-by-fiber, starts
   and ends at quantum users, and transits only switches.
2. *Rate honesty* — each channel's recorded ``log_rate`` matches an
   independent Eq. (1) recomputation ``-α·ΣL + (l-1)·ln q`` from the
   fiber lengths, and the tree's claimed rate matches the Eq. (2)
   product of the recomputed channel rates.
3. *Tree structure* — exactly ``|U| - 1`` channels, acyclic at the user
   level, spanning the full user set.
4. *Capacity* — per-switch qubit usage (2 per transit channel, Def. 3)
   never exceeds the switch budget ``Q_r`` read from the graph.

Violations raise the typed exceptions of
:mod:`repro.verify.invariants`, each carrying a machine-readable diff.
A clean pass returns a :class:`VerificationCertificate` with the
recomputed quantities, so downstream layers can log *what* was checked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.utils.unionfind import UnionFind
from repro.verify.invariants import (
    CapacityViolation,
    ChannelCountViolation,
    CycleViolation,
    InvariantViolation,
    PathViolation,
    RateViolation,
    SpanningViolation,
    UserSetViolation,
    VerificationError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import Channel, MUERPSolution
    from repro.network.graph import QuantumNetwork

#: Qubits a switch spends per transit channel (Def. 3 of the paper).
QUBITS_PER_TRANSIT = 2


@dataclass(frozen=True)
class VerificationCertificate:
    """Proof-of-verification: the independently recomputed quantities.

    Attributes:
        method: The solver name recorded on the solution.
        feasible: Whether the solution claims feasibility.
        n_channels: Number of channels in the tree.
        log_rate: Recomputed Eq. (2) log-rate (``-inf`` if infeasible).
        switch_usage: Recomputed per-switch qubit consumption.
        checks: Names of the invariant checks that ran and passed.
    """

    method: str
    feasible: bool
    n_channels: int
    log_rate: float
    switch_usage: Dict[Hashable, int] = field(default_factory=dict)
    checks: Tuple[str, ...] = ()

    @property
    def rate(self) -> float:
        """Recomputed entanglement rate in linear space."""
        if not self.feasible:
            return 0.0
        return math.exp(self.log_rate)


class SolutionVerifier:
    """Independent auditor for any solver's :class:`MUERPSolution`.

    Args:
        rate_tolerance: Relative/absolute tolerance for comparing the
            claimed log-rates against the Eq. 1/2 recomputation.
        enforce_capacity: Check per-switch usage against ``Q_r``.
            Disable for Algorithm 2, whose model assumes the
            sufficient-capacity condition ``Q_r ≥ 2|U|`` (Theorem 3).
    """

    def __init__(
        self,
        rate_tolerance: float = 1e-9,
        enforce_capacity: bool = True,
    ) -> None:
        self.rate_tolerance = rate_tolerance
        self.enforce_capacity = enforce_capacity

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def verify(
        self,
        network: "QuantumNetwork",
        solution: "MUERPSolution",
        users: Optional[Iterable[Hashable]] = None,
        enforce_capacity: Optional[bool] = None,
    ) -> VerificationCertificate:
        """Verify *solution* against *network*; raise on any violation.

        A single failed invariant raises its typed
        :class:`InvariantViolation`; several failures raise a
        :class:`VerificationError` aggregating them.  A clean pass
        returns the :class:`VerificationCertificate`.
        """
        violations, certificate = self._run(
            network, solution, users, enforce_capacity
        )
        if len(violations) == 1:
            raise violations[0]
        if violations:
            raise VerificationError(tuple(violations))
        return certificate

    def audit(
        self,
        network: "QuantumNetwork",
        solution: "MUERPSolution",
        users: Optional[Iterable[Hashable]] = None,
        enforce_capacity: Optional[bool] = None,
    ) -> Tuple[InvariantViolation, ...]:
        """Collect every violation without raising (empty = valid)."""
        violations, _ = self._run(network, solution, users, enforce_capacity)
        return tuple(violations)

    def is_valid(
        self,
        network: "QuantumNetwork",
        solution: "MUERPSolution",
        users: Optional[Iterable[Hashable]] = None,
    ) -> bool:
        """Convenience wrapper: ``True`` when no invariant is violated."""
        return not self.audit(network, solution, users)

    # ------------------------------------------------------------------
    # Invariant checks (all recomputed from the raw graph)
    # ------------------------------------------------------------------
    def _run(
        self,
        network: "QuantumNetwork",
        solution: "MUERPSolution",
        users: Optional[Iterable[Hashable]],
        enforce_capacity: Optional[bool],
    ) -> Tuple[List[InvariantViolation], VerificationCertificate]:
        check_capacity = (
            self.enforce_capacity
            if enforce_capacity is None
            else enforce_capacity
        )
        violations: List[InvariantViolation] = []
        checks: List[str] = []

        expected_users = (
            frozenset(users) if users is not None else solution.users
        )
        if solution.users != expected_users:
            violations.append(
                UserSetViolation(
                    "solution serves a different user set than requested",
                    subject="users",
                    expected=sorted(expected_users, key=repr),
                    actual=sorted(solution.users, key=repr),
                )
            )
        checks.append("user-set")

        if not solution.feasible:
            if solution.channels:
                violations.append(
                    ChannelCountViolation(
                        "an infeasible solution must carry no channels",
                        subject="tree",
                        expected=0,
                        actual=len(solution.channels),
                    )
                )
            certificate = VerificationCertificate(
                method=solution.method,
                feasible=False,
                n_channels=0,
                log_rate=-math.inf,
                checks=tuple(checks),
            )
            return violations, certificate

        recomputed_logs: List[float] = []
        usage: Dict[Hashable, int] = {}
        for channel in solution.channels:
            log_rate = self._check_channel(network, channel, violations)
            if log_rate is not None:
                recomputed_logs.append(log_rate)
            for switch in channel.switches:
                usage[switch] = usage.get(switch, 0) + QUBITS_PER_TRANSIT
        checks.extend(("path-integrity", "channel-rates"))

        self._check_tree_structure(solution, violations)
        checks.extend(("channel-count", "acyclicity", "spanning"))

        if check_capacity:
            self._check_capacity(network, usage, violations)
            checks.append("capacity")

        recomputed_tree = math.fsum(recomputed_logs)
        if solution.extra_log_rate > 0.0:
            violations.append(
                RateViolation(
                    "extra_log_rate is a log-probability and must be <= 0, "
                    f"got {solution.extra_log_rate}",
                    subject="tree",
                    expected="<= 0",
                    actual=solution.extra_log_rate,
                )
            )
        elif len(recomputed_logs) == len(solution.channels):
            claimed = solution.log_rate
            expected = recomputed_tree + solution.extra_log_rate
            if not math.isclose(
                expected,
                claimed,
                rel_tol=self.rate_tolerance,
                abs_tol=self.rate_tolerance,
            ):
                violations.append(
                    RateViolation(
                        f"claimed tree log-rate {claimed} != Eq. (2) "
                        f"recomputation {expected}",
                        subject="tree",
                        expected=expected,
                        actual=claimed,
                    )
                )
        checks.append("tree-rate")

        certificate = VerificationCertificate(
            method=solution.method,
            feasible=True,
            n_channels=len(solution.channels),
            log_rate=recomputed_tree + min(solution.extra_log_rate, 0.0),
            switch_usage=usage,
            checks=tuple(checks),
        )
        return violations, certificate

    def _check_channel(
        self,
        network: "QuantumNetwork",
        channel: "Channel",
        violations: List[InvariantViolation],
    ) -> Optional[float]:
        """Validate one channel path; return its recomputed log-rate.

        Returns ``None`` when the path itself is broken (no rate can be
        recomputed for a non-existent channel).
        """
        path = channel.path
        for endpoint in (path[0], path[-1]):
            if endpoint not in network or not network.is_user(endpoint):
                violations.append(
                    PathViolation(
                        f"channel endpoint {endpoint!r} is not a quantum "
                        "user of the network",
                        subject=path,
                        expected="quantum user",
                        actual=endpoint,
                    )
                )
                return None
        for node in path[1:-1]:
            if node not in network or not network.is_switch(node):
                violations.append(
                    PathViolation(
                        f"channel intermediate {node!r} is not a switch",
                        subject=path,
                        expected="quantum switch",
                        actual=node,
                    )
                )
                return None

        # Independent Eq. (1) recomputation straight from the fibers:
        # P_Λ = q^{l-1} · exp(-α ΣL)  ⇒  ln P_Λ = (l-1)·ln q - α·ΣL.
        lengths: List[float] = []
        for u, v in zip(path, path[1:]):
            fiber = network.fiber_between(u, v)
            if fiber is None:
                violations.append(
                    PathViolation(
                        f"no fiber between {u!r} and {v!r} on channel path",
                        subject=path,
                        expected="fiber",
                        actual=None,
                        detail=f"segment {u!r}-{v!r}",
                    )
                )
                return None
            lengths.append(fiber.length)

        alpha = network.params.alpha
        swap_prob = network.params.swap_prob
        n_swaps = len(lengths) - 1
        log_links = -alpha * math.fsum(lengths)
        if n_swaps == 0:
            expected = log_links
        elif swap_prob <= 0.0:
            expected = -math.inf
        else:
            expected = log_links + n_swaps * math.log(swap_prob)

        if not math.isclose(
            expected,
            channel.log_rate,
            rel_tol=self.rate_tolerance,
            abs_tol=self.rate_tolerance,
        ):
            violations.append(
                RateViolation(
                    f"channel {path} claims log-rate {channel.log_rate} "
                    f"but Eq. (1) recomputes {expected}",
                    subject=path,
                    expected=expected,
                    actual=channel.log_rate,
                )
            )
        return expected

    def _check_tree_structure(
        self,
        solution: "MUERPSolution",
        violations: List[InvariantViolation],
    ) -> None:
        users = solution.users
        if len(solution.channels) != len(users) - 1:
            violations.append(
                ChannelCountViolation(
                    f"a spanning tree over {len(users)} users needs "
                    f"{len(users) - 1} channels, got "
                    f"{len(solution.channels)}",
                    subject="tree",
                    expected=len(users) - 1,
                    actual=len(solution.channels),
                )
            )
        unions = UnionFind(users)
        foreign = False
        for channel in solution.channels:
            a, b = channel.endpoints
            if a not in users or b not in users:
                violations.append(
                    SpanningViolation(
                        f"channel endpoints {a!r}-{b!r} fall outside the "
                        "user set",
                        subject=channel.path,
                        expected=sorted(users, key=repr),
                        actual=(a, b),
                    )
                )
                foreign = True
                continue
            if not unions.union(a, b):
                violations.append(
                    CycleViolation(
                        f"channel {channel.path} closes a cycle in the "
                        "user-level tree",
                        subject=channel.path,
                        expected="acyclic",
                        actual="cycle",
                    )
                )
        if unions.n_components != 1 and not foreign:
            components = sorted(
                (sorted(g, key=repr) for g in unions.groups()), key=repr
            )
            violations.append(
                SpanningViolation(
                    f"channels leave the users in {unions.n_components} "
                    "components",
                    subject="tree",
                    expected=1,
                    actual=unions.n_components,
                    detail=f"components: {components!r}",
                )
            )

    def _check_capacity(
        self,
        network: "QuantumNetwork",
        usage: Dict[Hashable, int],
        violations: List[InvariantViolation],
    ) -> None:
        for switch in sorted(usage, key=repr):
            used = usage[switch]
            budget = network.qubits_of(switch)
            if budget is None:
                violations.append(
                    PathViolation(
                        f"transit node {switch!r} is not a switch",
                        subject=switch,
                        expected="quantum switch",
                        actual=switch,
                    )
                )
            elif used > budget:
                violations.append(
                    CapacityViolation(
                        f"switch {switch!r} uses {used} qubits, over its "
                        f"budget Q_r = {budget}",
                        subject=switch,
                        expected=budget,
                        actual=used,
                    )
                )


def verify_solution(
    network: "QuantumNetwork",
    solution: "MUERPSolution",
    users: Optional[Iterable[Hashable]] = None,
    enforce_capacity: bool = True,
    rate_tolerance: float = 1e-9,
) -> VerificationCertificate:
    """Functional one-shot form of :meth:`SolutionVerifier.verify`."""
    return SolutionVerifier(
        rate_tolerance=rate_tolerance, enforce_capacity=enforce_capacity
    ).verify(network, solution, users=users)
