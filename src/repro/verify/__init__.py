"""Trust-but-verify auditing of solver output.

The solvers in :mod:`repro.core` each do their own bookkeeping; this
package re-checks their claims independently from the raw network graph
(spanning-tree structure, switch capacity, Eq. 1/2 rate honesty) and
raises structured, machine-readable
:class:`~repro.verify.invariants.InvariantViolation` errors when a
claim does not hold.  See ``docs/VERIFICATION.md``.
"""

from repro.verify.invariants import (
    CapacityViolation,
    ChannelCountViolation,
    CycleViolation,
    InvariantViolation,
    PathViolation,
    RateViolation,
    SpanningViolation,
    UserSetViolation,
    VerificationError,
)
from repro.verify.verifier import (
    QUBITS_PER_TRANSIT,
    SolutionVerifier,
    VerificationCertificate,
    verify_solution,
)

__all__ = [
    "CapacityViolation",
    "ChannelCountViolation",
    "CycleViolation",
    "InvariantViolation",
    "PathViolation",
    "RateViolation",
    "SpanningViolation",
    "UserSetViolation",
    "VerificationError",
    "QUBITS_PER_TRANSIT",
    "SolutionVerifier",
    "VerificationCertificate",
    "verify_solution",
]
