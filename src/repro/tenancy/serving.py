"""The multi-tenant serving facade: one call, the whole SLO stack.

:func:`serve_tenants` wires together everything the tenancy layer
adds — per-tenant SLO contracts, weighted-fair admission, k-redundant
trees with mid-service failover — around the resilient
:class:`~repro.sim.online.OnlineScheduler`, and returns a
:class:`TenantServingResult` whose per-tenant table answers the
operator questions: who got served, who absorbed the shed, did anyone
blow their error budget, and how fair was the outcome (Jain index).

The ``repro serve`` CLI subcommand and the 100x multi-tenant soak
benchmark are thin shells over this function, so they exercise exactly
the code path a library user gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.admission.control import AdmissionController
from repro.admission.queue import WEIGHTED_FAIR
from repro.sim.online import EntanglementRequest, OnlineResult, OnlineScheduler
from repro.tenancy.replicas import ReplicationPolicy
from repro.tenancy.slo import SLORegistry, TenantSLO, tenant_label
from repro.utils.rng import RngLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import QuantumNetwork
    from repro.resilience.faults import FaultInjector
    from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class TenantServingResult:
    """One multi-tenant run: scheduler telemetry + the SLO account book."""

    result: OnlineResult
    registry: SLORegistry

    @property
    def outcomes(self):
        return self.result.outcomes

    def jain_index(self) -> float:
        return self.registry.jain_index()

    def tenant_table(self) -> Dict[str, Dict[str, object]]:
        return self.registry.table()

    def failovers(self) -> int:
        return sum(o.failovers for o in self.result.outcomes)

    def overbooked_switches(
        self, network: "QuantumNetwork"
    ) -> List[object]:
        """Switches whose peak usage exceeded their budget (must be [])."""
        return [
            switch
            for switch, peak in sorted(
                self.result.peak_qubit_usage.items(), key=repr
            )
            if peak > (network.qubits_of(switch) or 0)
        ]

    def unattributed(self) -> List[str]:
        """Requests without exactly one disposition (must be [])."""
        report = self.result.resilience
        if report is None:
            return [o.request.name for o in self.result.outcomes]
        names = {o.request.name for o in self.result.outcomes}
        recorded = set(report.dispositions)
        return sorted(names.symmetric_difference(recorded))

    def to_dict(self) -> Dict[str, object]:
        """Deterministic serializable summary (the soak artifact core)."""
        out: Dict[str, object] = {
            "n_requests": len(self.result.outcomes),
            "n_accepted": self.result.n_accepted,
            "n_degraded": self.result.n_degraded,
            "n_shed": self.result.n_shed,
            "acceptance_ratio": round(self.result.acceptance_ratio, 6),
            "failovers": self.failovers(),
            "jain_index": round(self.jain_index(), 6),
            "tenants": self.tenant_table(),
        }
        if self.result.resilience is not None:
            out["resilience"] = self.result.resilience.to_dict()
        if self.result.admission is not None:
            out["admission"] = self.result.admission
        return out

    def render(self) -> str:
        """Operator-facing per-tenant SLO table."""
        lines = [
            "tenant serving report",
            f"  requests : {len(self.result.outcomes)}"
            f" (accepted {self.result.n_accepted},"
            f" shed {self.result.n_shed})",
            f"  failovers: {self.failovers()}",
            f"  jain     : {self.jain_index():.4f}",
            "  tenants:",
        ]
        header = (
            f"    {'tenant':<16} {'w':>4} {'arr':>5} {'served':>6} "
            f"{'shed':>5} {'shed%':>6} {'budget':>7} {'slo':>4}"
        )
        lines.append(header)
        for tenant, row in self.tenant_table().items():
            lines.append(
                f"    {tenant:<16} {row['weight']:>4.1f} "
                f"{row['arrivals']:>5} "
                f"{row['served'] + row['degraded']:>6} "
                f"{row['shed']:>5} "
                f"{100 * row['shed_fraction']:>5.1f}% "
                f"{row['error_budget_remaining']:>7.3f} "
                f"{'ok' if row['slo_met'] else 'MISS':>4}"
            )
        return "\n".join(lines)


def default_slos(
    tenants: Iterable[str],
    weights: Optional[Dict[str, float]] = None,
    guaranteed_rate: float = 0.25,
    max_shed_fraction: float = 0.5,
) -> List[TenantSLO]:
    """Uniform contracts over *tenants*, with optional weight overrides."""
    weights = weights or {}
    return [
        TenantSLO(
            tenant=tenant,
            weight=weights.get(tenant, 1.0),
            guaranteed_rate=guaranteed_rate,
            max_shed_fraction=max_shed_fraction,
        )
        for tenant in sorted(set(tenants))
    ]


def serve_tenants(
    network: "QuantumNetwork",
    requests: Sequence[EntanglementRequest],
    slos: Optional[Iterable[TenantSLO]] = None,
    method: str = "prim",
    rng: RngLike = None,
    replication: Optional[ReplicationPolicy] = None,
    fault_injector: Optional["FaultInjector"] = None,
    retry_policy: Optional["RetryPolicy"] = None,
    admission: Optional[AdmissionController] = None,
    rate: float = 1.0,
    burst: float = 4.0,
    bulkhead: int = 32,
    queue_size: int = 16,
) -> TenantServingResult:
    """Serve *requests* with the full multi-tenant SLO stack.

    When *admission* is omitted, a weighted-fair stack is built from
    *rate*/*burst*/*bulkhead*/*queue_size*; when *slos* is omitted,
    every tenant observed in *requests* gets the default contract.
    A supplied *admission* controller must carry an
    :class:`~repro.tenancy.slo.SLORegistry` (``admission.slo``); the
    registry in play is always returned inside the result.
    """
    if admission is not None and admission.slo is None:
        raise ValueError(
            "serve_tenants needs an SLO registry on the admission "
            "controller (pass AdmissionController(..., slo=...))"
        )
    if admission is None:
        if slos is None:
            slos = default_slos(tenant_label(r) for r in requests)
        registry = SLORegistry(slos)
        admission = AdmissionController.default(
            network,
            rate=rate,
            burst=burst,
            bulkhead=bulkhead,
            queue_size=queue_size,
            shed_policy=WEIGHTED_FAIR,
            slo=registry,
        )
    registry = admission.slo
    if replication is None:
        replication = ReplicationPolicy(k=2)
    scheduler = OnlineScheduler(
        network,
        method=method,
        rng=rng,
        fault_injector=fault_injector,
        retry_policy=retry_policy,
        admission=admission,
        replication=replication,
    )
    result = scheduler.run(requests)
    return TenantServingResult(result=result, registry=registry)
