"""Weighted-fair victim selection and the Jain fairness index.

The admission queue's ``weighted-fair`` shed policy delegates here.
Two rules produce the fairness guarantees the tenancy suite pins down:

* **Anti-starvation** — when the eviction pool contains entries from
  both compliant and non-compliant tenants (per
  :meth:`~repro.tenancy.slo.SLORegistry.within_guarantee`), the victim
  always comes from a non-compliant tenant.  A tenant that stays
  within its contracted rate is only ever shed against other compliant
  tenants, i.e. when *everyone* is over-subscribed.
* **Weighted pain spreading** — among eligible tenants, the one with
  the lowest ``shed_fraction × weight`` absorbs the next shed, which
  equalizes that product across tenants: a weight-2 tenant converges
  to half the shed fraction of a weight-1 tenant.

All tie-breaks are total orders (tenant label, then arrival sequence),
so same-seed runs shed identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.tenancy.slo import SLORegistry, tenant_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.admission.queue import QueueEntry


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)`` over *values*.

    1.0 when all values are equal (or the sequence is empty/all-zero —
    vacuous fairness), approaching ``1/n`` as one value dominates.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(xs) * squares)


def _by_tenant(
    pool: Sequence["QueueEntry"],
) -> Dict[str, List["QueueEntry"]]:
    grouped: Dict[str, List["QueueEntry"]] = {}
    for entry in pool:
        grouped.setdefault(tenant_label(entry.request), []).append(entry)
    return grouped


def pick_weighted_fair_victim(
    pool: Sequence["QueueEntry"],
    registry: SLORegistry,
    slot: int,
) -> "QueueEntry":
    """The entry to shed from *pool* (queued entries + newcomer).

    Victim tenant = the *eligible* tenant with the least weighted pain
    (ties break on the tenant label); within that tenant, the newest
    entry goes first (its sunk queue time is smallest).  Eligible means
    non-compliant when any non-compliant tenant is present — the
    anti-starvation rule — otherwise every tenant in the pool.
    """
    if not pool:
        raise ValueError("cannot pick a victim from an empty pool")
    grouped = _by_tenant(pool)
    noncompliant = sorted(
        t for t in grouped if not registry.within_guarantee(t, slot)
    )
    eligible = noncompliant or sorted(grouped)
    victim_tenant = min(
        eligible, key=lambda t: (registry.weighted_pain(t), t)
    )
    return max(grouped[victim_tenant], key=lambda e: e.seq)


def weighted_fair_drain_order(
    entries: Sequence["QueueEntry"],
    registry: SLORegistry,
) -> List["QueueEntry"]:
    """Dequeue priority: most weighted pain absorbed drains first.

    Tenants that have already shed more than their share get their
    queued work admitted first (restitution); within a tenant, FIFO.
    """
    return sorted(
        entries,
        key=lambda e: (
            -registry.weighted_pain(tenant_label(e.request)),
            tenant_label(e.request),
            e.seq,
        ),
    )
