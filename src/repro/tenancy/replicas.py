"""k-redundant tree planning and mid-service failover.

One admitted group is served by up to *k* trees at once — a serving
primary plus hot standbys — all reserved through the shared
:class:`~repro.core.ledger.CapacityLedger` in a single transaction (no
partial replica sets can leak qubits).  Standbys prefer fiber-disjoint
routes (planned on a view with the prior replicas' fibers removed, the
multi-tree construction of Yang et al., arXiv:2408.06207) and fall
back to overlapping routes when disjointness is infeasible.

Failover is the cheap rung below the incremental repair ladder
(:func:`repro.extensions.recovery.repair_solution`): a fault that
breaks only some replicas promotes a surviving standby *in place* —
no re-solve, no degradation — and the structural ladder is invoked
only once every replica is dead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.ledger import CapacityLedger
from repro.core.problem import MUERPSolution
from repro.extensions.recovery import apply_failures
from repro.extensions.redundancy import RedundantTree, add_redundancy
from repro.network.graph import QuantumNetwork
from repro.network.link import fiber_key
from repro.sim.online import _solution_broken

#: Failover events a replica set can report for one fault signature.
INTACT = "intact"  #: no replica touched
PRUNED = "pruned"  #: standby(s) died; the serving tree is fine
FAILOVER = "failover"  #: serving tree died; a standby was promoted
EXHAUSTED = "exhausted"  #: every replica died; escalate to repair


@dataclass(frozen=True)
class ReplicationPolicy:
    """How many trees to serve each group with, and how to place them.

    Attributes:
        k: Target replica count (1 = no redundancy; the serving layer
            then behaves exactly like the plain scheduler).
        prefer_disjoint: Plan each standby on a view with the prior
            replicas' fibers removed, so one fiber cut cannot kill two
            replicas.
        allow_overlap: When a disjoint standby is infeasible, accept an
            overlapping route instead of going without (best effort).
        edge_backups: Additionally spend leftover capacity on per-edge
            backup channels for the primary tree
            (:func:`repro.extensions.redundancy.add_redundancy`).
        max_edge_backups: Backup-channel cap when *edge_backups* is on.
    """

    k: int = 2
    prefer_disjoint: bool = True
    allow_overlap: bool = True
    edge_backups: bool = False
    max_edge_backups: int = 2

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.max_edge_backups < 0:
            raise ValueError("max_edge_backups must be >= 0")


@dataclass
class ReplicaSet:
    """The live replica state of one in-service reservation.

    ``usages[0]`` covers the primary tree *plus* any edge-backup
    channels grafted onto it, so releasing a replica's usage entry
    always returns exactly the qubits it pinned.
    """

    replicas: List[MUERPSolution]
    usages: List[Dict[Hashable, int]]
    redundant: Optional[RedundantTree] = None
    serving: int = 0
    failovers: int = 0
    shortfall: int = 0  #: replicas requested but not plannable

    @property
    def k(self) -> int:
        return len(self.replicas)

    @property
    def serving_solution(self) -> MUERPSolution:
        return self.replicas[self.serving]

    @property
    def serving_usage(self) -> Dict[Hashable, int]:
        return self.usages[self.serving]

    @property
    def standby_count(self) -> int:
        return len(self.replicas) - 1

    def total_usage(self) -> Dict[Hashable, int]:
        usage: Dict[Hashable, int] = {}
        for entry in self.usages:
            for switch, qubits in entry.items():
                usage[switch] = usage.get(switch, 0) + qubits
        return usage

    def broken_indices(
        self,
        cuts: Set[Tuple[Hashable, Hashable]],
        darks: Set[Hashable],
    ) -> List[int]:
        return [
            i
            for i, solution in enumerate(self.replicas)
            if _solution_broken(solution, cuts, darks)
        ]

    def handle_faults(
        self,
        cuts: Set[Tuple[Hashable, Hashable]],
        darks: Set[Hashable],
    ) -> Tuple[str, List[Dict[Hashable, int]]]:
        """Absorb one fault signature; returns ``(event, released)``.

        *released* lists the usage dicts of every replica dropped from
        the set — the caller must return them to the ledger.  On
        :data:`EXHAUSTED` the (broken) serving replica is *kept*: its
        reservation stays live so the repair ladder can swap it
        atomically, exactly like an unreplicated reservation.
        """
        broken = set(self.broken_indices(cuts, darks))
        if not broken:
            return INTACT, []
        survivors = [i for i in range(len(self.replicas)) if i not in broken]
        if self.serving in broken and not survivors:
            # Every tree is dead: shed the standbys, keep the serving
            # reservation for the caller's repair/degrade/abandon path.
            released = [
                self.usages[i]
                for i in sorted(broken)
                if i != self.serving
            ]
            keep = self.serving
            self.replicas = [self.replicas[keep]]
            self.usages = [self.usages[keep]]
            if keep != 0:
                self.redundant = None
            self.serving = 0
            return EXHAUSTED, released
        event = PRUNED
        if self.serving in broken:
            event = FAILOVER
            self.failovers += 1
        released = [self.usages[i] for i in sorted(broken)]
        old_serving = self.serving
        new_serving_old_index = (
            old_serving if old_serving in survivors else survivors[0]
        )
        if 0 in broken:
            self.redundant = None
        self.replicas = [self.replicas[i] for i in survivors]
        self.usages = [self.usages[i] for i in survivors]
        self.serving = survivors.index(new_serving_old_index)
        return event, released


def _replica_fibers(
    replicas: List[MUERPSolution],
) -> Set[Tuple[Hashable, Hashable]]:
    used: Set[Tuple[Hashable, Hashable]] = set()
    for solution in replicas:
        for channel in solution.channels:
            for u, v in zip(channel.path, channel.path[1:]):
                used.add(fiber_key(u, v))
    return used


def _usage_delta(
    full: Dict[Hashable, int], base: Dict[Hashable, int]
) -> Dict[Hashable, int]:
    delta: Dict[Hashable, int] = {}
    for switch, qubits in full.items():
        extra = qubits - base.get(switch, 0)
        if extra > 0:
            delta[switch] = extra
    return delta


def plan_replica_set(
    network: QuantumNetwork,
    primary: MUERPSolution,
    ledger: CapacityLedger,
    policy: ReplicationPolicy,
    route: Callable[[QuantumNetwork], Optional[MUERPSolution]],
) -> ReplicaSet:
    """Reserve *primary* plus up to ``k−1`` standbys, atomically.

    *route* is called with the view each standby must be planned on
    (fiber-disjoint from the replicas so far when the policy asks for
    it) and must respect the shared *ledger* — the scheduler's own
    ``_route`` closure does.  Planning is best effort: an unplannable
    standby is counted in :attr:`ReplicaSet.shortfall` rather than
    failing the admission.  Any exception inside rolls every
    reservation back (the ledger transaction).
    """
    usage0 = dict(primary.switch_usage())
    rset = ReplicaSet(replicas=[primary], usages=[usage0])
    with ledger.transaction():
        ledger.reserve(usage0)
        for _ in range(policy.k - 1):
            view = network
            if policy.prefer_disjoint:
                used = _replica_fibers(rset.replicas)
                view = apply_failures(network, used)
            extra = route(view)
            if (
                extra is None
                and view is not network
                and policy.allow_overlap
            ):
                extra = route(network)
            if extra is None:
                rset.shortfall += 1
                break
            usage = dict(extra.switch_usage())
            if not ledger.can_reserve(usage):
                rset.shortfall += 1
                break
            ledger.reserve(usage)
            rset.replicas.append(extra)
            rset.usages.append(usage)
        if policy.edge_backups and policy.max_edge_backups > 0:
            tree = add_redundancy(
                network,
                primary,
                max_backups=policy.max_edge_backups,
                residual=ledger.as_dict(),
            )
            if tree.n_backups:
                backup_usage = _usage_delta(tree.switch_usage(), usage0)
                if ledger.can_reserve(backup_usage):
                    ledger.reserve(backup_usage)
                    rset.redundant = tree
                    for switch, qubits in backup_usage.items():
                        usage0[switch] = usage0.get(switch, 0) + qubits
    return rset
