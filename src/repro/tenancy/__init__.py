"""Multi-tenant SLO-guarded serving over one shared capacity pool.

The paper routes one user group; production serving means many tenant
groups competing for the same fiber/qubit budgets, where overload and
faults must degrade *fairly* rather than collapse onto whoever arrived
first.  This package is that serving layer:

* :mod:`repro.tenancy.slo` — per-tenant contracts
  (:class:`TenantSLO`: weight, guaranteed rate, max shed fraction)
  and the :class:`SLORegistry` account book with error-budget and
  compliance accounting;
* :mod:`repro.tenancy.fairness` — weighted-fair victim selection for
  the admission queue (pain ∝ 1/weight, compliant tenants never
  starved) and Jain's fairness index;
* :mod:`repro.tenancy.replicas` — k-redundant tree planning
  (:func:`plan_replica_set`, fiber-disjoint standbys reserved in one
  ledger transaction) and the mid-service failover state machine
  (:class:`ReplicaSet`), the cheap rung below the structural repair
  ladder;
* :mod:`repro.tenancy.serving` — the :func:`serve_tenants` facade and
  :class:`TenantServingResult` per-tenant SLO table backing the
  ``repro serve`` CLI and the 100x multi-tenant soak gate.

See ``docs/MULTITENANCY.md`` for the tenant model, the
failover-vs-repair decision ladder, and the fairness gates.
"""

from repro.tenancy.fairness import (
    jain_index,
    pick_weighted_fair_victim,
    weighted_fair_drain_order,
)
from repro.tenancy.replicas import (
    EXHAUSTED,
    FAILOVER,
    INTACT,
    PRUNED,
    ReplicaSet,
    ReplicationPolicy,
    plan_replica_set,
)
from repro.tenancy.serving import (
    TenantServingResult,
    default_slos,
    serve_tenants,
)
from repro.tenancy.slo import (
    UNTENANTED,
    SLORegistry,
    TenantAccount,
    TenantSLO,
    tenant_label,
)

__all__ = [
    "TenantSLO",
    "TenantAccount",
    "SLORegistry",
    "UNTENANTED",
    "tenant_label",
    "jain_index",
    "pick_weighted_fair_victim",
    "weighted_fair_drain_order",
    "ReplicationPolicy",
    "ReplicaSet",
    "plan_replica_set",
    "INTACT",
    "PRUNED",
    "FAILOVER",
    "EXHAUSTED",
    "serve_tenants",
    "default_slos",
    "TenantServingResult",
]
