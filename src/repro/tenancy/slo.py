"""Per-tenant SLO targets and error-budget accounting.

The serving layer treats every request's ``tenant`` label as an
account with a contract:

* a **weight** — the tenant's share of capacity under contention
  (weighted-fair shedding equalizes ``shed_fraction × weight``, so a
  weight-2 tenant absorbs half the shed fraction of a weight-1 one);
* a **guaranteed rate** — arrivals/slot the tenant may submit and
  still be *compliant* (token-bucket style: a tenant whose cumulative
  arrivals stay within ``burst + rate × slots`` is within contract);
* a **max shed fraction** — the SLO target; the gap between it and the
  observed shed fraction is the tenant's remaining **error budget**.

Compliance is what the anti-starvation guarantee keys on: the
weighted-fair shed policy never victimizes a compliant tenant while a
non-compliant one has queue entries, and the brownout SHED tier lets
compliant arrivals through to the limiter chain instead of refusing
them wholesale (the "SLO guard").

Everything here is pure bookkeeping — deterministic, no rng, no
network access — so same-seed runs produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: Canonical account label for requests without a tenant tag.
UNTENANTED = "(untenanted)"


def tenant_label(request) -> str:
    """The account name a request's dispositions bill to."""
    tenant = getattr(request, "tenant", None)
    return tenant if tenant else UNTENANTED


@dataclass(frozen=True)
class TenantSLO:
    """One tenant's serving contract.

    Attributes:
        tenant: Account label (matches ``EntanglementRequest.tenant``).
        weight: Relative capacity share under contention (> 0).
        guaranteed_rate: Arrivals/slot the tenant may submit while
            staying compliant.
        guaranteed_burst: Arrival slack on top of the rate (so a
            compliant tenant may clump a few requests).
        max_shed_fraction: SLO target — the shed fraction the tenant
            tolerates before its error budget is exhausted.
    """

    tenant: str
    weight: float = 1.0
    guaranteed_rate: float = 0.25
    guaranteed_burst: float = 2.0
    max_shed_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant label must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be > 0")
        if self.guaranteed_rate < 0:
            raise ValueError("guaranteed_rate must be >= 0")
        if self.guaranteed_burst < 0:
            raise ValueError("guaranteed_burst must be >= 0")
        if not 0.0 <= self.max_shed_fraction <= 1.0:
            raise ValueError("max_shed_fraction must be in [0, 1]")


@dataclass
class TenantAccount:
    """Mutable per-tenant counters accumulated during one run."""

    arrivals: int = 0
    served: int = 0
    degraded: int = 0
    shed: int = 0
    failed: int = 0  # abandoned / rejected / deadline-exceeded
    failovers: int = 0
    dispositions: Dict[str, int] = field(default_factory=dict)

    @property
    def closed(self) -> int:
        return sum(self.dispositions.values())

    @property
    def accepted(self) -> int:
        return self.served + self.degraded

    def shed_fraction(self) -> float:
        if self.arrivals == 0:
            return 0.0
        return self.shed / self.arrivals

    def served_fraction(self) -> float:
        if self.arrivals == 0:
            return 0.0
        return self.accepted / self.arrivals


class SLORegistry:
    """Account book for every tenant's arrivals, outcomes, and budget.

    The registry is consulted *during* a run (weighted-fair victim
    selection, SLO-guard compliance checks) and read *after* it (the
    per-tenant SLO table).  Tenants without an explicit
    :class:`TenantSLO` fall back to *default_slo*, so the registry
    works over workloads whose tenant population is only discovered as
    requests arrive.
    """

    def __init__(
        self,
        slos: Iterable[TenantSLO] = (),
        default_slo: Optional[TenantSLO] = None,
    ) -> None:
        self._slos: Dict[str, TenantSLO] = {}
        for slo in slos:
            if slo.tenant in self._slos:
                raise ValueError(f"duplicate SLO for tenant {slo.tenant!r}")
            self._slos[slo.tenant] = slo
        self._default = default_slo or TenantSLO(tenant="(default)")
        self._accounts: Dict[str, TenantAccount] = {}

    # ------------------------------------------------------------------
    # Contracts
    # ------------------------------------------------------------------
    def slo_for(self, tenant: str) -> TenantSLO:
        slo = self._slos.get(tenant)
        if slo is not None:
            return slo
        return self._default

    def weight(self, tenant: str) -> float:
        return self.slo_for(tenant).weight

    def tenants(self) -> List[str]:
        """Every tenant seen or contracted, sorted."""
        return sorted(set(self._slos) | set(self._accounts))

    def account(self, tenant: str) -> TenantAccount:
        acct = self._accounts.get(tenant)
        if acct is None:
            acct = TenantAccount()
            self._accounts[tenant] = acct
        return acct

    # ------------------------------------------------------------------
    # Recording (called from the admission controller / scheduler)
    # ------------------------------------------------------------------
    def record_arrival(self, tenant: str, slot: int) -> None:
        self.account(tenant).arrivals += 1

    def record_disposition(self, tenant: str, status: str) -> None:
        acct = self.account(tenant)
        acct.dispositions[status] = acct.dispositions.get(status, 0) + 1
        if status == "served":
            acct.served += 1
        elif status == "degraded":
            acct.degraded += 1
        elif status == "shed":
            acct.shed += 1
        else:
            acct.failed += 1

    def record_failover(self, tenant: str) -> None:
        self.account(tenant).failovers += 1

    def reset(self) -> None:
        self._accounts = {}

    # ------------------------------------------------------------------
    # Derived signals
    # ------------------------------------------------------------------
    def shed_fraction(self, tenant: str) -> float:
        return self.account(tenant).shed_fraction()

    def served_fraction(self, tenant: str) -> float:
        return self.account(tenant).served_fraction()

    def weighted_pain(self, tenant: str) -> float:
        """Shed fraction scaled by weight — the fairness potential.

        The weighted-fair shed policy always victimizes the tenant with
        the *least* weighted pain, which in steady state equalizes
        ``shed_fraction × weight`` across tenants: pain lands in
        inverse proportion to weight.
        """
        return self.shed_fraction(tenant) * self.weight(tenant)

    def within_guarantee(self, tenant: str, slot: int) -> bool:
        """Whether *tenant*'s cumulative arrivals respect its contract.

        Token-bucket form: compliant while
        ``arrivals <= burst + rate × (slot + 1)``.  A tenant that
        floods beyond its guaranteed rate loses compliance — and with
        it the anti-starvation protection.
        """
        slo = self.slo_for(tenant)
        allowance = slo.guaranteed_burst + slo.guaranteed_rate * (slot + 1)
        return self.account(tenant).arrivals <= allowance

    def error_budget_remaining(self, tenant: str) -> float:
        """SLO headroom left, in [−1, 1]: target − observed shed fraction."""
        return (
            self.slo_for(tenant).max_shed_fraction
            - self.shed_fraction(tenant)
        )

    def slo_met(self, tenant: str) -> bool:
        return self.error_budget_remaining(tenant) >= 0.0

    def jain_index(self) -> float:
        """Jain's fairness index over per-tenant served fractions.

        ``J = (Σx)² / (n · Σx²)`` over tenants with at least one
        arrival; 1.0 = perfectly even service, 1/n = one tenant takes
        everything.  Empty runs report 1.0 (vacuously fair).
        """
        from repro.tenancy.fairness import jain_index

        fractions = [
            acct.served_fraction()
            for tenant, acct in sorted(self._accounts.items())
            if acct.arrivals > 0
        ]
        return jain_index(fractions)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def table(self) -> Dict[str, Dict[str, object]]:
        """Deterministic serializable per-tenant SLO table."""
        out: Dict[str, Dict[str, object]] = {}
        for tenant in self.tenants():
            acct = self.account(tenant)
            slo = self.slo_for(tenant)
            out[tenant] = {
                "weight": slo.weight,
                "arrivals": acct.arrivals,
                "served": acct.served,
                "degraded": acct.degraded,
                "shed": acct.shed,
                "failed": acct.failed,
                "failovers": acct.failovers,
                "served_fraction": round(acct.served_fraction(), 6),
                "shed_fraction": round(acct.shed_fraction(), 6),
                "max_shed_fraction": slo.max_shed_fraction,
                "error_budget_remaining": round(
                    self.error_budget_remaining(tenant), 6
                ),
                "slo_met": self.slo_met(tenant),
            }
        return out
