"""Terminal bar charts (linear and log scale).

The paper's figures are log-scale bar charts of entanglement rates; these
helpers give a quick visual check in the terminal without any plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Horizontal linear-scale bar chart keyed by label."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if not values:
        return title or ""
    peak = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        if value < 0:
            raise ValueError("bar values must be non-negative")
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.4g}")
    return "\n".join(lines)


def log_bar_chart(
    values: Dict[str, float],
    width: int = 50,
    floor: float = 1e-12,
    title: Optional[str] = None,
) -> str:
    """Horizontal log-scale bar chart; zero values render an empty bar.

    Bars span from ``log10(floor)`` to the maximum value's log, mirroring
    the paper's log-scale axes that bottom out around 1e-7.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if floor <= 0:
        raise ValueError("floor must be positive")
    if not values:
        return title or ""
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be non-negative")
    positive = [v for v in values.values() if v > 0]
    label_width = max(len(str(k)) for k in values)
    lines: List[str] = [title] if title else []
    if not positive:
        for label, value in values.items():
            lines.append(f"{str(label).ljust(label_width)} | 0")
        return "\n".join(lines)
    log_top = math.log10(max(positive))
    log_floor = math.log10(floor)
    span = max(log_top - log_floor, 1e-12)
    for label, value in values.items():
        if value < 0:
            raise ValueError("bar values must be non-negative")
        if value <= 0:
            bar = ""
            text = "0"
        else:
            fraction = (math.log10(max(value, floor)) - log_floor) / span
            bar = "#" * max(0, int(round(width * fraction)))
            text = f"{value:.3e}"
        lines.append(f"{str(label).ljust(label_width)} | {bar} {text}")
    return "\n".join(lines)
