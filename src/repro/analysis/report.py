"""Markdown report generation for experiment results.

Turns :class:`~repro.experiments.sweeps.SweepResult`,
:class:`~repro.experiments.runner.ExperimentResult` and the other result
objects into Markdown sections, so EXPERIMENTS.md-style documents can be
regenerated mechanically (``repro experiment <name> --markdown``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.registry import DISPLAY_NAMES


def _format_rate(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value == 0.0:
        return "0"
    if math.isinf(value):
        return "∞"
    return f"{value:.4e}"


def markdown_table(
    columns: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured Markdown table."""
    columns = list(columns)
    if not columns:
        raise ValueError("a table needs at least one column")
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        cells = [
            _format_rate(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        if len(cells) != len(columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(columns)}"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def sweep_markdown(result, title: str, commentary: str = "") -> str:
    """Markdown section for a :class:`SweepResult`.

    Sweeps run with ``bound="lp"`` gain a certified ``LP bound`` column
    and a per-method optimality-gap column (mean gap against each
    trial's own certificate, in percent).
    """
    methods = list(result.results[0].config.methods)
    columns = [result.parameter] + [DISPLAY_NAMES.get(m, m) for m in methods]
    with_bounds = getattr(result, "has_bounds", False)
    gaps = None
    if with_bounds:
        columns.append("LP bound")
        columns += [f"{DISPLAY_NAMES.get(m, m)} gap%" for m in methods]
        gaps = result.gap_series()
    rows: List[List[object]] = []
    for index, (value, point) in enumerate(
        zip(result.values, result.results)
    ):
        rates = point.mean_rates()
        row: List[object] = [value] + [rates[m] for m in methods]
        if gaps is not None:
            row.append(point.mean_bound)
            row += [f"{gaps[m][index]:.2f}" for m in methods]
        rows.append(row)
    parts = [f"### {title}", ""]
    if commentary:
        parts += [commentary, ""]
    parts.append(markdown_table(columns, rows))
    return "\n".join(parts)


def experiment_markdown(result, title: str) -> str:
    """Markdown section for a single :class:`ExperimentResult`."""
    with_bounds = getattr(result, "has_bounds", False)
    gaps = result.gap_aggregates() if with_bounds else None
    columns = ["method", "mean rate", "min", "max", "failures"]
    if with_bounds:
        columns.append("gap vs LP bound")
    rows = []
    for outcome in result.outcomes:
        stats = outcome.stats
        row = [
            outcome.display,
            stats.mean,
            stats.minimum,
            stats.maximum,
            f"{stats.n_zero}/{stats.n}",
        ]
        if gaps is not None:
            row.append(f"{gaps[outcome.method].mean_gap_percent:.2f}%")
        rows.append(row)
    return "\n".join(
        [f"### {title}", "", markdown_table(columns, rows)]
    )


def edge_removal_markdown(result, title: str) -> str:
    """Markdown section for the Fig. 7(b) edge-removal result."""
    methods = list(result.series)
    columns = ["removed ratio"] + [DISPLAY_NAMES.get(m, m) for m in methods]
    rows = []
    for index, ratio in enumerate(result.ratios):
        rows.append(
            [f"{ratio:.2f}"] + [result.series[m][index] for m in methods]
        )
    return "\n".join([f"### {title}", "", markdown_table(columns, rows)])


def comparison_markdown(
    series: Dict[str, float], title: str, value_name: str = "value"
) -> str:
    """Markdown section for a flat name → value mapping."""
    rows = [[name, value] for name, value in series.items()]
    return "\n".join(
        [f"### {title}", "", markdown_table(["variant", value_name], rows)]
    )
