"""ASCII geographic rendering of quantum networks and routed trees.

Projects node positions onto a character grid: switches are ``·``,
quantum users are ``U`` (labelled in the legend), fibers are faint
``-``/``|``/``\\``/``/`` segments, and the channels of a routed solution
overdraw their fibers with ``#``.  Meant for quick terminal inspection
and for the examples; not a plotting library.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.problem import MUERPSolution
from repro.network.graph import QuantumNetwork


def render_network(
    network: QuantumNetwork,
    solution: Optional[MUERPSolution] = None,
    width: int = 72,
    height: int = 24,
    legend: bool = True,
) -> str:
    """Render *network* (and optionally a routed tree) as ASCII art."""
    if width < 8 or height < 4:
        raise ValueError("canvas must be at least 8x4")
    nodes = network.nodes
    if not nodes:
        return "(empty network)"

    xs = [n.position[0] for n in nodes]
    ys = [n.position[1] for n in nodes]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    def project(position: Tuple[float, float]) -> Tuple[int, int]:
        col = int(round((position[0] - min_x) / span_x * (width - 1)))
        # Flip y so north is up.
        row = int(round((max_y - position[1]) / span_y * (height - 1)))
        return row, col

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    # 1. Fibers (faint).
    for fiber in network.fibers:
        a = project(network.node(fiber.u).position)
        b = project(network.node(fiber.v).position)
        _draw_segment(grid, a, b, bold=False)

    # 2. Channels (bold) on top.
    if solution is not None and solution.feasible:
        for channel in solution.channels:
            for u, v in zip(channel.path, channel.path[1:]):
                a = project(network.node(u).position)
                b = project(network.node(v).position)
                _draw_segment(grid, a, b, bold=True)

    # 3. Nodes on top of everything.
    user_marks: Dict[Hashable, str] = {}
    for index, user in enumerate(network.users):
        mark = chr(ord("A") + index) if index < 26 else "U"
        user_marks[user.id] = mark
        row, col = project(user.position)
        grid[row][col] = mark
    for switch in network.switches:
        row, col = project(switch.position)
        if grid[row][col] == " " or grid[row][col] in "-|/\\#.":
            grid[row][col] = "o"

    lines = ["".join(row).rstrip() for row in grid]
    if legend:
        lines.append("")
        lines.append(
            "legend: o switch, # routed channel, "
            + ", ".join(f"{mark}={user}" for user, mark in user_marks.items())
        )
    return "\n".join(lines)


def _draw_segment(
    grid: List[List[str]],
    start: Tuple[int, int],
    end: Tuple[int, int],
    bold: bool,
) -> None:
    """Bresenham-style line with orientation-aware glyphs."""
    (r0, c0), (r1, c1) = start, end
    dr = r1 - r0
    dc = c1 - c0
    steps = max(abs(dr), abs(dc))
    if steps == 0:
        return
    if bold:
        glyph = "#"
    elif dr == 0:
        glyph = "-"
    elif dc == 0:
        glyph = "|"
    elif (dr > 0) == (dc > 0):
        glyph = "\\"
    else:
        glyph = "/"
    for step in range(1, steps):
        row = r0 + round(dr * step / steps)
        col = c0 + round(dc * step / steps)
        current = grid[row][col]
        if current == " " or (bold and current in "-|/\\"):
            grid[row][col] = glyph
