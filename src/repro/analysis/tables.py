"""Plain-text table rendering for experiment reports.

Every benchmark prints the data series behind one of the paper's figures
through this renderer, so EXPERIMENTS.md entries and terminal output
share one format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["method", "rate"], title="demo")
    >>> t.add_row(["Alg-2", 1.23e-3])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self,
        columns: Sequence[str],
        title: Optional[str] = None,
        float_format: str = "{:.4e}",
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.float_format = float_format
        self._rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append a row; must match the column count."""
        rendered = [self._format(cell) for cell in cells]
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(rendered)}"
            )
        self._rows.append(rendered)

    def _format(self, cell: Cell) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            if cell == 0.0:
                return "0"
            return self.float_format.format(cell)
        return str(cell)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        parts: List[str] = []
        if self.title:
            parts.append(self.title)
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        parts.append(header)
        parts.append("  ".join("-" * w for w in widths))
        for row in self._rows:
            parts.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
