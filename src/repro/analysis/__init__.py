"""Result analysis: statistics, table rendering, terminal plots."""

from repro.analysis.stats import (
    SummaryStats,
    summarize,
    geometric_mean,
    improvement_percent,
)
from repro.analysis.tables import Table
from repro.analysis.ascii_plot import bar_chart, log_bar_chart
from repro.analysis.geo_plot import render_network
from repro.analysis.crossover import Crossover, find_crossovers, dominance_summary
from repro.analysis.report import (
    markdown_table,
    sweep_markdown,
    experiment_markdown,
    edge_removal_markdown,
    comparison_markdown,
)

__all__ = [
    "SummaryStats",
    "summarize",
    "geometric_mean",
    "improvement_percent",
    "Table",
    "bar_chart",
    "log_bar_chart",
    "render_network",
    "Crossover",
    "find_crossovers",
    "dominance_summary",
    "markdown_table",
    "sweep_markdown",
    "experiment_markdown",
    "edge_removal_markdown",
    "comparison_markdown",
]
