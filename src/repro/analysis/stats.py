"""Statistics over per-network entanglement rates.

The paper averages each configuration over 20 random networks ("compute
the average of the observed results"), counting infeasible runs as rate
0.  :func:`summarize` reproduces that plus dispersion measures; the
geometric mean is offered as a companion since rates span decades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample of entanglement rates."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    n_zero: int

    @property
    def failure_fraction(self) -> float:
        """Fraction of runs that produced no feasible tree."""
        if self.n == 0:
            return 0.0
        return self.n_zero / self.n

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI of the mean."""
        if self.n <= 1:
            return (self.mean, self.mean)
        margin = z * self.std / math.sqrt(self.n)
        return (max(0.0, self.mean - margin), self.mean + margin)


def summarize(rates: Sequence[float]) -> SummaryStats:
    """Arithmetic-mean summary of *rates* (zeros included, as the paper)."""
    values = np.asarray(list(rates), dtype=float)
    if values.size == 0:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0)
    if (values < 0).any():
        raise ValueError("rates must be non-negative")
    return SummaryStats(
        n=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        minimum=float(values.min()),
        maximum=float(values.max()),
        n_zero=int((values == 0.0).sum()),
    )


def geometric_mean(rates: Sequence[float], zero_floor: float = 0.0) -> float:
    """Geometric mean of *rates*.

    Zero rates make the true geometric mean 0; pass a *zero_floor* > 0 to
    clamp failures instead (useful for log-scale plotting).
    """
    values = np.asarray(list(rates), dtype=float)
    if values.size == 0:
        return 0.0
    if (values < 0).any():
        raise ValueError("rates must be non-negative")
    values = np.maximum(values, zero_floor)
    if (values == 0.0).any():
        return 0.0
    return float(np.exp(np.mean(np.log(values))))


def improvement_percent(ours: float, baseline: float) -> float:
    """Relative improvement "boost" in percent, as the paper reports it.

    "Boost the entanglement rate by up to 5347%" means
    ``(ours − baseline) / baseline · 100``.  Returns ``inf`` when the
    baseline is 0 and ours is positive, and 0 when both are 0.
    """
    if baseline < 0 or ours < 0:
        raise ValueError("rates must be non-negative")
    if baseline == 0.0:
        return math.inf if ours > 0 else 0.0
    return (ours - baseline) / baseline * 100.0
