"""Crossover detection in parameter sweeps.

"Where crossovers fall" is part of reproducing a figure's shape: e.g.
in Fig. 8(b) the baselines close the gap as q → 1, and in Fig. 6(b) the
two baselines swap places along the switch-count axis.  These helpers
locate such crossings in :class:`~repro.experiments.sweeps.SweepResult`
series with linear interpolation between swept points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Crossover:
    """One detected crossing between two series.

    Attributes:
        method_a, method_b: The two series.
        x: Interpolated parameter value where they cross.
        segment: The (left, right) swept values bracketing the crossing.
        leader_after: Which method leads to the right of the crossing.
    """

    method_a: str
    method_b: str
    x: float
    segment: Tuple[float, float]
    leader_after: str


def find_crossovers(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    pair: Optional[Tuple[str, str]] = None,
) -> List[Crossover]:
    """Locate sign changes of ``series[a] − series[b]`` along *xs*.

    Args:
        xs: The swept parameter values (numeric, increasing).
        series: Method name → rate list (same length as *xs*).
        pair: Restrict to one method pair; default checks all pairs.

    Touching without crossing (difference hits exactly 0 then returns)
    is reported as a crossover at the touch point, with the subsequent
    leader resolved from the next differing segment.
    """
    values = [float(x) for x in xs]
    if sorted(values) != values:
        raise ValueError("xs must be increasing")
    for name, ys in series.items():
        if len(ys) != len(values):
            raise ValueError(f"series {name!r} length mismatch")

    if pair is not None:
        pairs = [pair]
    else:
        names = sorted(series)
        pairs = [
            (a, b) for i, a in enumerate(names) for b in names[i + 1 :]
        ]

    crossings: List[Crossover] = []
    for a, b in pairs:
        ya = series[a]
        yb = series[b]
        diffs = [ya[i] - yb[i] for i in range(len(values))]
        for i in range(len(values) - 1):
            left, right = diffs[i], diffs[i + 1]
            if left == 0.0 and right == 0.0:
                continue
            if left * right < 0.0:
                # Proper sign change: interpolate.
                fraction = abs(left) / (abs(left) + abs(right))
                x = values[i] + fraction * (values[i + 1] - values[i])
                crossings.append(
                    Crossover(
                        method_a=a,
                        method_b=b,
                        x=x,
                        segment=(values[i], values[i + 1]),
                        leader_after=a if right > 0 else b,
                    )
                )
            elif left == 0.0 and right != 0.0 and i == 0:
                crossings.append(
                    Crossover(
                        method_a=a,
                        method_b=b,
                        x=values[i],
                        segment=(values[i], values[i + 1]),
                        leader_after=a if right > 0 else b,
                    )
                )
    return crossings


def dominance_summary(
    xs: Sequence[float], series: Dict[str, Sequence[float]]
) -> Dict[str, float]:
    """Fraction of the swept range each method leads (ties split).

    Leadership is evaluated per segment midpoint with linear
    interpolation; the result values sum to ~1 for non-empty input.
    """
    values = [float(x) for x in xs]
    if len(values) < 2:
        # Degenerate sweep: leader at the single point takes all.
        if not values or not series:
            return {}
        best = max(series, key=lambda m: series[m][0])
        return {m: (1.0 if m == best else 0.0) for m in series}
    total = values[-1] - values[0]
    leads: Dict[str, float] = {m: 0.0 for m in series}
    for i in range(len(values) - 1):
        width = values[i + 1] - values[i]
        midpoint_values = {
            m: (series[m][i] + series[m][i + 1]) / 2.0 for m in series
        }
        peak = max(midpoint_values.values())
        leaders = [m for m, v in midpoint_values.items() if v == peak]
        for m in leaders:
            leads[m] += width / len(leaders)
    if total <= 0:
        return {m: 0.0 for m in series}
    return {m: lead / total for m, lead in leads.items()}
