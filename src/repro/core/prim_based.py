"""Algorithm 4 — the Prim-based heuristic.

Grows the entanglement tree from a single seed user.  Each round finds,
over all (connected user, unconnected user) pairs, the maximum-rate
channel that respects residual switch capacity, adds it, deducts the
qubits, and moves the newly connected user into the tree.  After
``|U| − 1`` successful rounds all users are entangled; if some round
finds no channel the instance is declared infeasible (rate 0).

Unlike Algorithm 3 this needs no Algorithm 2 output to start from.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set

from repro.core.channel import best_channels_from
from repro.core.ledger import CapacityLedger
from repro.core.optimal import channel_sort_key
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


class _Infeasible(Exception):
    """Internal control flow: abort the solve and roll back reservations."""


def solve_prim(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    start: Optional[Hashable] = None,
    rng: RngLike = None,
    residual: Optional[dict] = None,
) -> MUERPSolution:
    """Algorithm 4.

    Args:
        network: The quantum network.
        users: Users to entangle (default: all network users).
        start: Seed user ``u_0``; when omitted one is drawn with *rng*
            (the paper picks it uniformly at random).
        rng: Random source for the seed choice; an int seed, a numpy
            Generator, or ``None``.
        residual: Optional shared residual-qubit map (switch → qubits)
            or :class:`~repro.core.ledger.CapacityLedger`, so several
            routing requests can share one budget (the multi-group
            extension).  Defaults to each switch's full budget.  The
            account is transactional: reservations are published to a
            caller-supplied dict only when this call returns a
            *feasible* tree; a mid-solve exception or an infeasible
            outcome leaves it untouched.

    Returns:
        A capacity-feasible :class:`MUERPSolution`, infeasible (rate 0)
        when growth gets stuck before spanning all users.
    """
    user_list = resolve_users(network, users)
    if start is None:
        generator = ensure_rng(rng)
        start = user_list[int(generator.integers(0, len(user_list)))]
    elif start not in user_list:
        raise ValueError(f"start {start!r} is not among the users")

    connected: List[Hashable] = [start]
    remaining: Set[Hashable] = set(user_list) - {start}
    ledger = CapacityLedger.adopt(residual, network)
    selected: List[Channel] = []

    try:
        with ledger.transaction():
            while remaining:
                best: Optional[Channel] = None
                for source in connected:
                    found = best_channels_from(
                        network, source, remaining, ledger
                    )
                    for channel in found.values():
                        if best is None or channel_sort_key(channel) < channel_sort_key(best):
                            best = channel
                if best is None:
                    raise _Infeasible()
                ledger.reserve_channel(best)
                newcomer = best.endpoints[1]
                remaining.discard(newcomer)
                connected.append(newcomer)
                selected.append(best)
    except _Infeasible:
        return infeasible_solution(user_list, "prim")

    if residual is not None and not isinstance(residual, CapacityLedger):
        ledger.write_back(residual)
    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="prim",
        feasible=True,
    )
