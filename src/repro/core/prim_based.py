"""Algorithm 4 — the Prim-based heuristic.

Grows the entanglement tree from a single seed user.  Each round finds,
over all (connected user, unconnected user) pairs, the maximum-rate
channel that respects residual switch capacity, adds it, deducts the
qubits, and moves the newly connected user into the tree.  After
``|U| − 1`` successful rounds all users are entangled; if some round
finds no channel the instance is declared infeasible (rate 0).

Unlike Algorithm 3 this needs no Algorithm 2 output to start from.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set

from repro.core.channel import best_channels_from
from repro.core.optimal import channel_sort_key
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


def solve_prim(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    start: Optional[Hashable] = None,
    rng: RngLike = None,
    residual: Optional[dict] = None,
) -> MUERPSolution:
    """Algorithm 4.

    Args:
        network: The quantum network.
        users: Users to entangle (default: all network users).
        start: Seed user ``u_0``; when omitted one is drawn with *rng*
            (the paper picks it uniformly at random).
        rng: Random source for the seed choice; an int seed, a numpy
            Generator, or ``None``.
        residual: Optional shared residual-qubit map (switch → qubits);
            mutated in place so several routing requests can share one
            budget (the multi-group extension).  Defaults to each
            switch's full budget.

    Returns:
        A capacity-feasible :class:`MUERPSolution`, infeasible (rate 0)
        when growth gets stuck before spanning all users.
    """
    user_list = resolve_users(network, users)
    if start is None:
        generator = ensure_rng(rng)
        start = user_list[int(generator.integers(0, len(user_list)))]
    elif start not in user_list:
        raise ValueError(f"start {start!r} is not among the users")

    connected: List[Hashable] = [start]
    remaining: Set[Hashable] = set(user_list) - {start}
    if residual is None:
        residual = network.residual_qubits()
    selected: List[Channel] = []

    while remaining:
        best: Optional[Channel] = None
        for source in connected:
            found = best_channels_from(network, source, remaining, residual)
            for channel in found.values():
                if best is None or channel_sort_key(channel) < channel_sort_key(best):
                    best = channel
        if best is None:
            return infeasible_solution(user_list, "prim")
        for switch in best.switches:
            residual[switch] -= 2
        newcomer = best.endpoints[1]
        remaining.discard(newcomer)
        connected.append(newcomer)
        selected.append(best)

    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="prim",
        feasible=True,
    )
