"""Entanglement-tree validation.

Checks every MUERP solution invariant from the problem statement:
spanning, acyclic over users, capacity-respecting, path-wellformedness
and rate consistency.  Used by tests, by the experiment runner (defence
in depth: algorithms must never emit an invalid tree) and exposed as a
public API for downstream users building their own solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.core.problem import Channel, MUERPSolution
from repro.core.rates import channel_log_rate
from repro.network.graph import QuantumNetwork
from repro.utils.unionfind import UnionFind


@dataclass
class ValidationReport:
    """Outcome of validating a solution against a network."""

    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, message: str) -> None:
        self.issues.append(message)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "ValidationReport(ok)"
        return "ValidationReport:\n  " + "\n  ".join(self.issues)


def switch_usage(channels: Tuple[Channel, ...]) -> Dict[Hashable, int]:
    """Qubits consumed per switch across *channels* (2 per transit)."""
    usage: Dict[Hashable, int] = {}
    for channel in channels:
        for switch in channel.switches:
            usage[switch] = usage.get(switch, 0) + 2
    return usage


def validate_solution(
    network: QuantumNetwork,
    solution: MUERPSolution,
    enforce_capacity: bool = True,
    rate_tolerance: float = 1e-9,
) -> ValidationReport:
    """Validate *solution* against *network*.

    Checks (each contributing a human-readable issue on failure):

    1. every channel path exists edge-by-edge in the network;
    2. channel endpoints are users and intermediates are switches;
    3. the recorded log-rate of each channel matches Eq. (1);
    4. the user-level tree is acyclic and spans exactly the user set
       (``|A| = |U| − 1`` channels for a tree);
    5. no switch exceeds its qubit budget (skippable for Algorithm 2,
       whose model assumes abundant capacity).

    An infeasible solution validates trivially: it asserts nothing.
    """
    report = ValidationReport()
    if not solution.feasible:
        if solution.channels:
            report.add("infeasible solution carries channels")
        return report

    for channel in solution.channels:
        _validate_channel(network, channel, rate_tolerance, report)

    users = solution.users
    if len(solution.channels) != len(users) - 1:
        report.add(
            f"tree must have |U|-1={len(users) - 1} channels, "
            f"got {len(solution.channels)}"
        )
    unions = UnionFind(users)
    for channel in solution.channels:
        a, b = channel.endpoints
        if a not in users or b not in users:
            report.add(f"channel endpoint outside user set: {channel.path}")
            continue
        if not unions.union(a, b):
            report.add(f"channel creates a user-level cycle: {channel.path}")
    if unions.n_components != 1:
        report.add(
            f"channels leave users in {unions.n_components} components"
        )

    if enforce_capacity:
        budgets = network.residual_qubits()
        for switch, used in switch_usage(solution.channels).items():
            budget = budgets.get(switch)
            if budget is None:
                report.add(f"transit node {switch!r} is not a switch")
            elif used > budget:
                report.add(
                    f"switch {switch!r} over capacity: uses {used} of "
                    f"{budget} qubits"
                )
    return report


def _validate_channel(
    network: QuantumNetwork,
    channel: Channel,
    rate_tolerance: float,
    report: ValidationReport,
) -> None:
    path = channel.path
    a, b = channel.endpoints
    if a not in network or not network.is_user(a):
        report.add(f"channel start {a!r} is not a network user")
        return
    if b not in network or not network.is_user(b):
        report.add(f"channel end {b!r} is not a network user")
        return
    for node in channel.switches:
        if node not in network or not network.is_switch(node):
            report.add(f"channel intermediate {node!r} is not a switch")
            return
    for u, v in zip(path, path[1:]):
        if not network.has_fiber(u, v):
            report.add(f"missing fiber {u!r}-{v!r} on channel {path}")
            return
    expected = channel_log_rate(network, path)
    if not math.isclose(
        expected, channel.log_rate, rel_tol=rate_tolerance, abs_tol=rate_tolerance
    ):
        report.add(
            f"channel {path} log-rate {channel.log_rate} != Eq.(1) "
            f"value {expected}"
        )
