"""Algorithm 1 — maximum-entanglement-rate channel between two users.

Eq. (1) is a product, not a sum, so Dijkstra does not apply directly.
Following Sec. IV-A, each fiber edge gets weight ``α·L − ln q`` so that a
shortest path in weight space is a maximum-rate channel, with the final
rate recovered as ``exp(−ln q − Dist)``.

Implementation notes (equivalent reformulation):

* We charge the ``−ln q`` term when *leaving* an intermediate switch
  rather than uniformly per edge, which is the same total for any
  user-switch-…-user path but also handles the degenerate ``q = 0`` case
  (direct user-user fibers still work; multi-hop rates collapse to 0).
* Only switches with at least 2 residual qubits may relay (Algorithm 1,
  line 11: ``Q_{u_h} ≥ 2``), and quantum users other than the endpoints
  can never relay (a channel is "a path through vertices in R", Def. 2).
* ``best_channels_from`` runs the search once per *source* and recovers
  all destinations through the ``Prev`` array — the complexity
  optimization described after Theorem 3, giving
  ``O(|U|(|E| + |V| log |V|))`` for the all-pairs step.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.problem import Channel
from repro.core.rates import swap_log_rate
from repro.exec import cache as exec_cache
from repro.network.graph import QuantumNetwork
import repro.obs.metrics as obs_metrics
from repro.utils.heap import IndexedMinHeap

__all__ = [
    "dijkstra",
    "trace_path",
    "find_best_channel",
    "best_channels_from",
    "all_pairs_best_channels",
]


def _residual_qubits(
    network: QuantumNetwork,
    residual: Optional[Dict[Hashable, int]],
) -> Dict[Hashable, int]:
    """Effective residual qubit budget per switch."""
    if residual is None:
        return network.residual_qubits()
    return residual


def dijkstra(
    network: QuantumNetwork,
    source: Hashable,
    residual: Optional[Dict[Hashable, int]] = None,
    forbidden_fibers: Optional[Set[Tuple[Hashable, Hashable]]] = None,
    allow_switch_source: bool = False,
) -> Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]:
    """Single-source max-rate search (Algorithm 1's main loop).

    This is the public channel-search primitive (the building block
    :func:`find_best_channel` / :func:`best_channels_from` and the
    Yen-style spur searches in :mod:`repro.core.kbest` share); pair it
    with :func:`trace_path` to materialize concrete paths.

    Returns ``(dist, prev)`` where ``dist[x]`` is the accumulated weight
    ``α·ΣL − (#swaps)·ln q`` of the best partial channel from *source* to
    ``x`` and ``prev`` traces the path.  Quantum users are reachable as
    terminals but never expanded; switches are expanded only while they
    hold at least 2 residual qubits.

    ``allow_switch_source`` lets spur-search callers start from a
    switch; the source's own swap cost is then the caller's
    responsibility (it is a constant offset across all returned paths,
    so argmax comparisons stay valid).

    Profiling: each call publishes ``core.dijkstra.calls`` /
    ``.heap_pops`` / ``.edges_scanned`` / ``.relaxations`` counters to
    the active :class:`~repro.obs.metrics.MetricsRegistry` (one batch
    at return, so per-iteration cost is three local integer bumps).

    Caching: when a :class:`~repro.exec.cache.ChannelCache` is active
    (:func:`repro.exec.cache.caching`), results are memoized under an
    exact key — routing fingerprint, source, blocked-switch set,
    forbidden fibers — so a hit returns the byte-identical ``(dist,
    prev)`` a recomputation would have produced.  The search only reads
    residual capacities through the "≥ 2 free qubits" relay predicate,
    which is why the blocked-switch *set* (not the raw counts) fully
    captures the residual state's influence.
    """
    if not allow_switch_source and not network.is_user(source):
        raise ValueError(f"source {source!r} must be a quantum user")
    qubits = _residual_qubits(network, residual)
    cache = exec_cache.active()
    cache_key = None
    if cache is not None:
        cache_key = cache.key_for(
            network, qubits, source, forbidden_fibers, allow_switch_source
        )
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        warmed = cache.warm_lookup(cache_key, network)
        if warmed is not None:
            return warmed
    alpha = network.params.alpha
    minus_ln_q = -swap_log_rate(network.params.swap_prob)  # in [0, +inf]

    dist: Dict[Hashable, float] = {source: 0.0}
    prev: Dict[Hashable, Hashable] = {}
    visited: Set[Hashable] = set()
    heap = IndexedMinHeap()
    heap.push(source, 0.0)
    heap_pops = 0
    edges_scanned = 0
    relaxations = 0

    while len(heap):
        node, node_dist = heap.pop_min()
        heap_pops += 1
        if node in visited:
            continue
        visited.add(node)
        # Only the source user and capable switches may relay onward.
        if node != source:
            if not network.is_switch(node):
                continue
            if qubits.get(node, 0) < 2:
                continue
        swap_cost = 0.0 if node == source else minus_ln_q
        if math.isinf(swap_cost):
            continue  # q = 0: cannot extend beyond the source's own links
        for fiber in network.incident_fibers(node):
            edges_scanned += 1
            neighbor = fiber.other_end(node)
            if neighbor in visited:
                continue
            if forbidden_fibers and fiber.key in forbidden_fibers:
                continue
            # A neighbor is enterable if it terminates (any user) or can
            # potentially relay (switch with >= 2 residual qubits).
            if network.is_switch(neighbor) and qubits.get(neighbor, 0) < 2:
                continue
            candidate = node_dist + swap_cost + alpha * fiber.length
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heap.push(neighbor, candidate)
                relaxations += 1
    metrics = obs_metrics.active()
    if metrics is not None:
        metrics.inc("core.dijkstra.calls")
        metrics.inc("core.dijkstra.heap_pops", heap_pops)
        metrics.inc("core.dijkstra.edges_scanned", edges_scanned)
        metrics.inc("core.dijkstra.relaxations", relaxations)
        metrics.inc("core.dijkstra.nodes_settled", len(visited))
    if cache is not None:
        cache.put(cache_key, (dist, prev))
    return dist, prev


def trace_path(
    prev: Dict[Hashable, Hashable], source: Hashable, target: Hashable
) -> Tuple[Hashable, ...]:
    """Recover the source→target path from :func:`dijkstra`'s ``prev``.

    Raises ``KeyError`` when *target* was unreachable (absent from the
    predecessor map); callers are expected to test membership in the
    returned ``dist`` first, as the channel helpers here do.
    """
    path: List[Hashable] = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return tuple(path)


#: Deprecated pre-1.1 private names, kept as importable aliases.
_DEPRECATED_ALIASES = {"_dijkstra": dijkstra, "_trace_path": trace_path}


def __getattr__(name: str):
    if name in _DEPRECATED_ALIASES:
        warnings.warn(
            f"repro.core.channel.{name} is deprecated; use the public "
            f"repro.core.channel.{name.lstrip('_')} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _DEPRECATED_ALIASES[name]
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def find_best_channel(
    network: QuantumNetwork,
    source: Hashable,
    target: Hashable,
    residual: Optional[Dict[Hashable, int]] = None,
    forbidden_fibers: Optional[Set[Tuple[Hashable, Hashable]]] = None,
) -> Optional[Channel]:
    """Algorithm 1: best channel between users *source* and *target*.

    Args:
        network: The quantum network.
        source, target: Distinct quantum-user ids.
        residual: Optional remaining-qubit map per switch (defaults to
            each switch's full budget); switches below 2 qubits are
            skipped, as in line 11 of Algorithm 1.
        forbidden_fibers: Optional set of fiber keys the channel must not
            use (supports the edge-removal study and ablations).

    Returns:
        The maximum-rate :class:`Channel`, or ``None`` when no feasible
        channel exists ("No valid channel", line 19).
    """
    if source == target:
        raise ValueError("source and target must differ")
    if not network.is_user(target):
        raise ValueError(f"target {target!r} must be a quantum user")
    metrics = obs_metrics.active()
    if metrics is not None:
        metrics.inc("core.channel_search.pair_calls")
    dist, prev = dijkstra(network, source, residual, forbidden_fibers)
    if target not in dist:
        return None
    return Channel.from_path(network, trace_path(prev, source, target))


def best_channels_from(
    network: QuantumNetwork,
    source: Hashable,
    targets: Iterable[Hashable],
    residual: Optional[Dict[Hashable, int]] = None,
) -> Dict[Hashable, Channel]:
    """Best channels from *source* to every reachable user in *targets*.

    One Dijkstra run serves all destinations (the paper's complexity
    optimization).  Unreachable targets are absent from the result.
    """
    target_list = list(targets)
    for target in target_list:
        if not network.is_user(target):
            raise ValueError(f"target {target!r} must be a quantum user")
    dist, prev = dijkstra(network, source, residual)
    channels: Dict[Hashable, Channel] = {}
    for target in target_list:
        if target == source or target not in dist:
            continue
        channels[target] = Channel.from_path(
            network, trace_path(prev, source, target)
        )
    metrics = obs_metrics.active()
    if metrics is not None:
        metrics.inc("core.channel_search.single_source_calls")
        metrics.inc("core.channel_search.channels_found", len(channels))
    return channels


def all_pairs_best_channels(
    network: QuantumNetwork,
    users: List[Hashable],
    residual: Optional[Dict[Hashable, int]] = None,
) -> Dict[frozenset, Channel]:
    """Best channel for every unordered user pair (step 1 of Algorithm 2).

    Pairs with no feasible channel are absent.  Runs ``|U| - 1``
    single-source searches instead of ``O(|U|²)`` pairwise ones.
    """
    channels: Dict[frozenset, Channel] = {}
    for index, source in enumerate(users[:-1]):
        found = best_channels_from(
            network, source, users[index + 1 :], residual
        )
        for target, channel in found.items():
            channels[frozenset((source, target))] = channel
    return channels
