"""Algorithm 1 — maximum-entanglement-rate channel between two users.

Eq. (1) is a product, not a sum, so Dijkstra does not apply directly.
Following Sec. IV-A, each fiber edge gets weight ``α·L − ln q`` so that a
shortest path in weight space is a maximum-rate channel, with the final
rate recovered as ``exp(−ln q − Dist)``.

Implementation notes (equivalent reformulation):

* We charge the ``−ln q`` term when *leaving* an intermediate switch
  rather than uniformly per edge, which is the same total for any
  user-switch-…-user path but also handles the degenerate ``q = 0`` case
  (direct user-user fibers still work; multi-hop rates collapse to 0).
* Only switches with at least 2 residual qubits may relay (Algorithm 1,
  line 11: ``Q_{u_h} ≥ 2``), and quantum users other than the endpoints
  can never relay (a channel is "a path through vertices in R", Def. 2).
* ``best_channels_from`` runs the search once per *source* and recovers
  all destinations through the ``Prev`` array — the complexity
  optimization described after Theorem 3, giving
  ``O(|U|(|E| + |V| log |V|))`` for the all-pairs step.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.problem import Channel
from repro.core.rates import swap_log_rate
from repro.network.graph import QuantumNetwork
from repro.utils.heap import IndexedMinHeap


def _residual_qubits(
    network: QuantumNetwork,
    residual: Optional[Dict[Hashable, int]],
) -> Dict[Hashable, int]:
    """Effective residual qubit budget per switch."""
    if residual is None:
        return network.residual_qubits()
    return residual


def _dijkstra(
    network: QuantumNetwork,
    source: Hashable,
    residual: Optional[Dict[Hashable, int]] = None,
    forbidden_fibers: Optional[Set[Tuple[Hashable, Hashable]]] = None,
    allow_switch_source: bool = False,
) -> Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]:
    """Single-source max-rate search (Algorithm 1's main loop).

    Returns ``(dist, prev)`` where ``dist[x]`` is the accumulated weight
    ``α·ΣL − (#swaps)·ln q`` of the best partial channel from *source* to
    ``x`` and ``prev`` traces the path.  Quantum users are reachable as
    terminals but never expanded; switches are expanded only while they
    hold at least 2 residual qubits.

    ``allow_switch_source`` lets internal callers (Yen's spur searches in
    :mod:`repro.core.kbest`) start from a switch; the source's own swap
    cost is then the caller's responsibility (it is a constant offset
    across all returned paths, so argmax comparisons stay valid).
    """
    if not allow_switch_source and not network.is_user(source):
        raise ValueError(f"source {source!r} must be a quantum user")
    qubits = _residual_qubits(network, residual)
    alpha = network.params.alpha
    minus_ln_q = -swap_log_rate(network.params.swap_prob)  # in [0, +inf]

    dist: Dict[Hashable, float] = {source: 0.0}
    prev: Dict[Hashable, Hashable] = {}
    visited: Set[Hashable] = set()
    heap = IndexedMinHeap()
    heap.push(source, 0.0)

    while len(heap):
        node, node_dist = heap.pop_min()
        if node in visited:
            continue
        visited.add(node)
        # Only the source user and capable switches may relay onward.
        if node != source:
            if not network.is_switch(node):
                continue
            if qubits.get(node, 0) < 2:
                continue
        swap_cost = 0.0 if node == source else minus_ln_q
        if math.isinf(swap_cost):
            continue  # q = 0: cannot extend beyond the source's own links
        for fiber in network.incident_fibers(node):
            neighbor = fiber.other_end(node)
            if neighbor in visited:
                continue
            if forbidden_fibers and fiber.key in forbidden_fibers:
                continue
            # A neighbor is enterable if it terminates (any user) or can
            # potentially relay (switch with >= 2 residual qubits).
            if network.is_switch(neighbor) and qubits.get(neighbor, 0) < 2:
                continue
            candidate = node_dist + swap_cost + alpha * fiber.length
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heap.push(neighbor, candidate)
    return dist, prev


def _trace_path(
    prev: Dict[Hashable, Hashable], source: Hashable, target: Hashable
) -> Tuple[Hashable, ...]:
    """Recover the source→target path from the ``Prev`` array."""
    path: List[Hashable] = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return tuple(path)


def find_best_channel(
    network: QuantumNetwork,
    source: Hashable,
    target: Hashable,
    residual: Optional[Dict[Hashable, int]] = None,
    forbidden_fibers: Optional[Set[Tuple[Hashable, Hashable]]] = None,
) -> Optional[Channel]:
    """Algorithm 1: best channel between users *source* and *target*.

    Args:
        network: The quantum network.
        source, target: Distinct quantum-user ids.
        residual: Optional remaining-qubit map per switch (defaults to
            each switch's full budget); switches below 2 qubits are
            skipped, as in line 11 of Algorithm 1.
        forbidden_fibers: Optional set of fiber keys the channel must not
            use (supports the edge-removal study and ablations).

    Returns:
        The maximum-rate :class:`Channel`, or ``None`` when no feasible
        channel exists ("No valid channel", line 19).
    """
    if source == target:
        raise ValueError("source and target must differ")
    if not network.is_user(target):
        raise ValueError(f"target {target!r} must be a quantum user")
    dist, prev = _dijkstra(network, source, residual, forbidden_fibers)
    if target not in dist:
        return None
    return Channel.from_path(network, _trace_path(prev, source, target))


def best_channels_from(
    network: QuantumNetwork,
    source: Hashable,
    targets: Iterable[Hashable],
    residual: Optional[Dict[Hashable, int]] = None,
) -> Dict[Hashable, Channel]:
    """Best channels from *source* to every reachable user in *targets*.

    One Dijkstra run serves all destinations (the paper's complexity
    optimization).  Unreachable targets are absent from the result.
    """
    target_list = list(targets)
    for target in target_list:
        if not network.is_user(target):
            raise ValueError(f"target {target!r} must be a quantum user")
    dist, prev = _dijkstra(network, source, residual)
    channels: Dict[Hashable, Channel] = {}
    for target in target_list:
        if target == source or target not in dist:
            continue
        channels[target] = Channel.from_path(
            network, _trace_path(prev, source, target)
        )
    return channels


def all_pairs_best_channels(
    network: QuantumNetwork,
    users: List[Hashable],
    residual: Optional[Dict[Hashable, int]] = None,
) -> Dict[frozenset, Channel]:
    """Best channel for every unordered user pair (step 1 of Algorithm 2).

    Pairs with no feasible channel are absent.  Runs ``|U| - 1``
    single-source searches instead of ``O(|U|²)`` pairwise ones.
    """
    channels: Dict[frozenset, Channel] = {}
    for index, source in enumerate(users[:-1]):
        found = best_channels_from(
            network, source, users[index + 1 :], residual
        )
        for target, channel in found.items():
            channels[frozenset((source, target))] = channel
    return channels
