"""Entanglement-rate arithmetic (Eq. 1 and Eq. 2 of the paper).

A quantum channel ``Λ = (v_0, …, v_l)`` between users ``v_0`` and ``v_l``
through ``l-1`` switches succeeds iff all ``l`` quantum links generate
and all ``l-1`` BSM swaps succeed simultaneously:

    P_Λ = q^{l-1} · Π p_{i,i+1} = q^{l-1} · exp(-α Σ L_{i,i+1})     (Eq. 1)

An entanglement tree succeeds iff every channel does:

    P = Π_{Λ ∈ A} P_Λ                                              (Eq. 2)

Products of many sub-unit probabilities underflow quickly (the paper's
plots reach 1e-7), so the whole library works in natural-log space and
exponentiates only at the edge of the API.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import QuantumNetwork


def link_log_rate(length: float, alpha: float) -> float:
    """Log success probability of one quantum link: ``-α·L``."""
    return -alpha * length


def swap_log_rate(swap_prob: float) -> float:
    """Log success probability of one BSM swap (``-inf`` for q = 0)."""
    if swap_prob <= 0.0:
        return -math.inf
    return math.log(swap_prob)


def channel_log_rate_from_lengths(
    lengths: Sequence[float], alpha: float, swap_prob: float
) -> float:
    """Log of Eq. (1) given the fiber segment lengths along the channel.

    ``len(lengths)`` is the number of quantum links ``l``; the channel
    crosses ``l - 1`` switches.
    """
    n_links = len(lengths)
    if n_links == 0:
        raise ValueError("a channel needs at least one quantum link")
    log_links = -alpha * math.fsum(lengths)
    n_swaps = n_links - 1
    if n_swaps == 0:
        return log_links
    return log_links + n_swaps * swap_log_rate(swap_prob)


def channel_log_rate(
    network: "QuantumNetwork", path: Sequence[Hashable]
) -> float:
    """Log of Eq. (1) for a node-id *path* in *network*.

    Every consecutive pair must be joined by a fiber; raises ``KeyError``
    style errors otherwise (via the network lookups).
    """
    if len(path) < 2:
        raise ValueError(f"path must have >= 2 nodes, got {list(path)!r}")
    lengths = []
    for u, v in zip(path, path[1:]):
        fiber = network.fiber_between(u, v)
        if fiber is None:
            raise ValueError(f"no fiber between {u!r} and {v!r} on path")
        lengths.append(fiber.length)
    return channel_log_rate_from_lengths(
        lengths, network.params.alpha, network.params.swap_prob
    )


def channel_rate(network: "QuantumNetwork", path: Sequence[Hashable]) -> float:
    """Eq. (1) in linear space."""
    return math.exp(channel_log_rate(network, path))


def tree_log_rate(channel_log_rates: Iterable[float]) -> float:
    """Log of Eq. (2): sum of the member channels' log rates."""
    return math.fsum(channel_log_rates)


def tree_rate(channel_log_rates: Iterable[float]) -> float:
    """Eq. (2) in linear space."""
    return math.exp(tree_log_rate(channel_log_rates))
