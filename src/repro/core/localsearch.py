"""Local-search post-optimization of entanglement trees.

Algorithms 3 and 4 are constructive greedies; their output can often be
improved by local moves that the construction order hid.  This module
implements a hill climber over two moves, each of which preserves
feasibility by construction:

* **Re-route** — remove one channel, return its qubits to the residual
  pool, and route the same user pair again with Algorithm 1; keep the
  result if strictly better (the freed qubits may enable a better path
  than was available mid-construction).
* **Reconnect** — remove one channel, which splits the user tree into
  two components, then reconnect the components with the best
  capacity-aware channel over *any* cross-component user pair (not
  necessarily the original endpoints).

The climber applies the best improving move until a local optimum, with
an iteration cap.  It never degrades a solution, so
``improve(solve_prim(...))`` is a strictly-no-worse heuristic — measured
against the plain heuristics in ``benchmarks/test_localsearch.py``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.channel import best_channels_from, find_best_channel
from repro.core.problem import Channel, MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.unionfind import UnionFind


def improve_solution(
    network: QuantumNetwork,
    solution: MUERPSolution,
    max_rounds: int = 50,
    tolerance: float = 1e-12,
) -> MUERPSolution:
    """Hill-climb *solution* with re-route and reconnect moves.

    Returns a solution with ``log_rate >= solution.log_rate`` (returns
    the input object unchanged when it is infeasible or already locally
    optimal).  The result's method name gains a ``"+ls"`` suffix.
    """
    if not solution.feasible or not solution.channels:
        return solution

    channels: List[Channel] = list(solution.channels)
    users = sorted(solution.users, key=repr)
    improved_any = False

    for _ in range(max_rounds):
        move = _best_move(network, channels, users, tolerance)
        if move is None:
            break
        index, replacement = move
        channels[index] = replacement
        improved_any = True

    if not improved_any:
        return solution
    return MUERPSolution(
        channels=tuple(channels),
        users=solution.users,
        method=solution.method + "+ls",
        feasible=True,
        extra_log_rate=solution.extra_log_rate,
    )


def _best_move(
    network: QuantumNetwork,
    channels: List[Channel],
    users: List[Hashable],
    tolerance: float,
) -> Optional[Tuple[int, Channel]]:
    """Best single-channel replacement improving total log rate."""
    best_gain = tolerance
    best: Optional[Tuple[int, Channel]] = None
    for index, channel in enumerate(channels):
        residual = _residual_without(network, channels, index)
        replacement = _best_replacement(
            network, channels, index, users, residual
        )
        if replacement is None:
            continue
        gain = replacement.log_rate - channel.log_rate
        if gain > best_gain:
            best_gain = gain
            best = (index, replacement)
    return best


def _residual_without(
    network: QuantumNetwork,
    channels: List[Channel],
    skip_index: int,
) -> Dict[Hashable, int]:
    """Residual qubits with every channel but one deducted."""
    residual = network.residual_qubits()
    for index, channel in enumerate(channels):
        if index == skip_index:
            continue
        for switch in channel.switches:
            residual[switch] -= 2
    return residual


def _best_replacement(
    network: QuantumNetwork,
    channels: List[Channel],
    index: int,
    users: List[Hashable],
    residual: Dict[Hashable, int],
) -> Optional[Channel]:
    """Best channel reconnecting the two components split by removal.

    Covers both moves: the original endpoints are one of the candidate
    cross pairs (re-route) and all other cross pairs realise the
    reconnect move.
    """
    remaining = [c for i, c in enumerate(channels) if i != index]
    unions = UnionFind(users)
    for channel in remaining:
        unions.union(*channel.endpoints)
    side_a = [u for u in users if unions.connected(u, channels[index].endpoints[0])]
    side_b = [u for u in users if u not in set(side_a)]
    if not side_a or not side_b:
        return None  # removal didn't split: shouldn't happen on a tree

    best: Optional[Channel] = None
    for source in side_a:
        found = best_channels_from(network, source, side_b, residual)
        for candidate in found.values():
            if best is None or candidate.log_rate > best.log_rate:
                best = candidate
    return best
