"""Algorithm 3 — the "Conflict-free" capacity-resolving heuristic.

Algorithm 2 ignores switch capacity; when budgets are tight its channel
set can overload switches.  Algorithm 3 repairs this in two phases:

* **Phase 1 (greedy retention).**  Walk Algorithm 2's channels in
  descending rate order; admit a channel only if every switch on it
  still has ≥ 2 residual qubits, deducting 2 per transit switch.  The
  greedy retention of max-rate channels is the paper's explicit design
  choice ("we adopt a greedy strategy that always opts to retain the
  channel with the maximum entanglement rate").
* **Phase 2 (reconnection).**  Rejected channels leave the users split
  into several unions.  Repeatedly find, over all user pairs in distinct
  unions, the maximum-rate channel that respects residual capacity
  (Algorithm 1 with the residual map), add the best one and merge, until
  one union remains or no channel exists (→ infeasible, rate 0).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.channel import best_channels_from
from repro.core.optimal import channel_sort_key, solve_optimal
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.unionfind import UnionFind


def _admit(
    channel: Channel,
    residual: Dict[Hashable, int],
) -> bool:
    """Whether *channel* fits in *residual*; deducts qubits when it does."""
    switches = channel.switches
    if any(residual.get(s, 0) < 2 for s in switches):
        return False
    for switch in switches:
        residual[switch] -= 2
    return True


def solve_conflict_free(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    base_channels: Optional[Sequence[Channel]] = None,
    retention: str = "greedy",
    rng: RngLike = None,
    residual: Optional[Dict[Hashable, int]] = None,
) -> MUERPSolution:
    """Algorithm 3.

    Args:
        network: The quantum network.
        users: Users to entangle (default: all network users).
        base_channels: The candidate channel set ``A`` (defaults to
            Algorithm 2's output, as in the paper).
        retention: ``"greedy"`` (paper) admits Phase-1 channels in
            descending rate order; ``"random"`` shuffles them — the
            ablation documented in DESIGN.md §4.
        rng: Random source for ``retention="random"``.
        residual: Optional shared residual-qubit map (switch → qubits);
            mutated in place so several routing requests can share one
            budget (the multi-group extension).

    Returns:
        A capacity-feasible :class:`MUERPSolution`, infeasible (rate 0)
        when no spanning tree fits the switch budgets.
    """
    user_list = resolve_users(network, users)
    if base_channels is None:
        base = solve_optimal(network, user_list)
        base_channels = base.channels if base.feasible else ()

    if retention == "greedy":
        ordered = sorted(base_channels, key=channel_sort_key)
    elif retention == "random":
        ordered = list(base_channels)
        ensure_rng(rng).shuffle(ordered)
    else:
        raise ValueError(f"unknown retention policy {retention!r}")

    if residual is None:
        residual = network.residual_qubits()
    unions = UnionFind(user_list)
    selected: List[Channel] = []

    # Phase 1: keep what fits, in retention order.
    for channel in ordered:
        a, b = channel.endpoints
        if unions.connected(a, b):
            continue
        if _admit(channel, residual):
            unions.union(a, b)
            selected.append(channel)

    # Phase 2: reconnect the remaining unions with capacity-aware routing.
    while unions.n_components > 1:
        best: Optional[Channel] = None
        for index, source in enumerate(user_list):
            targets = [
                t
                for t in user_list[index + 1 :]
                if not unions.connected(source, t)
            ]
            if not targets:
                continue
            found = best_channels_from(network, source, targets, residual)
            for channel in found.values():
                if best is None or channel_sort_key(channel) < channel_sort_key(best):
                    best = channel
        if best is None:
            return infeasible_solution(user_list, "conflict_free")
        admitted = _admit(best, residual)
        assert admitted, "capacity-aware search returned an unroutable channel"
        unions.union(*best.endpoints)
        selected.append(best)

    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="conflict_free",
        feasible=True,
    )
