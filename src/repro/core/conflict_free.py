"""Algorithm 3 — the "Conflict-free" capacity-resolving heuristic.

Algorithm 2 ignores switch capacity; when budgets are tight its channel
set can overload switches.  Algorithm 3 repairs this in two phases:

* **Phase 1 (greedy retention).**  Walk Algorithm 2's channels in
  descending rate order; admit a channel only if every switch on it
  still has ≥ 2 residual qubits, deducting 2 per transit switch.  The
  greedy retention of max-rate channels is the paper's explicit design
  choice ("we adopt a greedy strategy that always opts to retain the
  channel with the maximum entanglement rate").
* **Phase 2 (reconnection).**  Rejected channels leave the users split
  into several unions.  Repeatedly find, over all user pairs in distinct
  unions, the maximum-rate channel that respects residual capacity
  (Algorithm 1 with the residual map), add the best one and merge, until
  one union remains or no channel exists (→ infeasible, rate 0).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.channel import best_channels_from
from repro.core.ledger import CapacityLedger
from repro.core.optimal import channel_sort_key, solve_optimal
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.unionfind import UnionFind


class _Infeasible(Exception):
    """Internal control flow: abort the solve and roll back reservations."""


def solve_conflict_free(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    base_channels: Optional[Sequence[Channel]] = None,
    retention: str = "greedy",
    rng: RngLike = None,
    residual: Optional[Dict[Hashable, int]] = None,
) -> MUERPSolution:
    """Algorithm 3.

    Args:
        network: The quantum network.
        users: Users to entangle (default: all network users).
        base_channels: The candidate channel set ``A`` (defaults to
            Algorithm 2's output, as in the paper).
        retention: ``"greedy"`` (paper) admits Phase-1 channels in
            descending rate order; ``"random"`` shuffles them — the
            ablation documented in DESIGN.md §4.
        rng: Random source for ``retention="random"``.
        residual: Optional shared residual-qubit map (switch → qubits)
            or :class:`~repro.core.ledger.CapacityLedger`, so several
            routing requests can share one budget (the multi-group
            extension).  The account is transactional: reservations are
            published to a caller-supplied dict only when this call
            returns a *feasible* tree; a mid-solve exception or an
            infeasible outcome leaves it untouched.

    Returns:
        A capacity-feasible :class:`MUERPSolution`, infeasible (rate 0)
        when no spanning tree fits the switch budgets.
    """
    user_list = resolve_users(network, users)
    if base_channels is None:
        base = solve_optimal(network, user_list)
        base_channels = base.channels if base.feasible else ()

    if retention == "greedy":
        ordered = sorted(base_channels, key=channel_sort_key)
    elif retention == "random":
        ordered = list(base_channels)
        ensure_rng(rng).shuffle(ordered)
    else:
        raise ValueError(f"unknown retention policy {retention!r}")

    ledger = CapacityLedger.adopt(residual, network)
    unions = UnionFind(user_list)
    selected: List[Channel] = []

    try:
        with ledger.transaction():
            # Phase 1: keep what fits, in retention order.
            for channel in ordered:
                a, b = channel.endpoints
                if unions.connected(a, b):
                    continue
                if ledger.try_reserve_channel(channel):
                    unions.union(a, b)
                    selected.append(channel)

            # Phase 2: reconnect remaining unions with capacity-aware
            # routing.
            while unions.n_components > 1:
                best: Optional[Channel] = None
                for index, source in enumerate(user_list):
                    targets = [
                        t
                        for t in user_list[index + 1 :]
                        if not unions.connected(source, t)
                    ]
                    if not targets:
                        continue
                    found = best_channels_from(
                        network, source, targets, ledger
                    )
                    for channel in found.values():
                        if best is None or channel_sort_key(channel) < channel_sort_key(best):
                            best = channel
                if best is None:
                    raise _Infeasible()
                admitted = ledger.try_reserve_channel(best)
                assert admitted, (
                    "capacity-aware search returned an unroutable channel"
                )
                unions.union(*best.endpoints)
                selected.append(best)
    except _Infeasible:
        return infeasible_solution(user_list, "conflict_free")

    if residual is not None and not isinstance(residual, CapacityLedger):
        ledger.write_back(residual)
    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="conflict_free",
        feasible=True,
    )
