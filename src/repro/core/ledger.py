"""Transactional residual-capacity accounting for switch qubits.

Algorithms 3 and 4, the online scheduler and the multi-group extension
all track "free qubits per switch" while they build trees.  Before this
module each did so with a bare mutable dict, so an exception thrown
mid-solve left phantom reservations behind.  :class:`CapacityLedger`
centralizes the bookkeeping with transaction semantics:

* **reserve / release** are all-or-nothing and raise
  :class:`CapacityError` before any partial mutation;
* **transaction()** scopes a group of reservations: leaving the block
  through an exception rolls every change inside it back, leaving the
  account bit-identical to the entry snapshot;
* **adopt / write_back** bridge to the legacy shared-dict protocol the
  solvers expose (``residual=`` maps mutated in place): a solver runs
  against a private ledger and publishes the deltas to the caller's
  dict only when it actually produced a feasible tree.

The ledger also keeps a high-water mark per switch (peak usage
telemetry) and can report the tightest switches via an indexed heap —
the operator-facing "which switch will exhaust first" question.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Tuple,
)

import repro.obs.metrics as obs_metrics
from repro.exec import cache as exec_cache
from repro.utils.heap import IndexedMinHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import Channel
    from repro.network.graph import QuantumNetwork

#: Qubits one transit channel pins at a switch (Def. 3 of the paper).
QUBITS_PER_CHANNEL = 2


class CapacityError(RuntimeError):
    """A reservation or release that the ledger cannot honour.

    Attributes:
        switch: The offending switch id.
        requested: Qubits the operation asked for.
        available: Qubits actually available (or releasable headroom).
    """

    def __init__(
        self, message: str, switch: Hashable, requested: int, available: int
    ) -> None:
        super().__init__(message)
        self.switch = switch
        self.requested = requested
        self.available = available


class CapacityLedger:
    """Transactional account of residual switch qubits.

    The read side is a ``Mapping``-compatible subset (``get``,
    ``__getitem__``, ``in``, ``len``) so a ledger can be handed directly
    to the channel search (:func:`repro.core.channel.best_channels_from`)
    wherever a plain residual dict was accepted before.

    Args:
        available: Initial free qubits per switch.
        budgets: Full per-switch budgets for peak/utilization telemetry;
            defaults to *available* (i.e. the ledger assumes it starts
            from an idle network).
    """

    def __init__(
        self,
        available: Mapping[Hashable, int],
        budgets: Optional[Mapping[Hashable, int]] = None,
    ) -> None:
        self._avail: Dict[Hashable, int] = dict(available)
        for switch, qubits in self._avail.items():
            if qubits < 0:
                raise ValueError(
                    f"negative initial capacity {qubits} for {switch!r}"
                )
        self._budgets: Dict[Hashable, int] = (
            dict(budgets) if budgets is not None else dict(self._avail)
        )
        #: Per-switch high-water mark of (budget - available).
        self._peak: Dict[Hashable, int] = {
            s: max(0, self._budgets.get(s, q) - q)
            for s, q in self._avail.items()
        }
        #: Stack of journals: (switch, delta-applied) entries, innermost last.
        self._journals: List[List[Tuple[Hashable, int]]] = []
        #: Switches whose availability changed since construction.
        self._dirty: set = set()
        #: Largest single-switch usage seen (peak-occupancy telemetry).
        self._peak_global: int = max(self._peak.values(), default=0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network: "QuantumNetwork") -> "CapacityLedger":
        """A ledger over *network*'s full idle budgets."""
        budgets = network.residual_qubits()
        return cls(budgets, budgets)

    @classmethod
    def adopt(
        cls,
        residual: Optional[Mapping[Hashable, int]],
        network: "QuantumNetwork",
    ) -> "CapacityLedger":
        """Normalize a legacy ``residual=`` argument into a ledger.

        ``None`` means the network's idle budgets; an existing ledger is
        returned as-is; a plain mapping is copied (the caller's dict is
        only touched again through :meth:`write_back`).
        """
        if residual is None:
            return cls.from_network(network)
        if isinstance(residual, CapacityLedger):
            return residual
        return cls(residual, network.residual_qubits())

    # ------------------------------------------------------------------
    # Read side (Mapping-compatible subset)
    # ------------------------------------------------------------------
    def get(self, switch: Hashable, default: int = 0) -> int:
        return self._avail.get(switch, default)

    def __getitem__(self, switch: Hashable) -> int:
        return self._avail[switch]

    def __contains__(self, switch: Hashable) -> bool:
        return switch in self._avail

    def __len__(self) -> int:
        return len(self._avail)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._avail)

    def keys(self):
        return self._avail.keys()

    def values(self):
        return self._avail.values()

    def items(self):
        return self._avail.items()

    def available(self, switch: Hashable) -> int:
        """Free qubits at *switch* (0 for unknown switches)."""
        return self._avail.get(switch, 0)

    def budget(self, switch: Hashable) -> int:
        """Full budget of *switch* (0 for unknown switches)."""
        return self._budgets.get(switch, 0)

    def used(self, switch: Hashable) -> int:
        """Qubits currently reserved at *switch*."""
        return self.budget(switch) - self.available(switch)

    def as_dict(self) -> Dict[Hashable, int]:
        """Copy of the current availability map."""
        return dict(self._avail)

    def snapshot(self) -> Dict[Hashable, int]:
        """Alias of :meth:`as_dict`, named for test assertions."""
        return dict(self._avail)

    def peak_usage(self) -> Dict[Hashable, int]:
        """High-water qubit usage per switch since construction."""
        return dict(self._peak)

    def tightest(self, k: int = 3) -> List[Tuple[Hashable, int]]:
        """The *k* switches with the least remaining capacity.

        Uses the indexed heap so repeated telemetry pulls stay cheap on
        large networks; ties break deterministically by switch repr.
        """
        heap = IndexedMinHeap()
        order = {s: i for i, s in enumerate(sorted(self._avail, key=repr))}
        for switch, free in self._avail.items():
            heap.push(switch, free * (len(order) + 1) + order[switch])
        out: List[Tuple[Hashable, int]] = []
        while len(heap) and len(out) < k:
            switch, _ = heap.pop_min()
            out.append((switch, self._avail[switch]))
        return out

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def _apply(self, switch: Hashable, delta: int) -> None:
        """Apply a signed availability delta, journalled for rollback."""
        old = self._avail.get(switch, 0)
        new = old + delta
        self._avail[switch] = new
        self._dirty.add(switch)
        if self._journals:
            self._journals[-1].append((switch, delta))
        used = self._budgets.get(switch, 0) - new
        if used > self._peak.get(switch, 0):
            self._peak[switch] = used
            if used > self._peak_global:
                self._peak_global = used
        # A crossing of the 2-qubit relay threshold flips the switch's
        # polarity in every channel-cache blocked-set signature: tell
        # the active cache so stranded entries are dropped eagerly.
        if (old >= QUBITS_PER_CHANNEL) != (new >= QUBITS_PER_CHANNEL):
            now_blocked = new < QUBITS_PER_CHANNEL
            cache = exec_cache.active()
            if cache is not None:
                cache.invalidate_switch(switch, now_blocked=now_blocked)
            self._publish_crossing(switch, now_blocked)

    @staticmethod
    def _publish_crossing(switch: Hashable, now_blocked: bool) -> None:
        """Emit a capacity-crossing delta event when a bus is active.

        Residual-only: the routing fingerprint is unchanged, so the bus
        performs no cache hygiene beyond the ``invalidate_switch`` the
        caller already did — subscribers (e.g. the incremental router's
        event log) just learn the polarity flip.
        """
        from repro.incremental import delta as incremental_delta

        bus = incremental_delta.active()
        if bus is None:
            return
        from repro.incremental.events import DeltaEvent

        bus.publish(DeltaEvent.capacity_crossing(switch, now_blocked))

    def can_reserve(self, usage: Mapping[Hashable, int]) -> bool:
        """Whether every switch in *usage* has the requested headroom."""
        return all(
            self._avail.get(switch, 0) >= qubits
            for switch, qubits in usage.items()
        )

    def reserve(self, usage: Mapping[Hashable, int]) -> None:
        """Atomically reserve *usage* qubits; all-or-nothing.

        Raises :class:`CapacityError` (before mutating anything) when
        any switch lacks the headroom.
        """
        for switch in sorted(usage, key=repr):
            qubits = usage[switch]
            if qubits < 0:
                raise ValueError(
                    f"cannot reserve negative qubits ({qubits}) at {switch!r}"
                )
            free = self._avail.get(switch, 0)
            if free < qubits:
                raise CapacityError(
                    f"switch {switch!r} has {free} free qubits, "
                    f"cannot reserve {qubits}",
                    switch,
                    qubits,
                    free,
                )
        for switch, qubits in usage.items():
            if qubits:
                self._apply(switch, -qubits)
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("core.ledger.reserves")
            metrics.inc("core.ledger.qubits_reserved", sum(usage.values()))
            metrics.max_gauge(
                "core.ledger.peak_occupancy", self._peak_global
            )

    def release(self, usage: Mapping[Hashable, int]) -> None:
        """Atomically return *usage* qubits to the account.

        Releasing above a switch's known budget is a double-release bug
        and raises :class:`CapacityError` before mutating anything.
        """
        for switch in sorted(usage, key=repr):
            qubits = usage[switch]
            if qubits < 0:
                raise ValueError(
                    f"cannot release negative qubits ({qubits}) at {switch!r}"
                )
            budget = self._budgets.get(switch)
            if budget is not None:
                headroom = budget - self._avail.get(switch, 0)
                if qubits > headroom:
                    raise CapacityError(
                        f"release of {qubits} qubits at {switch!r} exceeds "
                        f"its outstanding reservation ({headroom})",
                        switch,
                        qubits,
                        headroom,
                    )
        for switch, qubits in usage.items():
            if qubits:
                self._apply(switch, qubits)
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("core.ledger.releases")
            metrics.inc("core.ledger.qubits_released", sum(usage.values()))

    # Channel conveniences ------------------------------------------------
    def can_host(self, channel: "Channel") -> bool:
        """Whether every transit switch can fund one more channel."""
        return all(
            self._avail.get(s, 0) >= QUBITS_PER_CHANNEL
            for s in channel.switches
        )

    def reserve_channel(self, channel: "Channel") -> None:
        """Reserve ``2`` qubits at each of *channel*'s transit switches."""
        usage: Dict[Hashable, int] = {}
        for switch in channel.switches:
            usage[switch] = usage.get(switch, 0) + QUBITS_PER_CHANNEL
        self.reserve(usage)

    def release_channel(self, channel: "Channel") -> None:
        """Return the qubits :meth:`reserve_channel` pinned."""
        usage: Dict[Hashable, int] = {}
        for switch in channel.switches:
            usage[switch] = usage.get(switch, 0) + QUBITS_PER_CHANNEL
        self.release(usage)

    def try_reserve_channel(self, channel: "Channel") -> bool:
        """Reserve *channel*'s qubits if possible; ``False`` otherwise."""
        if not self.can_host(channel):
            return False
        self.reserve_channel(channel)
        return True

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator["CapacityLedger"]:
        """Scope a group of reservations; roll back on exception.

        Nested transactions compose: an inner rollback undoes only the
        inner block's changes; an inner commit folds them into the
        enclosing transaction (so an outer rollback still undoes them).
        """
        journal: List[Tuple[Hashable, int]] = []
        self._journals.append(journal)
        metrics = obs_metrics.active()
        if metrics is not None:
            metrics.inc("core.ledger.transactions")
        try:
            yield self
        except BaseException:
            self._rollback(journal)
            if metrics is not None:
                metrics.inc("core.ledger.rollbacks")
            raise
        finally:
            popped = self._journals.pop()
            assert popped is journal, "transaction stack corrupted"
            if self._journals:
                # Fold surviving entries into the enclosing transaction.
                self._journals[-1].extend(journal)

    def _rollback(self, journal: List[Tuple[Hashable, int]]) -> None:
        cache = exec_cache.active()
        for switch, delta in reversed(journal):
            old = self._avail.get(switch, 0)
            new = old - delta
            self._avail[switch] = new
            if (old >= QUBITS_PER_CHANNEL) != (new >= QUBITS_PER_CHANNEL):
                now_blocked = new < QUBITS_PER_CHANNEL
                if cache is not None:
                    cache.invalidate_switch(switch, now_blocked=now_blocked)
                self._publish_crossing(switch, now_blocked)
        journal.clear()

    # ------------------------------------------------------------------
    # Legacy shared-dict bridge
    # ------------------------------------------------------------------
    def write_back(self, target: MutableMapping[Hashable, int]) -> None:
        """Publish changed availability values into *target* in place.

        Only switches the ledger actually touched are written, so a
        caller-owned dict keeps any extra keys it carries.
        """
        for switch in self._dirty:
            target[switch] = self._avail[switch]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        reserved = sum(
            max(0, self._budgets.get(s, 0) - q)
            for s, q in self._avail.items()
        )
        return (
            f"CapacityLedger(switches={len(self._avail)}, "
            f"reserved={reserved}, open_txns={len(self._journals)})"
        )
