"""Problem and solution objects for the MUERP.

The MUERP (Sec. II-D): route channels so that the quantum users ``U``
are spanned by an *entanglement tree* — users are vertices, quantum
channels are edges — maximizing the product of channel rates (Eq. 2)
while no switch carries more than ``⌊Q_r / 2⌋`` channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.rates import channel_log_rate, tree_log_rate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import QuantumNetwork


@dataclass(frozen=True)
class Channel:
    """A quantum channel: a width-1 path between two users via switches.

    Attributes:
        path: Node-id sequence ``(user, switch, …, switch, user)``.
        log_rate: Natural log of the channel's entanglement rate (Eq. 1).
    """

    path: Tuple[Hashable, ...]
    log_rate: float

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError(f"channel path too short: {self.path!r}")
        if len(set(self.path)) != len(self.path):
            raise ValueError(f"channel path revisits a node: {self.path!r}")

    @classmethod
    def from_path(
        cls, network: "QuantumNetwork", path: Sequence[Hashable]
    ) -> "Channel":
        """Build a channel from a node path, computing its rate (Eq. 1)."""
        return cls(tuple(path), channel_log_rate(network, path))

    @property
    def rate(self) -> float:
        """Entanglement rate in linear space."""
        return math.exp(self.log_rate)

    @property
    def endpoints(self) -> Tuple[Hashable, Hashable]:
        """The two quantum users this channel entangles."""
        return self.path[0], self.path[-1]

    @property
    def endpoint_key(self) -> FrozenSet[Hashable]:
        """Order-insensitive endpoint pair (for dict keys)."""
        return frozenset((self.path[0], self.path[-1]))

    @property
    def switches(self) -> Tuple[Hashable, ...]:
        """Intermediate nodes (all switches by construction)."""
        return self.path[1:-1]

    @property
    def n_links(self) -> int:
        """Number of quantum links ``l`` (path edges)."""
        return len(self.path) - 1

    @property
    def n_swaps(self) -> int:
        """Number of BSM swaps performed: ``l - 1``."""
        return self.n_links - 1

    def reversed(self) -> "Channel":
        """The same channel traversed the other way."""
        return Channel(tuple(reversed(self.path)), self.log_rate)

    def uses_switch(self, switch_id: Hashable) -> bool:
        return switch_id in self.path[1:-1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = " - ".join(str(n) for n in self.path)
        return f"Channel[{arrow}] rate={self.rate:.3e}"


@dataclass(frozen=True)
class MUERPSolution:
    """An entanglement tree (or a recorded failure to build one).

    Attributes:
        channels: The selected quantum channels.
        users: The quantum users the tree is meant to span.
        method: Name of the algorithm that produced this solution.
        feasible: ``False`` when the algorithm could not span the users;
            the paper's metric then counts the entanglement rate as 0.
        extra_log_rate: Additional log-probability factors beyond the
            channels' Eq. (1) rates — e.g. N-FUSION's final GHZ-fusion
            success probability.  0 for pure BSM-tree solutions.
    """

    channels: Tuple[Channel, ...]
    users: FrozenSet[Hashable]
    method: str = "unknown"
    feasible: bool = True
    extra_log_rate: float = 0.0

    @property
    def log_rate(self) -> float:
        """Log of Eq. (2) (plus any extra factors); ``-inf`` if infeasible."""
        if not self.feasible:
            return -math.inf
        return tree_log_rate(c.log_rate for c in self.channels) + self.extra_log_rate

    @property
    def rate(self) -> float:
        """Entanglement rate of the tree (0 when infeasible)."""
        if not self.feasible:
            return 0.0
        return math.exp(self.log_rate)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def switch_usage(self) -> Dict[Hashable, int]:
        """Qubits consumed per switch: 2 per transit channel (Def. 3)."""
        usage: Dict[Hashable, int] = {}
        for channel in self.channels:
            for switch in channel.switches:
                usage[switch] = usage.get(switch, 0) + 2
        return usage

    def user_adjacency(self) -> Dict[Hashable, List[Hashable]]:
        """Adjacency of the user-level entanglement tree."""
        adjacency: Dict[Hashable, List[Hashable]] = {u: [] for u in self.users}
        for channel in self.channels:
            a, b = channel.endpoints
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        return adjacency

    def spans_users(self) -> bool:
        """Whether the channels connect every user transitively."""
        if not self.users:
            return True
        adjacency = self.user_adjacency()
        seed = next(iter(self.users))
        seen = set()
        stack = [seed]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(n for n in adjacency.get(current, []) if n not in seen)
        return self.users <= seen

    def total_links(self) -> int:
        """Total number of quantum links across all channels."""
        return sum(c.n_links for c in self.channels)

    def total_swaps(self) -> int:
        """Total number of BSM swaps across all channels."""
        return sum(c.n_swaps for c in self.channels)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.feasible:
            return f"MUERPSolution[{self.method}] INFEASIBLE"
        return (
            f"MUERPSolution[{self.method}] rate={self.rate:.3e} "
            f"channels={self.n_channels}"
        )


def infeasible_solution(
    users: Iterable[Hashable], method: str
) -> MUERPSolution:
    """The canonical zero-rate failure value used by all algorithms."""
    return MUERPSolution(
        channels=(), users=frozenset(users), method=method, feasible=False
    )


def resolve_users(
    network: "QuantumNetwork", users: Optional[Iterable[Hashable]]
) -> List[Hashable]:
    """Normalize a user-set argument: default to all network users.

    Validates that every requested id exists and is a quantum user and
    that at least two users are present (single-user "entanglement" is
    meaningless in the model).
    """
    if users is None:
        resolved = network.user_ids
    else:
        resolved = list(users)
        for user in resolved:
            if not network.is_user(user):
                raise ValueError(f"{user!r} is not a quantum user")
        if len(set(resolved)) != len(resolved):
            raise ValueError("duplicate users in request")
    if len(resolved) < 2:
        raise ValueError(f"need at least 2 users, got {len(resolved)}")
    return resolved
