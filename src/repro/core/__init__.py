"""MUERP core: problem objects and the paper's Algorithms 1-4.

* :mod:`repro.core.rates` — entanglement-rate arithmetic in log space
  (Eq. 1 / Eq. 2 of the paper).
* :mod:`repro.core.channel` — Algorithm 1, the maximum-entanglement-rate
  channel between a user pair.
* :mod:`repro.core.optimal` — Algorithm 2, optimal under the sufficient
  capacity condition ``Q_r ≥ 2|U|`` (Theorem 3).
* :mod:`repro.core.conflict_free` — Algorithm 3, the conflict-resolving
  heuristic.
* :mod:`repro.core.prim_based` — Algorithm 4, the Prim-style heuristic.
"""

from repro.core.problem import Channel, MUERPSolution, infeasible_solution
from repro.core.rates import (
    channel_log_rate,
    channel_rate,
    link_log_rate,
    tree_log_rate,
    tree_rate,
)
from repro.core.channel import (
    best_channels_from,
    dijkstra,
    find_best_channel,
    trace_path,
)
from repro.core.optimal import solve_optimal
from repro.core.conflict_free import solve_conflict_free
from repro.core.prim_based import solve_prim
from repro.core.tree import ValidationReport, switch_usage, validate_solution
from repro.core.bruteforce import brute_force_optimal, enumerate_channels
from repro.core.exact import solve_exact, optimality_gap
from repro.core.kbest import k_best_channels, channel_diversity
from repro.core.localsearch import improve_solution
from repro.core.registry import SOLVERS, register_solver, solve

__all__ = [
    "Channel",
    "MUERPSolution",
    "infeasible_solution",
    "channel_log_rate",
    "channel_rate",
    "link_log_rate",
    "tree_log_rate",
    "tree_rate",
    "best_channels_from",
    "dijkstra",
    "trace_path",
    "find_best_channel",
    "solve_optimal",
    "solve_conflict_free",
    "solve_prim",
    "ValidationReport",
    "switch_usage",
    "validate_solution",
    "brute_force_optimal",
    "enumerate_channels",
    "solve_exact",
    "optimality_gap",
    "k_best_channels",
    "channel_diversity",
    "improve_solution",
    "SOLVERS",
    "register_solver",
    "solve",
]
