"""K-best channels between a user pair (Yen's algorithm on rates).

Algorithm 1 returns the single best channel; several consumers want the
runner-ups too:

* the fidelity-aware extension needs alternatives when the best channel
  misses the fidelity floor;
* operators planning maintenance want to know how much rate the second-
  best channel loses (channel diversity);
* the resilience analysis ranks backup routes.

This is Yen's k-shortest-paths transplanted to the paper's weight space
(`α·L − ln q` per hop, switches-only interiors, residual-capacity
filtering), returning loopless channels in descending rate order.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.channel import find_best_channel
from repro.core.problem import Channel
from repro.network.graph import QuantumNetwork
from repro.network.link import fiber_key


def k_best_channels(
    network: QuantumNetwork,
    source: Hashable,
    target: Hashable,
    k: int,
    residual: Optional[Dict[Hashable, int]] = None,
) -> List[Channel]:
    """Up to *k* best loopless channels between two users.

    Returns channels in descending entanglement-rate order; fewer than
    *k* when the network doesn't admit that many distinct channels.

    Yen's construction: the best channel seeds the list; each candidate
    is derived by forcing a deviation off some prefix (spur node) of an
    already-accepted channel, with the conflicting fibers banned and the
    prefix's interior switches excluded via a zeroed residual copy.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    best = find_best_channel(network, source, target, residual)
    if best is None:
        return []
    accepted: List[Channel] = [best]
    candidates: Dict[Tuple[Hashable, ...], Channel] = {}

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(len(previous.path) - 1):
            root = previous.path[: spur_index + 1]
            spur = previous.path[spur_index]

            # Ban the outgoing fiber each accepted channel with the same
            # prefix takes from the spur node.
            banned: Set[Tuple[Hashable, Hashable]] = set()
            for channel in accepted:
                if channel.path[: spur_index + 1] == root and len(
                    channel.path
                ) > spur_index + 1:
                    banned.add(
                        fiber_key(
                            channel.path[spur_index],
                            channel.path[spur_index + 1],
                        )
                    )
            # Exclude the root's interior nodes from the spur search so
            # the total path stays loopless: zero out their capacity.
            spur_residual = dict(
                network.residual_qubits() if residual is None else residual
            )
            for node in root[:-1]:
                if network.is_switch(node):
                    spur_residual[node] = 0

            # The spur node itself may be the source (a user) or a
            # switch; both are legal search sources only if user — for
            # switch spurs we search from the source with the full root
            # forced, which Yen handles by searching spur→target and
            # gluing.  Our search API only starts at users, so emulate
            # by searching source→target with root-interior banned and
            # requiring the root as prefix via fiber bans; simplest
            # correct approach: only spur at user nodes (index 0) plus
            # glue for switch spurs via prefix re-validation below.
            if spur_index == 0:
                alternative = find_best_channel(
                    network, source, target, spur_residual, banned
                )
                if alternative is not None:
                    candidates.setdefault(alternative.path, alternative)
            else:
                glued = _spur_via_prefix(
                    network, root, target, spur_residual, banned
                )
                if glued is not None:
                    candidates.setdefault(glued.path, glued)

        fresh = [
            channel
            for path, channel in candidates.items()
            if all(path != existing.path for existing in accepted)
        ]
        if not fresh:
            break
        fresh.sort(key=lambda c: (-c.log_rate, len(c.path), repr(c.path)))
        accepted.append(fresh[0])
        candidates.pop(fresh[0].path)
    return accepted


def _spur_via_prefix(
    network: QuantumNetwork,
    root: Tuple[Hashable, ...],
    target: Hashable,
    residual: Dict[Hashable, int],
    banned: Set[Tuple[Hashable, Hashable]],
) -> Optional[Channel]:
    """Best channel extending *root* (source…spur) to *target*."""
    from repro.core.channel import dijkstra, trace_path
    from repro.core.rates import channel_log_rate

    spur = root[-1]
    # Classic Yen: search spur → target with the root's interior nodes
    # removed (their residual is zeroed by the caller) and the deviation
    # fibers banned, then glue root[:-1] + spur-path.  The spur is a
    # switch, so the search starts in relay mode; its own swap cost is a
    # constant offset over all spur paths and cannot change the argmax.
    dist, prev = dijkstra(
        network,
        spur,
        residual,
        banned,
        allow_switch_source=True,
    )
    if target not in dist:
        return None
    spur_path = trace_path(prev, spur, target)
    glued = root[:-1] + spur_path
    if len(set(glued)) != len(glued):
        return None  # defensive: gluing must stay loopless
    return Channel(glued, channel_log_rate(network, glued))


def channel_diversity(
    network: QuantumNetwork,
    source: Hashable,
    target: Hashable,
    k: int = 2,
) -> float:
    """Rate ratio of the k-th best channel to the best (0 if absent).

    A diversity of ~1 means failures are cheap to route around; ~0 means
    the pair depends on a single good channel (a "critical" structure in
    the paper's Fig. 7(b) terminology).
    """
    channels = k_best_channels(network, source, target, k)
    if len(channels) < k:
        return 0.0
    return channels[k - 1].rate / channels[0].rate
