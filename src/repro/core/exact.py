"""Exact MUERP solver via branch and bound.

:mod:`repro.core.bruteforce` enumerates *every* combination of channels
— fine as a test oracle, hopeless beyond toy sizes.  This module solves
the same problem exactly but prunes:

* **Candidate generation** — all simple channels per user pair (the
  complete set, as in brute force), pre-sorted by rate.
* **Search** — depth-first over user pairs (ordered by their best
  candidate's rate); at each pair either skip it or commit one of its
  channels (only if it merges two components and fits the residual
  qubits).
* **Bounding** — with ``c`` components left we need ``c − 1`` more
  channels; an admissible upper bound adds the ``c − 1`` largest
  best-candidate log-rates among the remaining pairs (capacity and
  tree-ness ignored).  Branches whose bound cannot beat the incumbent
  are cut.

Exactness: the search space is identical to brute force's, only the
order and pruning differ, and the bound never underestimates.  The
equivalence is property-tested against :func:`brute_force_optimal`.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.bruteforce import MAX_PATHS_PER_PAIR, enumerate_channels
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.unionfind import UnionFind

#: Branch and bound stays exact at noticeably larger sizes than brute
#: force; this cap is a safety valve, not a tight limit.
MAX_USERS = 8


def solve_exact(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    max_paths_per_pair: int = MAX_PATHS_PER_PAIR,
) -> MUERPSolution:
    """Provably optimal MUERP solution by branch and bound.

    Args:
        network: The quantum network (≤ :data:`MAX_USERS` users).
        users: Users to entangle (default: all network users).
        max_paths_per_pair: Enumeration guard forwarded to
            :func:`~repro.core.bruteforce.enumerate_channels`.

    Returns:
        The optimal capacity-feasible :class:`MUERPSolution` (method
        ``"exact"``), or an infeasible one when no tree fits.
    """
    user_list = resolve_users(network, users)
    if len(user_list) > MAX_USERS:
        raise ValueError(
            f"exact solver supports at most {MAX_USERS} users, "
            f"got {len(user_list)}"
        )

    pairs: List[Tuple[Hashable, Hashable]] = list(
        itertools.combinations(user_list, 2)
    )
    candidates: Dict[Tuple[Hashable, Hashable], List[Channel]] = {}
    for pair in pairs:
        found = enumerate_channels(
            network, pair[0], pair[1], max_paths=max_paths_per_pair
        )
        found.sort(key=lambda c: -c.log_rate)
        if found:
            candidates[pair] = found
    # Pairs ordered by their best candidate, best first: good incumbents
    # early, effective pruning later.
    ordered = sorted(
        candidates, key=lambda p: -candidates[p][0].log_rate
    )
    best_of_pair = [candidates[p][0].log_rate for p in ordered]

    budgets = network.residual_qubits()
    incumbent_channels: Optional[Tuple[Channel, ...]] = None
    incumbent_value = -math.inf

    def bound(index: int, components: int) -> float:
        """Upper bound on the remaining channels' total log rate."""
        needed = components - 1
        if needed == 0:
            return 0.0
        remaining = best_of_pair[index:]
        if len(remaining) < needed:
            return -math.inf
        # remaining is already descending (ordered by best rate).
        return sum(remaining[:needed])

    state_unions = UnionFind(user_list)
    residual = dict(budgets)
    chosen: List[Channel] = []

    def dfs(index: int, value: float, components: int, unions: UnionFind):
        nonlocal incumbent_channels, incumbent_value
        if components == 1:
            if value > incumbent_value:
                incumbent_value = value
                incumbent_channels = tuple(chosen)
            return
        if index >= len(ordered):
            return
        if value + bound(index, components) <= incumbent_value:
            return

        pair = ordered[index]
        a, b = pair
        if not unions.connected(a, b):
            for channel in candidates[pair]:
                if value + channel.log_rate + bound(
                    index + 1, components - 1
                ) <= incumbent_value:
                    break  # candidates are sorted: the rest are worse
                switches = channel.switches
                if any(residual[s] < 2 for s in switches):
                    continue
                for switch in switches:
                    residual[switch] -= 2
                chosen.append(channel)
                # Union-find has no undo: clone for the branch.
                branched = UnionFind(user_list)
                for selected in chosen:
                    branched.union(*selected.endpoints)
                dfs(index + 1, value + channel.log_rate, components - 1, branched)
                chosen.pop()
                for switch in switches:
                    residual[switch] += 2
        # Branch: skip this pair entirely.
        dfs(index + 1, value, components, unions)

    dfs(0, 0.0, len(user_list), state_unions)

    if incumbent_channels is None:
        return infeasible_solution(user_list, "exact")
    return MUERPSolution(
        channels=incumbent_channels,
        users=frozenset(user_list),
        method="exact",
        feasible=True,
    )


def optimality_gap(
    network: QuantumNetwork, solution: MUERPSolution
) -> float:
    """Log-rate gap of *solution* to the capacity-relaxed optimum.

    ``0`` means the heuristic hit Algorithm 2's upper bound; more
    negative means more was lost to capacity or heuristic choices.
    Returns ``-inf`` for infeasible solutions.
    """
    from repro.core.optimal import solve_optimal

    if not solution.feasible:
        return -math.inf
    relaxed = solve_optimal(network, sorted(solution.users, key=repr))
    if not relaxed.feasible:
        return 0.0
    return solution.log_rate - relaxed.log_rate
