"""Exhaustive reference solver for small MUERP instances.

The MUERP is NP-hard (Theorem 2), so exact solving is only viable on toy
networks — which is exactly what tests need: Algorithms 2/3/4 are checked
against this oracle on instances small enough to enumerate.

Strategy: enumerate all simple channel paths per user pair (bounded), then
search over channel combinations that form a spanning user tree within
switch capacity, maximizing total log rate.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.unionfind import UnionFind

#: Guard rails: brute force refuses instances beyond these sizes.
MAX_USERS = 6
MAX_PATHS_PER_PAIR = 200


def enumerate_channels(
    network: QuantumNetwork,
    source: Hashable,
    target: Hashable,
    max_paths: int = MAX_PATHS_PER_PAIR,
) -> List[Channel]:
    """All simple channels between two users (switch-only interiors).

    Depth-first enumeration; raises ``RuntimeError`` if the count exceeds
    *max_paths* (the instance is too large for brute force).
    """
    channels: List[Channel] = []
    path: List[Hashable] = [source]
    on_path = {source}

    def extend(node: Hashable) -> None:
        for neighbor in network.neighbors(node):
            if neighbor in on_path:
                continue
            if neighbor == target:
                channels.append(Channel.from_path(network, path + [target]))
                if len(channels) > max_paths:
                    raise RuntimeError(
                        f"more than {max_paths} paths between "
                        f"{source!r} and {target!r}"
                    )
                continue
            if not network.is_switch(neighbor):
                continue  # other users cannot relay
            if network.qubits_of(neighbor) < 2:
                continue  # can never host a transit channel
            path.append(neighbor)
            on_path.add(neighbor)
            extend(neighbor)
            path.pop()
            on_path.remove(neighbor)

    extend(source)
    return channels


def brute_force_optimal(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    enforce_capacity: bool = True,
) -> MUERPSolution:
    """Exact MUERP optimum by exhaustive search (small instances only).

    Args:
        network: The quantum network (≤ :data:`MAX_USERS` users).
        users: Users to entangle (default: all network users).
        enforce_capacity: Respect switch budgets (the real MUERP).  Pass
            ``False`` to solve Algorithm 2's relaxation instead.

    Returns:
        The optimal :class:`MUERPSolution` (method ``"brute_force"``) or
        an infeasible one when no spanning tree fits.
    """
    user_list = resolve_users(network, users)
    if len(user_list) > MAX_USERS:
        raise ValueError(
            f"brute force supports at most {MAX_USERS} users, "
            f"got {len(user_list)}"
        )

    pair_channels: Dict[Tuple[Hashable, Hashable], List[Channel]] = {}
    for a, b in itertools.combinations(user_list, 2):
        pair_channels[(a, b)] = enumerate_channels(network, a, b)

    budgets = network.residual_qubits()
    pairs = list(pair_channels)
    n_edges_needed = len(user_list) - 1

    best_log_rate = -math.inf
    best_channels: Optional[Tuple[Channel, ...]] = None

    # Choose which user pairs form the tree topology, then which concrete
    # channel realizes each chosen pair.
    for pair_subset in itertools.combinations(pairs, n_edges_needed):
        unions = UnionFind(user_list)
        if not all(unions.union(a, b) for a, b in pair_subset):
            continue  # cycle: not a tree over users
        if any(not pair_channels[p] for p in pair_subset):
            continue  # some pair has no channel at all
        for combo in itertools.product(
            *(pair_channels[p] for p in pair_subset)
        ):
            log_rate = sum(c.log_rate for c in combo)
            if log_rate <= best_log_rate:
                continue
            if enforce_capacity and not _fits(combo, budgets):
                continue
            best_log_rate = log_rate
            best_channels = tuple(combo)

    if best_channels is None:
        return infeasible_solution(user_list, "brute_force")
    return MUERPSolution(
        channels=best_channels,
        users=frozenset(user_list),
        method="brute_force",
        feasible=True,
    )


def _fits(channels: Iterable[Channel], budgets: Dict[Hashable, int]) -> bool:
    usage: Dict[Hashable, int] = {}
    for channel in channels:
        for switch in channel.switches:
            used = usage.get(switch, 0) + 2
            if used > budgets.get(switch, 0):
                return False
            usage[switch] = used
    return True
