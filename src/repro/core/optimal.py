"""Algorithm 2 — optimal entanglement tree under sufficient capacity.

When every switch has ``Q_r ≥ 2|U|`` qubits it can host the channels of
*all* user pairs simultaneously, so capacity never binds (Theorem 3's
sufficient condition).  The algorithm is then a Kruskal-style greedy:

1. compute the maximum-rate channel for every user pair (Algorithm 1,
   one single-source run per user);
2. scan the channels in descending rate order, adding a channel whenever
   it merges two distinct user unions (union-find), until the users form
   one spanning entanglement tree.

Theorem 3 proves this output optimal under the condition; the proof is
the classic cut-property argument transplanted to log-rate weights.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.channel import all_pairs_best_channels
from repro.core.ledger import CapacityLedger
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.unionfind import UnionFind


def sufficient_capacity(network: QuantumNetwork, n_users: int) -> bool:
    """Check Theorem 3's sufficient condition ``Q_r ≥ 2|U|`` ∀r ∈ R."""
    return all(s.qubits >= 2 * n_users for s in network.switches)


def channel_sort_key(channel: Channel) -> Tuple[float, int, str]:
    """Descending-rate ordering with a deterministic tie-break.

    Higher rate first; ties broken by fewer links, then lexicographic
    path representation, so runs are reproducible across Python hash
    randomization.
    """
    return (-channel.log_rate, channel.n_links, repr(channel.path))


def solve_optimal(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    ignore_capacity: bool = True,
) -> MUERPSolution:
    """Algorithm 2.  Optimal when ``Q_r ≥ 2|U|`` for every switch.

    Args:
        network: The quantum network.
        users: Users to entangle (default: all users in the network).
        ignore_capacity: Algorithm 2 assumes abundant capacity and does
            not track qubit consumption (the paper runs it with
            ``Q = 2|U|`` switches in Fig. 8a).  Pass ``False`` to make
            the pairwise channel search honour full-budget switches only
            — useful for ablations, but no longer Algorithm 2 proper.

    Returns:
        The spanning :class:`MUERPSolution`; infeasible (rate 0) when the
        fiber graph cannot connect the users at all.
    """
    user_list = resolve_users(network, users)
    residual = None if ignore_capacity else CapacityLedger.from_network(network)
    pairwise = all_pairs_best_channels(network, user_list, residual)
    candidates = sorted(pairwise.values(), key=channel_sort_key)

    unions = UnionFind(user_list)
    selected: List[Channel] = []
    for channel in candidates:
        a, b = channel.endpoints
        if unions.union(a, b):
            selected.append(channel)
            if unions.n_components == 1:
                break
    if unions.n_components != 1:
        return infeasible_solution(user_list, "optimal")
    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="optimal",
        feasible=True,
    )
