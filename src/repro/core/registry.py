"""Name-based solver registry.

The experiment harness and CLI refer to algorithms by name; baselines in
:mod:`repro.baselines` register themselves here on import, so importing
:mod:`repro` yields the full menu.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional

from repro.core.conflict_free import solve_conflict_free
from repro.core.optimal import solve_optimal
from repro.core.prim_based import solve_prim
from repro.core.problem import MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike

Solver = Callable[..., MUERPSolution]

SOLVERS: Dict[str, Solver] = {}

#: Display names matching the paper's figure legends.
DISPLAY_NAMES: Dict[str, str] = {}


def register_solver(
    name: str, solver: Solver, display: Optional[str] = None
) -> None:
    """Register *solver* under *name* (overwrites silently for reloads)."""
    SOLVERS[name] = solver
    DISPLAY_NAMES[name] = display or name


def solve(
    method: str,
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    rng: RngLike = None,
) -> MUERPSolution:
    """Run the named solver on *network*.

    All registered solvers share the ``(network, users=..., rng=...)``
    calling convention; solvers that are deterministic ignore *rng*.
    """
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise KeyError(
            f"unknown solver {method!r}; available: {sorted(SOLVERS)}"
        ) from None
    return solver(network, users=users, rng=rng)


def _optimal_adapter(network, users=None, rng=None):
    return solve_optimal(network, users)


def _conflict_free_adapter(network, users=None, rng=None):
    return solve_conflict_free(network, users, rng=rng)


def _prim_adapter(network, users=None, rng=None):
    return solve_prim(network, users, rng=rng)


register_solver("optimal", _optimal_adapter, display="Alg-2")
register_solver("conflict_free", _conflict_free_adapter, display="Alg-3")
register_solver("prim", _prim_adapter, display="Alg-4")

# Paper aliases.
register_solver("alg2", _optimal_adapter, display="Alg-2")
register_solver("alg3", _conflict_free_adapter, display="Alg-3")
register_solver("alg4", _prim_adapter, display="Alg-4")


def _exact_adapter(network, users=None, rng=None):
    from repro.core.exact import solve_exact

    return solve_exact(network, users)


register_solver("exact", _exact_adapter, display="Exact-B&B")
