"""Name-based solver registry and the hardened solve path.

The experiment harness and CLI refer to algorithms by name; baselines in
:mod:`repro.baselines` register themselves here on import, so importing
:mod:`repro` yields the full menu.

Beyond plain dispatch (:func:`solve`), this module provides the
*hardened* entry point :func:`solve_robust`: a configurable fallback
chain of solvers run under wall-clock watchdogs and a circuit breaker,
with every candidate independently re-checked by the
:class:`~repro.verify.verifier.SolutionVerifier` before it is accepted.
Each attempt — accepted, timed out, crashed, invalid, infeasible or
skipped by an open breaker — is recorded in a :class:`SolveAudit`
attached to the returned result, so a served solution is always
attributable to the solver that produced it and a failure to the exact
reasons each link of the chain was rejected.
"""

from __future__ import annotations

import difflib
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.conflict_free import solve_conflict_free
from repro.core.optimal import solve_optimal
from repro.core.prim_based import solve_prim
from repro.core.problem import MUERPSolution, infeasible_solution, resolve_users
from repro.network.graph import QuantumNetwork
import repro.obs.metrics as obs_metrics
import repro.obs.trace as obs_tracing
from repro.utils.rng import RngLike

logger = logging.getLogger("repro.core.registry")

Solver = Callable[..., MUERPSolution]

SOLVERS: Dict[str, Solver] = {}

#: Display names matching the paper's figure legends.
DISPLAY_NAMES: Dict[str, str] = {}

#: Solvers whose output may exceed per-switch budgets because they model
#: the sufficient-capacity special case (Theorem 3 / Fig. 8a).
CAPACITY_EXEMPT_METHODS = frozenset({"optimal", "alg2"})

#: Default fallback chain for :func:`solve_robust`: the paper's
#: capacity-aware heuristics in decreasing solution-quality order, with
#: the LP-rounding approximation (:mod:`repro.bounds.rounding`) as the
#: final capacity-aware backstop.
DEFAULT_CHAIN: Tuple[str, ...] = ("conflict_free", "prim", "lp_rounding")


class UnknownSolverError(KeyError):
    """An unregistered solver name, with the menu and a best guess."""

    def __init__(self, name: str, available: Iterable[str]) -> None:
        self.name = name
        self.available = tuple(sorted(available))
        suggestions = difflib.get_close_matches(
            str(name), [str(a) for a in self.available], n=1, cutoff=0.5
        )
        hint = f" — did you mean {suggestions[0]!r}?" if suggestions else ""
        super().__init__(
            f"unknown solver {name!r}; registered solvers: "
            f"{list(self.available)}{hint}"
        )


class SolveTimeout(RuntimeError):
    """A solver exceeded its wall-clock watchdog budget."""

    def __init__(self, method: str, timeout_s: float) -> None:
        super().__init__(
            f"solver {method!r} exceeded its {timeout_s:g}s watchdog"
        )
        self.method = method
        self.timeout_s = timeout_s


def register_solver(
    name: str, solver: Solver, display: Optional[str] = None
) -> None:
    """Register *solver* under *name* (overwrites silently for reloads)."""
    SOLVERS[name] = solver
    DISPLAY_NAMES[name] = display or name


def solve(
    method: str,
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    rng: RngLike = None,
) -> MUERPSolution:
    """Run the named solver on *network*.

    All registered solvers share the ``(network, users=..., rng=...)``
    calling convention; solvers that are deterministic ignore *rng*.

    Raises:
        UnknownSolverError: (a ``KeyError``) for an unregistered name,
            listing the registry contents and a closest-match hint.
    """
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise UnknownSolverError(method, SOLVERS) from None
    return solver(network, users=users, rng=rng)


# ----------------------------------------------------------------------
# Hardened solving: watchdog + circuit breaker + verification fallback.
# ----------------------------------------------------------------------

#: Attempt status codes recorded in a :class:`SolveAudit`.
ACCEPTED = "accepted"
INFEASIBLE = "infeasible"
INVALID = "invalid"
TIMEOUT = "timeout"
ERROR = "error"
BREAKER_OPEN = "breaker-open"


@dataclass(frozen=True)
class SolveAttempt:
    """One link of the fallback chain and what became of it."""

    method: str
    status: str
    elapsed_s: float = 0.0
    detail: str = ""
    violations: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "status": self.status,
            "elapsed_s": round(self.elapsed_s, 6),
            "detail": self.detail,
            "violations": list(self.violations),
        }


@dataclass
class SolveAudit:
    """Full provenance of one :func:`solve_robust` call.

    Attributes:
        chain: The solver names tried, in order.
        attempts: Per-solver outcome records.
        winner: Name of the solver whose solution was accepted
            (``None`` when the whole chain failed).
        verified: Whether the accepted solution passed independent
            verification (always ``False`` when ``verify=False``).
    """

    chain: Tuple[str, ...] = ()
    attempts: List[SolveAttempt] = field(default_factory=list)
    winner: Optional[str] = None
    verified: bool = False

    @property
    def succeeded(self) -> bool:
        return self.winner is not None

    def attempt_for(self, method: str) -> SolveAttempt:
        for attempt in self.attempts:
            if attempt.method == method:
                return attempt
        raise KeyError(f"no attempt recorded for {method!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "chain": list(self.chain),
            "attempts": [a.to_dict() for a in self.attempts],
            "winner": self.winner,
            "verified": self.verified,
        }

    def render(self) -> str:
        """Human-readable audit trail, one line per attempt."""
        lines = [f"solve audit (chain: {' -> '.join(self.chain)})"]
        for attempt in self.attempts:
            line = (
                f"  {attempt.method:<16} {attempt.status:<12} "
                f"{attempt.elapsed_s * 1000:8.2f} ms"
            )
            if attempt.detail:
                line += f"  {attempt.detail}"
            if attempt.violations:
                line += f"  violations={list(attempt.violations)}"
            lines.append(line)
        lines.append(
            f"  winner: {self.winner or 'none'}"
            + (" (verified)" if self.verified else "")
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class RobustSolveResult:
    """A solution plus the audit trail that produced it."""

    solution: MUERPSolution
    audit: SolveAudit

    @property
    def feasible(self) -> bool:
        return self.solution.feasible


class CircuitBreaker:
    """Per-solver circuit breaker for the fallback chain.

    A solver that fails (crash, timeout, invalid output)
    ``failure_threshold`` times in a row is *open*: it is skipped for
    the next ``cooldown`` times it would be consulted, then allowed one
    half-open probe.  A success anywhere closes its breaker.
    Infeasible-but-honest outcomes are not failures.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._consecutive: Dict[str, int] = {}
        self._skips_left: Dict[str, int] = {}

    def allow(self, method: str) -> bool:
        """Whether the chain may try *method* now (consumes a cooldown)."""
        skips = self._skips_left.get(method, 0)
        if skips > 0:
            self._skips_left[method] = skips - 1
            return False
        return True

    def is_open(self, method: str) -> bool:
        return self._skips_left.get(method, 0) > 0

    def record_success(self, method: str) -> None:
        self._consecutive[method] = 0
        self._skips_left[method] = 0

    def record_failure(self, method: str) -> None:
        count = self._consecutive.get(method, 0) + 1
        self._consecutive[method] = count
        if count >= self.failure_threshold:
            self._skips_left[method] = self.cooldown
            logger.warning(
                "circuit breaker opened for solver %r after %d "
                "consecutive failures (cooldown %d)",
                method,
                count,
                self.cooldown,
            )

    def state(self) -> Dict[str, Dict[str, int]]:
        """Snapshot for telemetry/tests."""
        return {
            method: {
                "consecutive_failures": self._consecutive.get(method, 0),
                "skips_left": self._skips_left.get(method, 0),
            }
            for method in set(self._consecutive) | set(self._skips_left)
        }


def _call_with_watchdog(
    solver: Solver,
    method: str,
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]],
    rng: RngLike,
    timeout_s: Optional[float],
) -> MUERPSolution:
    """Run *solver*, optionally under a wall-clock watchdog.

    With a timeout the solver runs on a daemon worker thread; on expiry
    the chain moves on immediately (the stray thread finishes in the
    background and its result is discarded — Python offers no safe
    preemption, so the watchdog bounds *our* latency, not its CPU use).
    """
    if timeout_s is None:
        return solver(network, users=users, rng=rng)
    executor = ThreadPoolExecutor(
        max_workers=1, thread_name_prefix=f"solve-{method}"
    )
    try:
        future = executor.submit(solver, network, users=users, rng=rng)
        try:
            return future.result(timeout=timeout_s)
        except _FutureTimeout:
            future.cancel()
            raise SolveTimeout(method, timeout_s) from None
    finally:
        executor.shutdown(wait=False)


def solve_robust(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    rng: RngLike = None,
    *,
    chain: Sequence[str] = DEFAULT_CHAIN,
    timeout_s: Optional[float] = None,
    verify: bool = True,
    capacity_exempt: Iterable[str] = CAPACITY_EXEMPT_METHODS,
    rate_tolerance: float = 1e-9,
    breaker: Optional[CircuitBreaker] = None,
) -> RobustSolveResult:
    """Solve through a watchdog-guarded, verifying fallback chain.

    Each solver in *chain* runs in turn (skipping any with an open
    circuit breaker); its candidate solution is independently audited
    by the :class:`~repro.verify.verifier.SolutionVerifier`, and the
    first solver returning a *verified feasible* tree wins.  Timeouts,
    crashes, invariant violations and infeasible outcomes all fall
    through to the next solver and are recorded in the audit.

    Args:
        network: The quantum network.
        users: Users to entangle (default: all network users).
        rng: Random source forwarded to every solver in the chain.
        chain: Solver names to try, in order (e.g.
            ``("exact", "optimal", "conflict_free", "prim")``).
        timeout_s: Optional per-solver wall-clock watchdog in seconds.
        verify: Run the independent solution verifier on every
            candidate (strongly recommended; ``False`` only skips the
            re-check, the audit is still produced).
        capacity_exempt: Solver names verified *without* the capacity
            invariant (Algorithm 2 models abundant capacity).
        rate_tolerance: Tolerance for the Eq. 1/2 rate recomputation.
        breaker: Optional :class:`CircuitBreaker` shared across calls.

    Returns:
        A :class:`RobustSolveResult`; its solution is infeasible (rate
        0) when the whole chain failed, with the audit saying why,
        per link.

    Raises:
        UnknownSolverError: When *chain* names an unregistered solver —
            a configuration error, never silently skipped.
        ValueError: From user-set resolution (bad user ids).
    """
    from repro.verify.verifier import SolutionVerifier

    chain = tuple(chain)
    if not chain:
        raise ValueError("solver chain must not be empty")
    for method in chain:
        if method not in SOLVERS:
            raise UnknownSolverError(method, SOLVERS)

    user_list = resolve_users(network, users)
    exempt = frozenset(capacity_exempt)
    verifier = SolutionVerifier(rate_tolerance=rate_tolerance)
    audit = SolveAudit(chain=chain)

    metrics = obs_metrics.active()
    if metrics is not None:
        metrics.inc("solver.robust.calls")

    def _note_attempt(attempt: SolveAttempt, depth: int) -> None:
        """Record one chain link in the audit and the metrics registry."""
        audit.attempts.append(attempt)
        if metrics is None:
            return
        metrics.inc("solver.robust.attempts")
        metrics.inc(f"solver.robust.status.{attempt.status}")
        if depth > 0:
            metrics.inc("solver.robust.fallbacks")
        if attempt.status != BREAKER_OPEN:
            metrics.observe(
                "solver.robust.attempt_seconds", attempt.elapsed_s
            )

    with obs_tracing.span(
        "solve_robust", chain="->".join(chain), users=len(user_list)
    ) as root_span:
        for depth, method in enumerate(chain):
            if breaker is not None and not breaker.allow(method):
                _note_attempt(
                    SolveAttempt(
                        method=method,
                        status=BREAKER_OPEN,
                        detail="circuit breaker open; solver skipped",
                    ),
                    depth,
                )
                continue
            started = time.perf_counter()
            with obs_tracing.span("solve_attempt", method=method) as attempt_span:
                try:
                    solution = _call_with_watchdog(
                        SOLVERS[method],
                        method,
                        network,
                        user_list,
                        rng,
                        timeout_s,
                    )
                except SolveTimeout as exc:
                    elapsed = time.perf_counter() - started
                    _note_attempt(
                        SolveAttempt(
                            method=method,
                            status=TIMEOUT,
                            elapsed_s=elapsed,
                            detail=str(exc),
                        ),
                        depth,
                    )
                    if attempt_span is not None:
                        attempt_span.set_attr("status", TIMEOUT)
                    if breaker is not None:
                        breaker.record_failure(method)
                    continue
                except Exception as exc:  # noqa: BLE001 - fallback chain boundary
                    elapsed = time.perf_counter() - started
                    _note_attempt(
                        SolveAttempt(
                            method=method,
                            status=ERROR,
                            elapsed_s=elapsed,
                            detail=f"{type(exc).__name__}: {exc}",
                        ),
                        depth,
                    )
                    if attempt_span is not None:
                        attempt_span.set_attr("status", ERROR)
                    if breaker is not None:
                        breaker.record_failure(method)
                    logger.warning("solver %r crashed: %s", method, exc)
                    continue
                elapsed = time.perf_counter() - started

                if not solution.feasible:
                    _note_attempt(
                        SolveAttempt(
                            method=method,
                            status=INFEASIBLE,
                            elapsed_s=elapsed,
                            detail="solver reported no spanning tree",
                        ),
                        depth,
                    )
                    if attempt_span is not None:
                        attempt_span.set_attr("status", INFEASIBLE)
                    # Honest infeasibility is not a solver fault: no
                    # breaker hit.
                    continue

                if verify:
                    violations = verifier.audit(
                        network,
                        solution,
                        users=user_list,
                        enforce_capacity=method not in exempt,
                    )
                    if violations:
                        _note_attempt(
                            SolveAttempt(
                                method=method,
                                status=INVALID,
                                elapsed_s=elapsed,
                                detail="; ".join(
                                    str(v) for v in violations[:3]
                                ),
                                violations=tuple(
                                    v.code for v in violations
                                ),
                            ),
                            depth,
                        )
                        if attempt_span is not None:
                            attempt_span.set_attr("status", INVALID)
                        if breaker is not None:
                            breaker.record_failure(method)
                        logger.warning(
                            "solver %r returned an invalid solution (%s)",
                            method,
                            ", ".join(v.code for v in violations),
                        )
                        continue

                _note_attempt(
                    SolveAttempt(
                        method=method, status=ACCEPTED, elapsed_s=elapsed
                    ),
                    depth,
                )
                if attempt_span is not None:
                    attempt_span.set_attr("status", ACCEPTED)
                audit.winner = method
                audit.verified = bool(verify)
                if breaker is not None:
                    breaker.record_success(method)
                if metrics is not None:
                    metrics.set_gauge("solver.robust.fallback_depth", depth)
                    if breaker is not None:
                        metrics.set_gauge(
                            "solver.robust.breaker_open_solvers",
                            sum(
                                1
                                for state in breaker.state().values()
                                if state["skips_left"] > 0
                            ),
                        )
                if root_span is not None:
                    root_span.set_attr("winner", method)
                return RobustSolveResult(solution=solution, audit=audit)

        if metrics is not None:
            metrics.inc("solver.robust.chain_exhausted")
        if root_span is not None:
            root_span.set_attr("winner", None)
        return RobustSolveResult(
            solution=infeasible_solution(user_list, "robust-chain"),
            audit=audit,
        )


def _optimal_adapter(network, users=None, rng=None):
    return solve_optimal(network, users)


def _conflict_free_adapter(network, users=None, rng=None):
    return solve_conflict_free(network, users, rng=rng)


def _prim_adapter(network, users=None, rng=None):
    return solve_prim(network, users, rng=rng)


register_solver("optimal", _optimal_adapter, display="Alg-2")
register_solver("conflict_free", _conflict_free_adapter, display="Alg-3")
register_solver("prim", _prim_adapter, display="Alg-4")

# Paper aliases.
register_solver("alg2", _optimal_adapter, display="Alg-2")
register_solver("alg3", _conflict_free_adapter, display="Alg-3")
register_solver("alg4", _prim_adapter, display="Alg-4")


def _exact_adapter(network, users=None, rng=None):
    from repro.core.exact import solve_exact

    return solve_exact(network, users)


register_solver("exact", _exact_adapter, display="Exact-B&B")


def _lp_rounding_adapter(network, users=None, rng=None):
    # Imported lazily: repro.bounds builds on core (ledger, verifier,
    # channel search), so a module-level import here would be a cycle.
    from repro.bounds.rounding import solve_lp_rounding

    return solve_lp_rounding(network, users, rng=rng)


register_solver("lp_rounding", _lp_rounding_adapter, display="LP-Round")
