"""Design-choice ablations (DESIGN.md §4).

* **Retention policy** in Algorithm 3: the paper keeps max-rate channels
  greedily when a switch overflows; how much does that matter versus
  random retention?
* **Prim seed sensitivity**: Algorithm 4 starts from a random user; how
  stable is its rate across seeds?
* **Fusion penalty** for the N-FUSION baseline: our substitution model
  introduces μ; how sensitive is the comparison's *shape* to it?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import SummaryStats, summarize
from repro.analysis.tables import Table
from repro.baselines.nfusion import solve_nfusion
from repro.core.conflict_free import solve_conflict_free
from repro.core.prim_based import solve_prim
from repro.experiments.config import ExperimentConfig
from repro.topology.registry import generate
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class AblationResult:
    """Rates per variant across the generated networks."""

    variants: Dict[str, Tuple[float, ...]]

    def stats(self) -> Dict[str, SummaryStats]:
        return {name: summarize(rates) for name, rates in self.variants.items()}

    def to_table(self, title: Optional[str] = None) -> Table:
        table = Table(["variant", "mean rate", "failures"], title=title)
        for name, stats in self.stats().items():
            table.add_row([name, stats.mean, f"{stats.n_zero}/{stats.n}"])
        return table


def _networks(config: ExperimentConfig):
    for rng in spawn_rngs(config.seed, config.n_networks):
        yield generate(config.topology, config.topology_config(), rng), rng


def run_retention_ablation(
    base: Optional[ExperimentConfig] = None,
) -> AblationResult:
    """Algorithm 3: greedy (paper) vs. random Phase-1 retention."""
    config = base or ExperimentConfig()
    greedy: List[float] = []
    random_order: List[float] = []
    for network, rng in _networks(config):
        greedy.append(solve_conflict_free(network, retention="greedy").rate)
        random_order.append(
            solve_conflict_free(network, retention="random", rng=rng).rate
        )
    return AblationResult(
        variants={
            "greedy retention (paper)": tuple(greedy),
            "random retention": tuple(random_order),
        }
    )


def run_prim_seed_ablation(
    base: Optional[ExperimentConfig] = None,
    n_seeds: int = 5,
) -> AblationResult:
    """Algorithm 4: sensitivity of the rate to the seed user choice."""
    config = base or ExperimentConfig()
    per_variant: Dict[str, List[float]] = {
        f"seed user #{k}": [] for k in range(n_seeds)
    }
    per_variant["best of all seeds"] = []
    for network, _ in _networks(config):
        users = network.user_ids
        rates = []
        for k in range(min(n_seeds, len(users))):
            rate = solve_prim(network, start=users[k]).rate
            per_variant[f"seed user #{k}"].append(rate)
            rates.append(rate)
        per_variant["best of all seeds"].append(max(rates) if rates else 0.0)
    return AblationResult(
        variants={name: tuple(vals) for name, vals in per_variant.items()}
    )


def run_fusion_penalty_ablation(
    base: Optional[ExperimentConfig] = None,
    penalties: Sequence[float] = (1.0, 0.9, 0.75, 0.5),
) -> AblationResult:
    """N-FUSION: rate under different GHZ-measurement penalty factors μ."""
    config = base or ExperimentConfig()
    per_variant: Dict[str, List[float]] = {
        f"mu={penalty}": [] for penalty in penalties
    }
    for network, _ in _networks(config):
        for penalty in penalties:
            rate = solve_nfusion(network, fusion_penalty=penalty).rate
            per_variant[f"mu={penalty}"].append(rate)
    return AblationResult(
        variants={name: tuple(vals) for name, vals in per_variant.items()}
    )
