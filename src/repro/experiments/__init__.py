"""Experiment harness reproducing the paper's evaluation (Sec. V).

One module per figure:

* :mod:`repro.experiments.fig5_topology` — Fig. 5, rate vs topology.
* :mod:`repro.experiments.fig6_scale` — Fig. 6(a) users, 6(b) switches.
* :mod:`repro.experiments.fig7_edges` — Fig. 7(a) degree, 7(b) removal.
* :mod:`repro.experiments.fig8_switch` — Fig. 8(a) qubits, 8(b) swap q.
* :mod:`repro.experiments.headline` — the Sec. V-B "up to X%" claims.
* :mod:`repro.experiments.ablation` — DESIGN.md §4 design-choice studies.
"""

from repro.experiments.config import ExperimentConfig, DEFAULT_METHODS
from repro.experiments.runner import (
    ExperimentResult,
    MethodOutcome,
    run_experiment,
    run_on_network,
)
from repro.experiments.sweeps import SweepResult, sweep
from repro.experiments.fig5_topology import run_fig5
from repro.experiments.fig6_scale import run_fig6a, run_fig6b
from repro.experiments.fig7_edges import run_fig7a, run_fig7b, EdgeRemovalResult
from repro.experiments.fig8_switch import run_fig8a, run_fig8b
from repro.experiments.headline import run_headline, HeadlineResult
from repro.experiments.ablation import (
    run_retention_ablation,
    run_prim_seed_ablation,
    run_fusion_penalty_ablation,
)
from repro.experiments.catalog import EXPERIMENTS, run_named

__all__ = [
    "ExperimentConfig",
    "DEFAULT_METHODS",
    "ExperimentResult",
    "MethodOutcome",
    "run_experiment",
    "run_on_network",
    "SweepResult",
    "sweep",
    "run_fig5",
    "run_fig6a",
    "run_fig6b",
    "run_fig7a",
    "run_fig7b",
    "EdgeRemovalResult",
    "run_fig8a",
    "run_fig8b",
    "run_headline",
    "HeadlineResult",
    "run_retention_ablation",
    "run_prim_seed_ablation",
    "run_fusion_penalty_ablation",
    "EXPERIMENTS",
    "run_named",
]
