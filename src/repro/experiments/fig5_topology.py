"""Fig. 5 — entanglement rate vs. network topology.

Paper setup: default parameters (50 switches, 10 users, D = 6, Q = 4,
q = 0.9), three generation methods: Waxman, Watts–Strogatz, Volchenkov.
Expected shape: the proposed algorithms beat both baselines on every
topology, and N-FUSION fails entirely on Watts–Strogatz graphs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import SweepResult, sweep

TOPOLOGIES: Sequence[str] = ("waxman", "watts_strogatz", "volchenkov")


def run_fig5(
    base: Optional[ExperimentConfig] = None,
    topologies: Sequence[str] = TOPOLOGIES,
    workers: Optional[int] = None,
    with_bound: bool = False,
) -> SweepResult:
    """Reproduce Fig. 5's data series.

    ``with_bound`` computes the certified LP bound per trial network
    (:mod:`repro.bounds`) and adds optimality-gap columns to the tables.
    """
    base = base or ExperimentConfig()
    if with_bound:
        base = base.replace(bound="lp")
    return sweep(base, "topology", list(topologies), workers=workers)
