"""Crash-safe experiment checkpointing.

The paper's sweeps average hundreds of (config, network) trials; a
killed process used to forfeit all of them.  :class:`CheckpointStore`
persists one JSONL record per completed trial so an interrupted sweep
resumes losslessly:

* **atomic**: every flush writes the whole file to a temp sibling,
  ``fsync``\\ s it, and ``os.replace``\\ s it over the store — a crash
  mid-write leaves either the old file or the new one, never a blend;
* **integrity-checked**: each line carries a sha256 over its canonical
  payload.  A truncated final line (torn write from a kill) is dropped
  silently on load; a *decodable* line whose hash mismatches means the
  file was edited and raises :class:`CheckpointCorruption`;
* **keyed deterministically**: trials are identified by
  ``(config_key(config), trial_index)``.  :func:`config_key` hashes the
  canonical JSON of the config's fields, so the same sweep point maps
  to the same key across runs while any parameter change invalidates
  old entries.

Because :func:`repro.utils.rng.spawn_rngs` derives per-trial generators
independently of execution order, replaying only the missing trial
indices reproduces exactly the rates a straight-through run would have
produced — resumed aggregates are byte-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import repro.obs.metrics as obs_metrics
from repro.experiments.config import ExperimentConfig

logger = logging.getLogger("repro.experiments.checkpoint")


class CheckpointCorruption(RuntimeError):
    """A checkpoint line decoded but failed its integrity hash.

    Torn trailing writes are expected after a kill and are silently
    dropped; a *valid* JSON line with a wrong hash means the file was
    modified outside this module, which is never safe to resume from.
    """

    def __init__(self, path: Union[str, Path], line_no: int, reason: str) -> None:
        super().__init__(
            f"checkpoint {path}: line {line_no}: {reason}"
        )
        self.path = str(path)
        self.line_no = line_no
        self.reason = reason


def _canonical(payload: object) -> str:
    """Canonical JSON: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_key(config: ExperimentConfig) -> str:
    """Deterministic identity of one experiment configuration.

    A sha256 over the canonical JSON of every dataclass field, so two
    equal configs share a key across processes and any changed
    parameter (seed, methods, topology, …) yields a fresh one.
    """
    fields = dataclasses.asdict(config)
    return hashlib.sha256(_canonical(fields).encode("utf-8")).hexdigest()[:16]


def _line_hash(entry_payload: str) -> str:
    return hashlib.sha256(entry_payload.encode("utf-8")).hexdigest()


@dataclass
class MergeReport:
    """What a tolerant checkpoint parse/merge absorbed — and dropped.

    Returned by :meth:`CheckpointStore.merge_from`.  ``skipped`` counts
    decodable-but-invalid records (bad envelope, hash mismatch), while
    ``torn`` flags an undecodable tail — a truncated file parses
    "cleanly" record-by-record, so the flag is what tells the caller
    the file is incomplete and must be quarantined.
    """

    absorbed: int = 0
    skipped: int = 0
    torn: bool = False
    reasons: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.skipped == 0 and not self.torn


def _parse_lines(
    path: Union[str, Path], raw: str, strict: bool
) -> Tuple[Dict[Tuple[str, int], Dict[str, object]], MergeReport]:
    """Parse checkpoint JSONL into entries, strictly or tolerantly.

    ``strict=True`` is the single-store read path: any corruption other
    than a torn final write raises :class:`CheckpointCorruption`.
    ``strict=False`` is the merge path: bad records are skipped and
    attributed in the returned :class:`MergeReport` so one corrupt
    shard file cannot poison a whole sweep's merge.
    """
    entries: Dict[Tuple[str, int], Dict[str, object]] = {}
    report = MergeReport()

    def reject(line_no: int, reason: str) -> None:
        if strict:
            raise CheckpointCorruption(path, line_no, reason)
        report.skipped += 1
        report.reasons.append(f"line {line_no}: {reason}")
        logger.warning("checkpoint %s: line %d skipped: %s", path, line_no, reason)

    lines = raw.split("\n")
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) or all(
                not rest.strip() for rest in lines[i:]
            ):
                # Torn final write from a kill — drop and move on (but
                # remember: the file is incomplete).
                report.torn = True
                continue
            reject(i, "undecodable line before end of file")
            continue
        if (
            not isinstance(record, dict)
            or "sha256" not in record
            or "entry" not in record
        ):
            reject(i, "record missing sha256/entry envelope")
            continue
        payload = _canonical(record["entry"])
        if _line_hash(payload) != record["sha256"]:
            reject(i, "integrity hash mismatch (file was modified)")
            continue
        entry = record["entry"]
        try:
            key = (str(entry["config_key"]), int(entry["trial"]))
        except (KeyError, TypeError, ValueError):
            reject(i, "entry missing config_key/trial")
            continue
        entries[key] = entry
        report.absorbed += 1
    return entries, report


class CheckpointStore:
    """Append-oriented JSONL store of completed experiment trials.

    One record per ``(config_key, trial_index)``; re-recording an
    existing key overwrites it (last write wins).  The on-disk file is
    rewritten atomically on every :meth:`record` — sweeps are dominated
    by solver time, so the O(file) rewrite is noise, and it buys the
    guarantee that the store on disk is always a self-consistent
    prefix-complete history.

    Args:
        path: The JSONL file; created (with parents) on first record.
            An existing file is loaded — and verified — eagerly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: (config_key, trial_index) → trial payload dict.
        self._entries: Dict[Tuple[str, int], Dict[str, object]] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Load / integrity
    # ------------------------------------------------------------------
    def _load(self) -> None:
        raw = self.path.read_text(encoding="utf-8")
        self._entries, _ = _parse_lines(self.path, raw, strict=True)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def has(self, config: ExperimentConfig, trial: int) -> bool:
        """Whether *trial* of *config* already completed."""
        return (config_key(config), trial) in self._entries

    def get(
        self, config: ExperimentConfig, trial: int
    ) -> Optional[Dict[str, float]]:
        """The recorded method → rate map, or ``None`` if absent."""
        entry = self._entries.get((config_key(config), trial))
        if entry is None:
            return None
        rates = entry["rates"]
        assert isinstance(rates, dict)
        return {str(m): float(r) for m, r in rates.items()}

    def completed_trials(self, config: ExperimentConfig) -> List[int]:
        """Sorted trial indices already recorded for *config*."""
        key = config_key(config)
        return sorted(t for (k, t) in self._entries if k == key)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        config: ExperimentConfig,
        trial: int,
        rates: Dict[str, float],
    ) -> None:
        """Persist one completed trial, atomically, before returning."""
        entry: Dict[str, object] = {
            "config_key": config_key(config),
            "trial": int(trial),
            "rates": {str(m): float(r) for m, r in rates.items()},
        }
        self._entries[(str(entry["config_key"]), int(trial))] = entry
        self._flush()

    def merge_from(
        self, other: Union["CheckpointStore", str, Path]
    ) -> MergeReport:
        """Absorb every record of *other* into this store (one flush).

        The parallel execution engine gives each worker shard a private
        checkpoint file (concurrent writers must never share one
        atomic-rename target) and folds them into the main store here —
        after a completed run, or for whatever shards finished when a
        run is interrupted.  Records are keyed by ``(config_key,
        trial)`` so merging is idempotent; *other*'s records win on
        collision (last write wins, as with :meth:`record`).

        *other* may be a loaded store, or a path — the path form parses
        **tolerantly**: a corrupt record is skipped (and counted in the
        ``repro.exec.checkpoint.quarantined`` metric) rather than
        raising :class:`CheckpointCorruption`, so one bad shard file
        never poisons a sweep's merge.  The strict typed error remains
        the contract of the single-store read path
        (``CheckpointStore(path)``).  Returns a :class:`MergeReport`
        attributing what was absorbed and what was dropped.
        """
        if isinstance(other, CheckpointStore):
            entries = dict(other._entries)
            report = MergeReport(absorbed=len(entries))
        else:
            source = Path(other)
            raw = (
                source.read_text(encoding="utf-8")
                if source.exists()
                else ""
            )
            entries, report = _parse_lines(source, raw, strict=False)
        if report.skipped:
            metrics = obs_metrics.active()
            if metrics is not None:
                metrics.inc(
                    "repro.exec.checkpoint.quarantined", report.skipped
                )
        if entries:
            self._entries.update(entries)
            self._flush()
        return report

    def _flush(self) -> None:
        """Rewrite the store via temp-file + fsync + atomic rename."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        body_lines = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            payload = _canonical(entry)
            envelope = {"entry": entry, "sha256": _line_hash(payload)}
            body_lines.append(_canonical(envelope))
        body = "\n".join(body_lines) + ("\n" if body_lines else "")
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


#: Stack of stores activated via :func:`checkpointing` (innermost last).
_ACTIVE_STORES: List[CheckpointStore] = []


def active_store() -> Optional[CheckpointStore]:
    """The innermost store activated by :func:`checkpointing`, if any."""
    return _ACTIVE_STORES[-1] if _ACTIVE_STORES else None


@contextmanager
def checkpointing(store: CheckpointStore) -> Iterator[CheckpointStore]:
    """Make *store* ambient for every ``run_experiment`` in the block.

    Sweeps (:mod:`repro.experiments.sweeps`, the experiment catalogue)
    call :func:`repro.experiments.runner.run_experiment` internally with
    no checkpoint parameter; wrapping the sweep in ``checkpointing``
    checkpoints every trial they run without threading the store through
    each call signature.
    """
    _ACTIVE_STORES.append(store)
    try:
        yield store
    finally:
        popped = _ACTIVE_STORES.pop()
        assert popped is store, "checkpointing stack corrupted"
