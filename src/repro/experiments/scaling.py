"""Runtime-scaling study: solver wall time vs. network size.

The paper quotes asymptotic complexities (Sec. IV); this experiment
measures the constants.  Useful both as documentation and as a
regression tripwire for accidental quadratic blowups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.core.registry import DISPLAY_NAMES, solve
from repro.experiments.config import ExperimentConfig
from repro.topology.registry import generate
from repro.utils.rng import spawn_rngs

DEFAULT_SIZES: Sequence[int] = (25, 50, 100, 200)
DEFAULT_METHODS: Sequence[str] = ("optimal", "conflict_free", "prim")


@dataclass(frozen=True)
class ScalingResult:
    """Mean solver runtimes (seconds) per network size."""

    sizes: Tuple[int, ...]
    timings: Dict[str, Tuple[float, ...]]  # method -> seconds per size

    def to_table(self, title: Optional[str] = None) -> Table:
        columns = ["switches"] + [
            f"{DISPLAY_NAMES.get(m, m)} (ms)" for m in self.timings
        ]
        table = Table(columns, title=title)
        for index, size in enumerate(self.sizes):
            table.add_row(
                [size]
                + [
                    f"{1000 * self.timings[m][index]:.1f}"
                    for m in self.timings
                ]
            )
        return table

    def growth_factor(self, method: str) -> float:
        """Runtime ratio between the largest and smallest size."""
        series = self.timings[method]
        if series[0] <= 0:
            return float("inf")
        return series[-1] / series[0]


def run_scaling(
    base: Optional[ExperimentConfig] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    methods: Sequence[str] = DEFAULT_METHODS,
    repeats: int = 3,
) -> ScalingResult:
    """Time each method on progressively larger Waxman networks."""
    config = base or ExperimentConfig()
    timings: Dict[str, List[float]] = {m: [] for m in methods}
    for size in sizes:
        sized = config.replace(n_switches=size)
        networks = [
            generate(sized.topology, sized.topology_config(), rng)
            for rng in spawn_rngs(sized.seed, repeats)
        ]
        for method in methods:
            start = time.perf_counter()
            for network in networks:
                solve(method, network, rng=0)
            elapsed = (time.perf_counter() - start) / len(networks)
            timings[method].append(elapsed)
    return ScalingResult(
        sizes=tuple(sizes),
        timings={m: tuple(v) for m, v in timings.items()},
    )
