"""Experiment configuration.

Defaults mirror Sec. V-A exactly: Waxman topology, 50 switches, 10
users, average degree 6, 4 qubits per switch, swap rate 0.9, α = 1e-4,
10k × 10k km area, 20 random networks per data point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.topology.base import TopologyConfig

#: Methods plotted in every figure of the paper, in legend order.
DEFAULT_METHODS: Tuple[str, ...] = (
    "optimal",
    "conflict_free",
    "prim",
    "nfusion",
    "eqcast",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Full specification of one experiment data point.

    Attributes mirror :class:`~repro.topology.TopologyConfig` plus the
    evaluation-protocol knobs (topology method, network count, seed,
    algorithm list).
    """

    topology: str = "waxman"
    n_switches: int = 50
    n_users: int = 10
    avg_degree: float = 6.0
    qubits_per_switch: int = 4
    swap_prob: float = 0.9
    alpha: float = 1e-4
    area: float = 10_000.0
    n_edges: int = 0
    n_networks: int = 20
    seed: int = 7
    methods: Tuple[str, ...] = DEFAULT_METHODS
    #: ``"lp"`` computes a certified LP upper bound per trial network
    #: (:mod:`repro.bounds`) and threads optimality-gap columns through
    #: the result tables; ``""`` (default) skips bound computation.
    bound: str = ""
    #: LP backend for the bound: ``"auto"``, ``"simplex"`` or ``"scipy"``.
    bound_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_networks < 1:
            raise ValueError("n_networks must be >= 1")
        if not self.methods:
            raise ValueError("methods must not be empty")
        if self.bound not in ("", "lp"):
            raise ValueError(
                f"unknown bound kind {self.bound!r}; expected '' or 'lp'"
            )
        if self.bound_backend not in ("auto", "simplex", "scipy"):
            raise ValueError(
                f"unknown bound backend {self.bound_backend!r}; "
                "expected 'auto', 'simplex' or 'scipy'"
            )

    def topology_config(self) -> TopologyConfig:
        """The matching topology-generation parameters."""
        return TopologyConfig(
            n_switches=self.n_switches,
            n_users=self.n_users,
            avg_degree=self.avg_degree,
            qubits_per_switch=self.qubits_per_switch,
            area=self.area,
            alpha=self.alpha,
            swap_prob=self.swap_prob,
            n_edges=self.n_edges,
        )

    def replace(self, **changes) -> "ExperimentConfig":
        """Copy with fields replaced (sweeps use this heavily)."""
        return replace(self, **changes)
