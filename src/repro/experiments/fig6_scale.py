"""Fig. 6 — entanglement rate vs. network scale.

* Fig. 6(a): sweep the number of users (default {4, 6, 8, 10, 12}) —
  rate decreases with more users since more channels must multiply into
  Eq. (2).
* Fig. 6(b): sweep the number of switches ({10, 20, 30, 40, 50}) — rate
  mostly decreases (longer channels) with a possible uptick at high
  counts when extra switches provide better channel choices.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import SweepResult, sweep

USER_COUNTS: Sequence[int] = (4, 6, 8, 10, 12)
SWITCH_COUNTS: Sequence[int] = (10, 20, 30, 40, 50)


def run_fig6a(
    base: Optional[ExperimentConfig] = None,
    user_counts: Sequence[int] = USER_COUNTS,
    workers: Optional[int] = None,
    with_bound: bool = False,
) -> SweepResult:
    """Reproduce Fig. 6(a): rate vs. number of users.

    ``with_bound`` adds per-trial certified LP bounds and
    optimality-gap columns (:mod:`repro.bounds`).
    """
    base = base or ExperimentConfig()
    if with_bound:
        base = base.replace(bound="lp")
    return sweep(base, "n_users", list(user_counts), workers=workers)


def run_fig6b(
    base: Optional[ExperimentConfig] = None,
    switch_counts: Sequence[int] = SWITCH_COUNTS,
    workers: Optional[int] = None,
    with_bound: bool = False,
) -> SweepResult:
    """Reproduce Fig. 6(b): rate vs. number of switches.

    ``with_bound`` adds per-trial certified LP bounds and
    optimality-gap columns (:mod:`repro.bounds`).
    """
    base = base or ExperimentConfig()
    if with_bound:
        base = base.replace(bound="lp")
    return sweep(base, "n_switches", list(switch_counts), workers=workers)
