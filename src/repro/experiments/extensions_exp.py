"""Experiments for the library's extensions (beyond the paper's figures).

* :func:`run_localsearch_experiment` — how much the hill climber adds on
  top of each constructive heuristic.
* :func:`run_online_load_experiment` — acceptance ratio of the online
  scheduler as the offered load (overlapping requests) grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.core.localsearch import improve_solution
from repro.core.registry import solve
from repro.experiments.ablation import AblationResult
from repro.experiments.config import ExperimentConfig
from repro.sim.online import EntanglementRequest, OnlineScheduler
from repro.topology.registry import generate
from repro.utils.rng import spawn_rngs


def run_localsearch_experiment(
    base: Optional[ExperimentConfig] = None,
    methods: Sequence[str] = ("conflict_free", "prim", "random_tree"),
) -> AblationResult:
    """Rates with and without local-search post-optimization."""
    config = base or ExperimentConfig()
    variants: Dict[str, List[float]] = {}
    for method in methods:
        variants[method] = []
        variants[method + "+ls"] = []
    for rng in spawn_rngs(config.seed, config.n_networks):
        network = generate(config.topology, config.topology_config(), rng)
        for method in methods:
            solution = solve(method, network, rng=rng)
            variants[method].append(solution.rate)
            if solution.feasible:
                improved = improve_solution(network, solution)
                variants[method + "+ls"].append(improved.rate)
            else:
                variants[method + "+ls"].append(0.0)
    return AblationResult(
        variants={name: tuple(vals) for name, vals in variants.items()}
    )


@dataclass(frozen=True)
class OnlineLoadResult:
    """Acceptance ratio vs. number of concurrent requests."""

    loads: Tuple[int, ...]
    acceptance: Tuple[float, ...]
    mean_rates: Tuple[float, ...]

    def to_table(self, title: Optional[str] = None) -> Table:
        table = Table(
            ["concurrent requests", "acceptance ratio", "mean accepted rate"],
            title=title,
        )
        for load, accepted, rate in zip(
            self.loads, self.acceptance, self.mean_rates
        ):
            table.add_row([load, f"{accepted:.2f}", rate])
        return table


def run_online_load_experiment(
    base: Optional[ExperimentConfig] = None,
    loads: Sequence[int] = (1, 2, 4, 8),
    group_size: int = 3,
    hold: int = 4,
) -> OnlineLoadResult:
    """Offered-load sweep for the online scheduler.

    For each load L, L simultaneous group requests (disjoint user groups
    when possible, wrapping otherwise) arrive at slot 0 and hold their
    qubits for *hold* slots; acceptance is averaged over the config's
    networks.
    """
    config = base or ExperimentConfig()
    acceptance: List[float] = []
    mean_rates: List[float] = []
    for load in loads:
        ratios = []
        rates = []
        for rng in spawn_rngs(config.seed, config.n_networks):
            network = generate(config.topology, config.topology_config(), rng)
            users = network.user_ids
            requests = []
            for index in range(load):
                group = tuple(
                    users[(index * group_size + offset) % len(users)]
                    for offset in range(group_size)
                )
                if len(set(group)) < group_size:
                    continue  # wrapped into a duplicate; skip this slot
                requests.append(
                    EntanglementRequest(
                        f"req{index}", group, arrival=0, hold=hold
                    )
                )
            if not requests:
                continue
            result = OnlineScheduler(network, rng=rng).run(requests)
            ratios.append(result.acceptance_ratio)
            rates.append(result.mean_accepted_rate)
        acceptance.append(float(np.mean(ratios)) if ratios else 1.0)
        mean_rates.append(float(np.mean(rates)) if rates else 0.0)
    return OnlineLoadResult(
        loads=tuple(loads),
        acceptance=tuple(acceptance),
        mean_rates=tuple(mean_rates),
    )
