"""Fig. 8 — impact of the quantum switch.

* Fig. 8(a): sweep per-switch qubits Q ∈ {2, 4, 6, 8}.  Algorithm 2 is
  exempt from the budget (it models the ``Q = 2|U|`` sufficient-capacity
  case), so its bar is flat; the heuristics and baselines climb with Q.
* Fig. 8(b): sweep the BSM success probability q ∈ {0.6 … 1.0} — all
  rates rise with q.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import SweepResult, sweep

QUBIT_COUNTS: Sequence[int] = (2, 4, 6, 8)
SWAP_PROBS: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0)


def run_fig8a(
    base: Optional[ExperimentConfig] = None,
    qubit_counts: Sequence[int] = QUBIT_COUNTS,
    workers: Optional[int] = None,
    with_bound: bool = False,
) -> SweepResult:
    """Reproduce Fig. 8(a): rate vs. qubits per switch.

    A qubit-budget sweep regenerates the *same* fiber plant at every
    sweep point (the budget is not a generation parameter), so with
    channel caching the per-trial routing searches hit across sweep
    points — this is the repeated-topology sweep the cache is built for.
    """
    base = base or ExperimentConfig()
    if with_bound:
        base = base.replace(bound="lp")
    return sweep(base, "qubits_per_switch", list(qubit_counts), workers=workers)


def run_fig8b(
    base: Optional[ExperimentConfig] = None,
    swap_probs: Sequence[float] = SWAP_PROBS,
    workers: Optional[int] = None,
    with_bound: bool = False,
) -> SweepResult:
    """Reproduce Fig. 8(b): rate vs. BSM swapping success probability."""
    base = base or ExperimentConfig()
    if with_bound:
        base = base.replace(bound="lp")
    return sweep(base, "swap_prob", list(swap_probs), workers=workers)
