"""Named catalogue of every reproducible experiment.

Maps the DESIGN.md experiment ids (fig5 … fig8b, headline, ablations) to
runnable callables, for the CLI and benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.experiments.ablation import (
    run_fusion_penalty_ablation,
    run_prim_seed_ablation,
    run_retention_ablation,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5_topology import run_fig5
from repro.experiments.fig6_scale import run_fig6a, run_fig6b
from repro.experiments.fig7_edges import run_fig7a, run_fig7b
from repro.experiments.extensions_exp import (
    run_localsearch_experiment,
    run_online_load_experiment,
)
from repro.experiments.fig8_switch import run_fig8a, run_fig8b
from repro.experiments.headline import run_headline
from repro.experiments.scaling import run_scaling

EXPERIMENTS: Dict[str, Callable] = {
    "fig5": run_fig5,
    "fig6a": run_fig6a,
    "fig6b": run_fig6b,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "headline": run_headline,
    "ablation-retention": run_retention_ablation,
    "ablation-prim-seed": run_prim_seed_ablation,
    "ablation-fusion-penalty": run_fusion_penalty_ablation,
    "ext-localsearch": run_localsearch_experiment,
    "ext-online-load": run_online_load_experiment,
    "scaling": run_scaling,
}


def run_named(
    name: str,
    base: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
):
    """Run the experiment registered under *name*.

    With ``workers > 1``, the whole experiment runs under an ambient
    :class:`~repro.exec.engine.ExecutionEngine`: every trial grid the
    driver touches (sweep points, fig7b replicas) shards across one
    shared process pool, whose workers keep their channel caches warm
    across the experiment.  Results are identical for every worker
    count.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if workers is not None and workers > 1:
        from repro.exec.engine import ExecutionEngine, executing

        with ExecutionEngine(workers=workers) as engine:
            with executing(engine):
                return runner(base)
    return runner(base)
