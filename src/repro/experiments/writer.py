"""One-shot full evaluation report generation.

``write_full_report`` runs every figure experiment at the given config
and assembles a single Markdown document mirroring the paper's Sec. V —
the mechanical path to regenerating EXPERIMENTS.md-style records.  Used
by ``repro experiment`` consumers and tested at reduced scale.
"""

from __future__ import annotations

from typing import List, Optional

import repro.obs.metrics as obs_metrics
from repro.analysis.report import (
    comparison_markdown,
    edge_removal_markdown,
    markdown_table,
    sweep_markdown,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5_topology import run_fig5
from repro.experiments.fig6_scale import run_fig6a, run_fig6b
from repro.experiments.fig7_edges import run_fig7a, run_fig7b
from repro.experiments.fig8_switch import run_fig8a, run_fig8b
from repro.experiments.headline import PROPOSED, run_headline


def write_full_report(
    base: Optional[ExperimentConfig] = None,
    include_fig7b: bool = True,
    with_bounds: bool = False,
) -> str:
    """Run all figure experiments and return the Markdown report.

    Args:
        base: Experiment configuration (paper defaults when omitted).
        include_fig7b: The edge-removal study is the slowest experiment;
            allow skipping it for quick reports.
        with_bounds: Compute the certified LP bound per trial network
            (:mod:`repro.bounds`) so every sweep table carries ``LP
            bound`` and per-method optimality-gap columns.  Fig. 7(b)
            is excluded (its measure/remove loop has no per-trial
            network to certify once).
    """
    config = base or ExperimentConfig()
    if with_bounds:
        config = config.replace(bound="lp")
    sections: List[str] = [
        "# Evaluation report",
        "",
        f"Configuration: topology={config.topology}, "
        f"{config.n_switches} switches, {config.n_users} users, "
        f"D={config.avg_degree}, Q={config.qubits_per_switch}, "
        f"q={config.swap_prob}, α={config.alpha}, "
        f"{config.n_networks} networks/point, seed={config.seed}.",
        "",
    ]
    if with_bounds:
        sections += [
            "Rate tables report each method's mean optimality gap "
            "against a per-network certified LP upper bound "
            "(`docs/BOUNDS.md`); capacity-exempt methods are measured "
            "against the uncapacitated relaxation.",
            "",
        ]

    sections.append(
        sweep_markdown(
            run_fig5(config),
            "Fig. 5 — rate vs topology",
            "The proposed algorithms dominate on every generator.",
        )
    )
    sections.append("")
    sections.append(
        sweep_markdown(
            run_fig6a(config),
            "Fig. 6(a) — rate vs number of users",
            "More users multiply more channels into Eq. (2).",
        )
    )
    sections.append("")
    sections.append(
        sweep_markdown(
            run_fig6b(config), "Fig. 6(b) — rate vs number of switches"
        )
    )
    sections.append("")
    sections.append(
        sweep_markdown(
            run_fig7a(config),
            "Fig. 7(a) — rate vs average degree",
            "Denser plants give better channel choices.",
        )
    )
    sections.append("")
    if include_fig7b:
        sections.append(
            edge_removal_markdown(
                run_fig7b(config.replace(bound="")),
                "Fig. 7(b) — rate vs removed-edge ratio",
            )
        )
        sections.append("")
    sections.append(
        sweep_markdown(
            run_fig8a(config),
            "Fig. 8(a) — rate vs qubits per switch",
            "Alg-2 models the sufficient-capacity case and stays flat.",
        )
    )
    sections.append("")
    sections.append(
        sweep_markdown(
            run_fig8b(config), "Fig. 8(b) — rate vs BSM success probability"
        )
    )
    sections.append("")

    headline = run_headline(config)
    rows = []
    for algorithm in PROPOSED:
        rows.append(
            [
                algorithm,
                headline.improvements.get((algorithm, "nfusion")),
                headline.improvements.get((algorithm, "eqcast")),
            ]
        )
    sections.append("### Headline improvements (Sec. V-B, percent)")
    sections.append("")
    sections.append(
        markdown_table(
            ["algorithm", "vs N-Fusion (%)", "vs E-Q-CAST (%)"], rows
        )
    )
    sections.append("")

    obs_section = _observability_markdown()
    if obs_section:
        sections.append(obs_section)
        sections.append("")
    return "\n".join(sections)


def _observability_markdown() -> str:
    """Render the active metrics registry as a report section.

    Empty string when no registry is collecting (``repro report`` runs
    without ``--metrics`` stay byte-identical to the classic output).
    """
    registry = obs_metrics.active()
    if registry is None:
        return ""
    lines = ["### Observability summary", ""]
    counters = registry.counters()
    if counters:
        rows = [[name, value] for name, value in sorted(counters.items())]
        lines.append(markdown_table(["counter", "value"], rows))
        lines.append("")
    summaries = registry.histogram_summaries()
    timing = summaries.get("experiments.trial_seconds")
    if timing:
        lines.append(
            f"Per-trial wall time: n={timing['count']}, "
            f"mean={timing['mean']:.4f}s, p50={timing['p50']:.4f}s, "
            f"p95={timing['p95']:.4f}s, p99={timing['p99']:.4f}s."
        )
        lines.append("")
    return "\n".join(lines).rstrip()
