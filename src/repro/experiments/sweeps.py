"""Generic one-parameter sweeps over :class:`ExperimentConfig`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.core.registry import DISPLAY_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclass(frozen=True)
class SweepResult:
    """Results of sweeping one config field across several values."""

    parameter: str
    values: Tuple[object, ...]
    results: Tuple[ExperimentResult, ...]

    def series(self) -> Dict[str, List[float]]:
        """Method → list of mean rates (one per swept value)."""
        methods = self.results[0].config.methods
        return {
            method: [r.outcome(method).mean_rate for r in self.results]
            for method in methods
        }

    @property
    def has_bounds(self) -> bool:
        """Whether every sweep point carries certified LP bounds."""
        return all(r.has_bounds for r in self.results)

    def bound_series(self) -> List[float]:
        """Mean certified LP bound per swept value."""
        if not self.has_bounds:
            raise ValueError("sweep ran without bound computation")
        return [r.mean_bound for r in self.results]

    def gap_series(self) -> Dict[str, List[float]]:
        """Method → mean optimality-gap-vs-LP-bound (%) per swept value.

        Gaps are averaged per trial against that trial's own certified
        bound (capacity-exempt methods against the uncapacitated one),
        not mean-rate against mean-bound — mixing the means would let a
        lucky network mask an unsound trial.
        """
        if not self.has_bounds:
            raise ValueError("sweep ran without bound computation")
        methods = self.results[0].config.methods
        return {
            method: [
                r.gap_aggregates()[method].mean_gap_percent
                for r in self.results
            ]
            for method in methods
        }

    def to_table(self, title: Optional[str] = None) -> Table:
        """One row per swept value, one column per method.

        Bounded sweeps gain a mean certified ``LP bound`` column plus
        one optimality-gap column per method.
        """
        methods = list(self.results[0].config.methods)
        columns = [self.parameter] + [
            DISPLAY_NAMES.get(m, m) for m in methods
        ]
        gaps = None
        if self.has_bounds:
            columns.append("LP bound")
            columns += [
                f"{DISPLAY_NAMES.get(m, m)} gap%" for m in methods
            ]
            gaps = self.gap_series()
        table = Table(columns, title=title)
        for index, (value, result) in enumerate(
            zip(self.values, self.results)
        ):
            rates = result.mean_rates()
            row = [value] + [rates[m] for m in methods]
            if gaps is not None:
                row.append(result.mean_bound)
                row += [f"{gaps[m][index]:.2f}" for m in methods]
            table.add_row(row)
        return table


def sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[object],
    workers: Optional[int] = None,
) -> SweepResult:
    """Run *base* once per value of *parameter* (a config field name).

    With ``workers > 1``, every sweep point's trials are sharded over
    one shared :class:`~repro.exec.engine.ExecutionEngine` — sharing
    the engine (rather than one per point) keeps its worker processes
    and their channel caches warm across sweep points, which is where
    repeated-topology sweeps (e.g. a qubit-budget sweep over the same
    fiber plants) earn their cache hit rate.  Results are byte-identical
    for every worker count.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    if workers is not None and workers > 1:
        from repro.exec.engine import ExecutionEngine, executing

        with ExecutionEngine(workers=workers) as engine:
            with executing(engine):
                return sweep(base, parameter, values)
    results = []
    for value in values:
        config = base.replace(**{parameter: value})
        results.append(run_experiment(config))
    return SweepResult(
        parameter=parameter,
        values=tuple(values),
        results=tuple(results),
    )
