"""The Sec. V-B headline numbers.

"Algorithms 2, 3, and 4 can boost the entanglement rate by up to 5347%,
3180%, and 3155% respectively when compared to N-FUSION, and by 5068%,
3014%, and 2990% respectively when compared to E-Q-CAST."

The *up to* is over the evaluated configurations; we reproduce it by
scanning the same sweeps (topology, users, switches, degree, qubits,
swap rate), computing per-configuration improvements of each proposed
algorithm over each baseline, and reporting the maxima (over
configurations with a non-zero baseline, since a zero baseline makes the
percentage infinite — N-FUSION on Watts–Strogatz, for instance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import improvement_percent
from repro.analysis.tables import Table
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5_topology import run_fig5
from repro.experiments.fig6_scale import run_fig6a, run_fig6b
from repro.experiments.fig7_edges import run_fig7a
from repro.experiments.fig8_switch import run_fig8a, run_fig8b
from repro.experiments.sweeps import SweepResult

PROPOSED = ("optimal", "conflict_free", "prim")
BASELINES = ("nfusion", "eqcast")


@dataclass(frozen=True)
class HeadlineResult:
    """Max finite improvement (percent) per (algorithm, baseline) pair."""

    improvements: Dict[Tuple[str, str], float]
    n_configurations: int

    def to_table(self, title: Optional[str] = None) -> Table:
        table = Table(
            ["algorithm", "vs N-Fusion (%)", "vs E-Q-CAST (%)"], title=title
        )
        for algorithm in PROPOSED:
            table.add_row(
                [
                    algorithm,
                    self.improvements.get((algorithm, "nfusion")),
                    self.improvements.get((algorithm, "eqcast")),
                ]
            )
        return table


def run_headline(base: Optional[ExperimentConfig] = None) -> HeadlineResult:
    """Scan all figure sweeps and report maximum finite improvements."""
    base = base or ExperimentConfig()
    sweeps: List[SweepResult] = [
        run_fig5(base),
        run_fig6a(base),
        run_fig6b(base),
        run_fig7a(base),
        run_fig8a(base),
        run_fig8b(base),
    ]
    improvements: Dict[Tuple[str, str], float] = {}
    n_configurations = 0
    for sweep_result in sweeps:
        for result in sweep_result.results:
            n_configurations += 1
            rates = result.mean_rates()
            for algorithm in PROPOSED:
                for baseline in BASELINES:
                    if baseline not in rates or algorithm not in rates:
                        continue
                    gain = improvement_percent(rates[algorithm], rates[baseline])
                    if math.isinf(gain):
                        continue  # zero baseline: excluded from "up to X%"
                    key = (algorithm, baseline)
                    improvements[key] = max(improvements.get(key, 0.0), gain)
    return HeadlineResult(
        improvements=improvements, n_configurations=n_configurations
    )
