"""Experiment execution: generate networks, run solvers, aggregate.

Replicates the paper's protocol: each data point averages the
entanglement rate over ``n_networks`` (default 20) independently
generated random networks, with infeasible runs contributing rate 0.

Every produced solution is validated against the MUERP invariants
(defence in depth).  Algorithm 2 is validated without the capacity
check: the paper runs it under the sufficient-capacity condition — in
Fig. 8(a)'s words, "the switches in Algorithm 2 ha[ve] 2|U| = 20 qubits"
regardless of the swept budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.baselines  # noqa: F401 - registers baseline solvers
import repro.obs.metrics as obs_metrics
import repro.obs.trace as obs_trace
from repro.analysis.stats import SummaryStats, summarize
from repro.analysis.tables import Table
from repro.core.registry import CAPACITY_EXEMPT_METHODS, DISPLAY_NAMES, solve
from repro.core.tree import validate_solution
from repro.experiments.checkpoint import CheckpointStore, active_store
from repro.experiments.config import ExperimentConfig
from repro.network.graph import QuantumNetwork
from repro.topology.registry import generate
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

#: Reserved keys in per-trial rate maps carrying the certified LP bound
#: (capacitated) and its uncapacitated variant.  They ride through the
#: checkpoint store and shard merges exactly like method rates, which
#: is what keeps bounded runs resumable and worker-count invariant.
BOUND_KEY = "__lp_bound__"
UNCAP_BOUND_KEY = "__lp_bound_uncap__"

#: Relative slack for the in-run soundness gate (rate vs. bound).
_SOUNDNESS_RTOL = 1e-7


@dataclass(frozen=True)
class MethodOutcome:
    """Aggregated results of one method over all generated networks."""

    method: str
    rates: Tuple[float, ...]

    @property
    def display(self) -> str:
        return DISPLAY_NAMES.get(self.method, self.method)

    @property
    def stats(self) -> SummaryStats:
        return summarize(self.rates)

    @property
    def mean_rate(self) -> float:
        return self.stats.mean


@dataclass(frozen=True)
class ExperimentResult:
    """All method outcomes for one experiment configuration.

    When the config enabled bound computation (``config.bound ==
    "lp"``), ``bounds``/``uncap_bounds`` hold the per-trial certified
    LP rate bounds (aligned with each outcome's ``rates``) and every
    table gains an optimality-gap-vs-LP-bound column.
    """

    config: ExperimentConfig
    outcomes: Tuple[MethodOutcome, ...]
    bounds: Tuple[float, ...] = ()
    uncap_bounds: Tuple[float, ...] = ()

    def outcome(self, method: str) -> MethodOutcome:
        for candidate in self.outcomes:
            if candidate.method == method:
                return candidate
        raise KeyError(f"no outcome for method {method!r}")

    def mean_rates(self) -> Dict[str, float]:
        return {o.method: o.mean_rate for o in self.outcomes}

    @property
    def has_bounds(self) -> bool:
        return bool(self.bounds)

    @property
    def mean_bound(self) -> float:
        """Mean certified (capacitated) LP rate bound across trials."""
        if not self.bounds:
            raise ValueError("experiment ran without bound computation")
        return float(np.mean(self.bounds))

    def bounds_for(self, method: str) -> Tuple[float, ...]:
        """Per-trial bounds *method* must stay below.

        Capacity-exempt methods (Algorithm 2 under its
        sufficient-capacity assumption) are measured against the
        uncapacitated relaxation; everything else against the
        capacitated one.
        """
        if not self.bounds:
            raise ValueError("experiment ran without bound computation")
        if method in CAPACITY_EXEMPT_METHODS:
            return self.uncap_bounds
        return self.bounds

    def gap_aggregates(self):
        """Per-method :class:`~repro.bounds.gap.GapAggregate` map."""
        from repro.bounds.gap import aggregate_gaps

        aggregates = {}
        for outcome in self.outcomes:
            aggregates.update(
                aggregate_gaps(
                    {outcome.method: outcome.rates},
                    self.bounds_for(outcome.method),
                )
            )
        return aggregates

    def to_table(self, title: Optional[str] = None) -> Table:
        columns = ["method", "mean rate", "min", "max", "failures"]
        gaps = None
        if self.has_bounds:
            columns.append("gap vs LP bound")
            gaps = self.gap_aggregates()
        table = Table(columns, title=title)
        for outcome in self.outcomes:
            stats = outcome.stats
            row = [
                outcome.display,
                stats.mean,
                stats.minimum,
                stats.maximum,
                f"{stats.n_zero}/{stats.n}",
            ]
            if gaps is not None:
                row.append(f"{gaps[outcome.method].mean_gap_percent:.2f}%")
            table.add_row(row)
        return table


def run_on_network(
    network: QuantumNetwork,
    methods: Sequence[str],
    rng: RngLike = None,
    validate: bool = True,
) -> Dict[str, float]:
    """Run each method once on *network*, returning method → rate.

    Raises ``AssertionError`` if any solver emits an invalid tree (this
    is a library bug, never a legitimate experiment outcome).
    """
    generator = ensure_rng(rng)
    metrics = obs_metrics.active()
    rates: Dict[str, float] = {}
    for method in methods:
        started = time.perf_counter()
        solution = solve(method, network, rng=generator)
        if metrics is not None:
            metrics.inc(f"experiments.solves.{method}")
            metrics.observe(
                f"experiments.solve_seconds.{method}",
                time.perf_counter() - started,
            )
            if not solution.feasible:
                metrics.inc(f"experiments.infeasible.{method}")
        if validate:
            report = validate_solution(
                network,
                solution,
                enforce_capacity=method not in CAPACITY_EXEMPT_METHODS,
            )
            assert report.ok, (
                f"solver {method!r} produced an invalid solution: {report}"
            )
        rates[method] = solution.rate
    return rates


def run_trial(
    config: ExperimentConfig,
    trial: int,
    rng: RngLike = None,
) -> Dict[str, float]:
    """Run one ``(config, trial)`` work unit: generate, solve, validate.

    The unit of work the parallel execution engine shards: it depends
    only on ``(config, trial)`` — the per-trial RNG is index-seeded via
    :func:`~repro.utils.rng.spawn_rngs`, so any process can compute any
    trial in any order and produce the identical method → rate map.
    Callers that already spawned the trial generators (the serial loop
    below) pass the matching *rng* to skip re-deriving it.
    """
    network_rng = (
        rng
        if rng is not None
        else spawn_rngs(config.seed, config.n_networks)[trial]
    )
    with obs_trace.span("experiment.trial", trial=trial):
        network = generate(
            config.topology, config.topology_config(), network_rng
        )
        rates = run_on_network(network, config.methods, network_rng)
        if config.bound == "lp":
            _attach_bounds(network, config, rates)
        return rates


def _attach_bounds(
    network: QuantumNetwork,
    config: ExperimentConfig,
    rates: Dict[str, float],
) -> None:
    """Compute the trial's LP bounds and gate every rate against them.

    Stores the certified bounds under :data:`BOUND_KEY` /
    :data:`UNCAP_BOUND_KEY` and asserts in-run soundness: a heuristic
    rate above its certified bound is a library bug (in the solver, the
    verifier or the bound itself), never a legitimate outcome.
    """
    from repro.bounds.gap import optimality_gap
    from repro.bounds.lp import compute_bound

    certificate = compute_bound(
        network, backend=config.bound_backend, capacitated=True
    )
    uncap = compute_bound(
        network, backend=config.bound_backend, capacitated=False
    )
    rates[BOUND_KEY] = certificate.rate_bound
    rates[UNCAP_BOUND_KEY] = uncap.rate_bound
    metrics = obs_metrics.active()
    for method in config.methods:
        bound = (
            uncap if method in CAPACITY_EXEMPT_METHODS else certificate
        )
        gap = optimality_gap(rates[method], bound)
        assert gap >= -_SOUNDNESS_RTOL, (
            f"solver {method!r} rate {rates[method]:.6e} exceeds the "
            f"certified LP bound {bound.rate_bound:.6e} "
            f"(capacitated={bound.capacitated}) — unsound bound or "
            f"invalid solution"
        )
        if metrics is not None:
            metrics.observe(f"bounds.gap_percent.{method}", 100.0 * gap)


def resumable_rates(
    store: Optional[CheckpointStore],
    config: ExperimentConfig,
    trial: int,
) -> Optional[Dict[str, float]]:
    """Recorded rates for *trial* if the store fully covers *config*.

    A resumable record must cover every requested method; partial
    records (e.g. from a sweep with fewer methods) are recomputed
    rather than trusted.
    """
    if store is None:
        return None
    recorded = store.get(config, trial)
    if recorded is None or any(m not in recorded for m in config.methods):
        return None
    keys = list(config.methods)
    if config.bound == "lp":
        if BOUND_KEY not in recorded or UNCAP_BOUND_KEY not in recorded:
            return None
        keys += [BOUND_KEY, UNCAP_BOUND_KEY]
    return {k: recorded[k] for k in keys}


def run_experiment(
    config: ExperimentConfig,
    checkpoint: Optional[CheckpointStore] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the full averaged experiment described by *config*.

    With a *checkpoint* store (passed explicitly or made ambient via
    :func:`repro.experiments.checkpoint.checkpointing`), every completed
    trial is persisted atomically and previously recorded trials are
    skipped — a killed sweep resumes losslessly.  Because the per-trial
    RNGs come from :func:`~repro.utils.rng.spawn_rngs` (index-seeded,
    order-independent), resumed aggregates equal a straight-through run.

    With ``workers > 1`` (or an ambient
    :class:`~repro.exec.engine.ExecutionEngine` activated via
    :func:`repro.exec.engine.executing`), trials are sharded across a
    process pool and merged deterministically — aggregates are
    byte-identical for every worker count.  ``KeyboardInterrupt``
    during a parallel run cancels outstanding shards, flushes the
    checkpoints of completed ones into the store, and re-raises, so a
    Ctrl-C'd sweep neither orphans workers nor loses finished work.
    """
    if workers is not None and workers > 1:
        from repro.exec.engine import ExecutionEngine

        # Owned engine: close it (joining the worker pool) on the way
        # out so no executor outlives the call.
        with ExecutionEngine(workers=workers) as engine:
            return engine.run_experiment(config, checkpoint=checkpoint)
    from repro.exec.engine import active_engine

    engine = active_engine()
    if engine is not None:
        return engine.run_experiment(config, checkpoint=checkpoint)

    store = checkpoint if checkpoint is not None else active_store()
    network_rngs = spawn_rngs(config.seed, config.n_networks)
    per_method: Dict[str, List[float]] = {m: [] for m in config.methods}
    bounds: List[float] = []
    uncap_bounds: List[float] = []
    metrics = obs_metrics.active()
    with obs_trace.span(
        "experiment.run",
        topology=config.topology,
        n_networks=config.n_networks,
        methods=",".join(config.methods),
    ):
        for trial, network_rng in enumerate(network_rngs):
            rates = resumable_rates(store, config, trial)
            if rates is not None and metrics is not None:
                metrics.inc("experiments.trials_resumed")
            if rates is None:
                trial_started = time.perf_counter()
                rates = run_trial(config, trial, network_rng)
                if metrics is not None:
                    metrics.inc("experiments.trials")
                    metrics.observe(
                        "experiments.trial_seconds",
                        time.perf_counter() - trial_started,
                    )
                if store is not None:
                    store.record(config, trial, rates)
            for method in config.methods:
                per_method[method].append(rates[method])
            if config.bound == "lp":
                bounds.append(rates[BOUND_KEY])
                uncap_bounds.append(rates[UNCAP_BOUND_KEY])
    outcomes = tuple(
        MethodOutcome(method, tuple(per_method[method]))
        for method in config.methods
    )
    return ExperimentResult(
        config=config,
        outcomes=outcomes,
        bounds=tuple(bounds),
        uncap_bounds=tuple(uncap_bounds),
    )
