"""Experiment execution: generate networks, run solvers, aggregate.

Replicates the paper's protocol: each data point averages the
entanglement rate over ``n_networks`` (default 20) independently
generated random networks, with infeasible runs contributing rate 0.

Every produced solution is validated against the MUERP invariants
(defence in depth).  Algorithm 2 is validated without the capacity
check: the paper runs it under the sufficient-capacity condition — in
Fig. 8(a)'s words, "the switches in Algorithm 2 ha[ve] 2|U| = 20 qubits"
regardless of the swept budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.baselines  # noqa: F401 - registers baseline solvers
from repro.analysis.stats import SummaryStats, summarize
from repro.analysis.tables import Table
from repro.core.registry import DISPLAY_NAMES, solve
from repro.core.tree import validate_solution
from repro.experiments.config import ExperimentConfig
from repro.network.graph import QuantumNetwork
from repro.topology.registry import generate
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

#: Solvers whose output is allowed to exceed per-switch budgets because
#: they model the sufficient-capacity special case.
CAPACITY_EXEMPT_METHODS = frozenset({"optimal", "alg2"})


@dataclass(frozen=True)
class MethodOutcome:
    """Aggregated results of one method over all generated networks."""

    method: str
    rates: Tuple[float, ...]

    @property
    def display(self) -> str:
        return DISPLAY_NAMES.get(self.method, self.method)

    @property
    def stats(self) -> SummaryStats:
        return summarize(self.rates)

    @property
    def mean_rate(self) -> float:
        return self.stats.mean


@dataclass(frozen=True)
class ExperimentResult:
    """All method outcomes for one experiment configuration."""

    config: ExperimentConfig
    outcomes: Tuple[MethodOutcome, ...]

    def outcome(self, method: str) -> MethodOutcome:
        for candidate in self.outcomes:
            if candidate.method == method:
                return candidate
        raise KeyError(f"no outcome for method {method!r}")

    def mean_rates(self) -> Dict[str, float]:
        return {o.method: o.mean_rate for o in self.outcomes}

    def to_table(self, title: Optional[str] = None) -> Table:
        table = Table(
            ["method", "mean rate", "min", "max", "failures"],
            title=title,
        )
        for outcome in self.outcomes:
            stats = outcome.stats
            table.add_row(
                [
                    outcome.display,
                    stats.mean,
                    stats.minimum,
                    stats.maximum,
                    f"{stats.n_zero}/{stats.n}",
                ]
            )
        return table


def run_on_network(
    network: QuantumNetwork,
    methods: Sequence[str],
    rng: RngLike = None,
    validate: bool = True,
) -> Dict[str, float]:
    """Run each method once on *network*, returning method → rate.

    Raises ``AssertionError`` if any solver emits an invalid tree (this
    is a library bug, never a legitimate experiment outcome).
    """
    generator = ensure_rng(rng)
    rates: Dict[str, float] = {}
    for method in methods:
        solution = solve(method, network, rng=generator)
        if validate:
            report = validate_solution(
                network,
                solution,
                enforce_capacity=method not in CAPACITY_EXEMPT_METHODS,
            )
            assert report.ok, (
                f"solver {method!r} produced an invalid solution: {report}"
            )
        rates[method] = solution.rate
    return rates


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run the full averaged experiment described by *config*."""
    topology_config = config.topology_config()
    network_rngs = spawn_rngs(config.seed, config.n_networks)
    per_method: Dict[str, List[float]] = {m: [] for m in config.methods}
    for network_rng in network_rngs:
        network = generate(config.topology, topology_config, network_rng)
        rates = run_on_network(network, config.methods, network_rng)
        for method, rate in rates.items():
            per_method[method].append(rate)
    outcomes = tuple(
        MethodOutcome(method, tuple(per_method[method]))
        for method in config.methods
    )
    return ExperimentResult(config=config, outcomes=outcomes)
