"""Fig. 7 — impact of the fiber plant.

* Fig. 7(a): sweep the average node degree D ∈ {4, 6, 8, 10} — denser
  networks give better channel choices and higher rates.
* Fig. 7(b): the edge-removal study.  Build a 600-fiber Waxman network
  (50 switches, 10 users, Q = 4), then repeatedly remove 30 uniformly
  random fibers and re-solve, tracking each algorithm's rate as the
  removed-edge ratio climbs to 0.9.  The paper's observations — plateaus
  while non-critical edges fall, occasional *improvements* when a
  removal steers the greedy off a bad channel — emerge from the same
  procedure here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.core.registry import DISPLAY_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_on_network
from repro.experiments.sweeps import SweepResult, sweep
from repro.topology.registry import generate
from repro.utils.rng import spawn_rngs

DEGREES: Sequence[float] = (4.0, 6.0, 8.0, 10.0)

#: Fig. 7(b) setup: 600 fibers, 30 removed per step, ratio up to 0.9.
FIG7B_EDGES = 600
FIG7B_STEP = 30
FIG7B_MAX_RATIO = 0.9


def run_fig7a(
    base: Optional[ExperimentConfig] = None,
    degrees: Sequence[float] = DEGREES,
    workers: Optional[int] = None,
    with_bound: bool = False,
) -> SweepResult:
    """Reproduce Fig. 7(a): rate vs. average degree.

    ``with_bound`` adds per-trial certified LP bounds and
    optimality-gap columns (:mod:`repro.bounds`).
    """
    base = base or ExperimentConfig()
    if with_bound:
        base = base.replace(bound="lp")
    return sweep(base, "avg_degree", list(degrees), workers=workers)


@dataclass(frozen=True)
class EdgeRemovalResult:
    """Results of the Fig. 7(b) edge-removal study."""

    ratios: Tuple[float, ...]
    series: Dict[str, Tuple[float, ...]]  # method -> mean rate per ratio

    def to_table(self, title: Optional[str] = None) -> Table:
        methods = list(self.series)
        columns = ["removed ratio"] + [
            DISPLAY_NAMES.get(m, m) for m in methods
        ]
        table = Table(columns, title=title)
        for index, ratio in enumerate(self.ratios):
            table.add_row(
                [f"{ratio:.2f}"] + [self.series[m][index] for m in methods]
            )
        return table


def _fig7b_replica(
    payload: Tuple[ExperimentConfig, int, int, int],
) -> List[Dict[str, float]]:
    """One Fig. 7(b) replica: generate, then alternate measure/remove.

    Module-level and picklable so the execution engine can shard
    replicas across worker processes.  The replica RNG is index-seeded
    (:func:`~repro.utils.rng.spawn_rngs`), and generation, removal
    draws, and solves all consume it in the exact order the serial loop
    did — so per-replica rate curves are byte-identical regardless of
    which process computes them.
    """
    config, trial, step, n_ratios = payload
    network_rng = spawn_rngs(config.seed, config.n_networks)[trial]
    network = generate(config.topology, config.topology_config(), network_rng)
    working = network.copy()
    curves: List[Dict[str, float]] = []
    for index in range(n_ratios):
        if index > 0:
            _remove_random_fibers(working, step, network_rng)
        curves.append(run_on_network(working, config.methods, network_rng))
    return curves


def run_fig7b(
    base: Optional[ExperimentConfig] = None,
    n_edges: int = FIG7B_EDGES,
    step: int = FIG7B_STEP,
    max_ratio: float = FIG7B_MAX_RATIO,
    workers: Optional[int] = None,
) -> EdgeRemovalResult:
    """Reproduce Fig. 7(b): rate vs. removed-edge ratio.

    For each of the config's ``n_networks`` replicas: generate the
    600-fiber network, then alternate (measure all methods) / (remove
    *step* random fibers) until *max_ratio* of the fibers are gone.
    Mean rates over replicas are reported per ratio point.

    Replicas are independent work items, so with ``workers > 1`` (or an
    ambient :class:`~repro.exec.engine.ExecutionEngine`) they shard
    across processes; the mean curves are identical for every worker
    count.
    """
    base = base or ExperimentConfig()
    config = base.replace(n_edges=n_edges)
    n_steps = int(np.floor(max_ratio * n_edges / step))
    ratios = tuple(step * k / n_edges for k in range(n_steps + 1))
    payloads = [
        (config, trial, step, len(ratios))
        for trial in range(config.n_networks)
    ]

    from repro.exec.engine import ExecutionEngine, active_engine

    engine = None
    owned = False
    if workers is not None and workers > 1:
        engine = ExecutionEngine(workers=workers)
        owned = True
    else:
        engine = active_engine()
    try:
        if engine is not None:
            replica_curves = engine.map_items(_fig7b_replica, payloads)
        else:
            replica_curves = [_fig7b_replica(p) for p in payloads]
    finally:
        if owned and engine is not None:
            engine.close()

    accumulator: Dict[str, List[List[float]]] = {
        m: [[] for _ in ratios] for m in config.methods
    }
    for curves in replica_curves:
        for index, rates in enumerate(curves):
            for method, rate in rates.items():
                accumulator[method][index].append(rate)

    series = {
        method: tuple(float(np.mean(bucket)) for bucket in buckets)
        for method, buckets in accumulator.items()
    }
    return EdgeRemovalResult(ratios=ratios, series=series)


def _remove_random_fibers(network, count: int, rng) -> None:
    """Remove up to *count* uniformly random fibers in place."""
    fibers = network.fibers
    count = min(count, len(fibers))
    if count == 0:
        return
    chosen = rng.choice(len(fibers), size=count, replace=False)
    for index in chosen:
        fiber = fibers[int(index)]
        network.remove_fiber(fiber.u, fiber.v)
