"""Density-matrix noise models: Werner states, noisy channels, noisy BSM.

The fidelity-aware extension rests on the Werner swap rule
``F' = F₁F₂ + (1−F₁)(1−F₂)/3``.  This module makes that rule a *theorem*
of the library rather than an assumption: it builds actual Werner
density matrices, performs the BSM projection on matrices, and the test
suite checks the measured post-swap fidelity against the closed form.

Conventions match :mod:`repro.quantum.states`: big-endian qubit order,
matrices are ``2^n × 2^n`` complex numpy arrays with unit trace.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.states import bell_state
from repro.utils.validation import require_probability


def density_of(state: np.ndarray) -> np.ndarray:
    """Pure-state density matrix ``|ψ⟩⟨ψ|``."""
    flat = np.asarray(state, dtype=complex).reshape(-1, 1)
    return flat @ flat.conj().T


def is_density_matrix(rho: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Validate hermiticity, unit trace and positive semidefiniteness."""
    rho = np.asarray(rho, dtype=complex)
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        return False
    if not np.allclose(rho, rho.conj().T, atol=tolerance):
        return False
    if not math.isclose(float(np.trace(rho).real), 1.0, abs_tol=tolerance):
        return False
    eigenvalues = np.linalg.eigvalsh(rho)
    return bool((eigenvalues > -tolerance).all())


def werner_state(fidelity: float, kind: int = 0) -> np.ndarray:
    """Two-qubit Werner state with the given fidelity to a Bell state.

    ``ρ = F·|Φ⟩⟨Φ| + (1−F)/3 · (I − |Φ⟩⟨Φ|)`` — the standard isotropic
    mixture of the target Bell state with the other three.
    """
    require_probability(fidelity, "fidelity")
    target = density_of(bell_state(kind))
    identity = np.eye(4, dtype=complex)
    return fidelity * target + (1.0 - fidelity) / 3.0 * (identity - target)


def fidelity_to_bell(rho: np.ndarray, kind: int = 0) -> float:
    """``⟨Φ|ρ|Φ⟩`` — fidelity of a two-qubit state to a Bell state."""
    target = bell_state(kind)
    return float((target.conj() @ rho @ target).real)


def depolarize(rho: np.ndarray, probability: float) -> np.ndarray:
    """Global depolarizing channel: mix toward the maximally mixed state."""
    require_probability(probability, "probability")
    dim = rho.shape[0]
    return (1.0 - probability) * rho + probability * np.eye(dim) / dim


def dephase_qubit(rho: np.ndarray, qubit: int, probability: float) -> np.ndarray:
    """Phase-damping channel on one qubit of an n-qubit state."""
    require_probability(probability, "probability")
    n = int(round(math.log2(rho.shape[0])))
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    operator = _lift(z, qubit, n)
    return (1.0 - probability / 2.0) * rho + (probability / 2.0) * (
        operator @ rho @ operator.conj().T
    )


def _lift(gate: np.ndarray, qubit: int, n: int) -> np.ndarray:
    """Embed a single-qubit gate at position *qubit* of an n-qubit space."""
    operator = np.array([[1.0]], dtype=complex)
    for index in range(n):
        operator = np.kron(operator, gate if index == qubit else np.eye(2))
    return operator


def swap_werner_pairs(
    rho_left: np.ndarray, rho_right: np.ndarray
) -> Tuple[np.ndarray, List[float]]:
    """Entanglement-swap two two-qubit states via a perfect BSM.

    The left pair occupies qubits (A, M1), the right pair (M2, B).  The
    BSM projects (M1, M2) onto the Bell basis; for each outcome the
    post-measurement state of (A, B) is computed by projection and
    partial trace, then rotated back to the Φ⁺ frame by the standard
    Pauli correction so outcomes can be averaged meaningfully.

    Returns:
        (average_corrected_state, outcome_probabilities) — the (A, B)
        density matrix averaged over outcomes (each Pauli-corrected),
        and the Born probabilities of the four BSM outcomes.
    """
    combined = np.kron(rho_left, rho_right)  # qubits A M1 M2 B
    n = 4
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    identity = np.eye(2, dtype=complex)
    corrections = [identity, z, x, y]  # outcome k → Pauli on B

    averaged = np.zeros((4, 4), dtype=complex)
    probabilities: List[float] = []
    for outcome in range(4):
        bell = bell_state(outcome)
        # Projector onto |bell⟩ at qubits (M1, M2) = positions (1, 2).
        projector = _two_qubit_projector(bell, positions=(1, 2), n=n)
        projected = projector @ combined @ projector.conj().T
        probability = float(np.trace(projected).real)
        probabilities.append(probability)
        if probability <= 1e-15:
            continue
        reduced = _trace_out(projected / probability, keep=(0, 3), n=n)
        correction = np.kron(identity, corrections[outcome])
        corrected = correction @ reduced @ correction.conj().T
        averaged += probability * corrected
    total = sum(probabilities)
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise AssertionError(f"BSM outcome probabilities sum to {total}")
    return averaged, probabilities


def purify_werner_pairs(
    rho_first: np.ndarray, rho_second: np.ndarray
) -> Tuple[np.ndarray, float]:
    """One recurrence-protocol (BBPSSW-style) purification round.

    Qubit layout: pair 1 = (A1, B1), pair 2 = (A2, B2); Alice holds
    (A1, A2), Bob holds (B1, B2).  Both apply a local CNOT from their
    pair-1 qubit onto their pair-2 qubit, measure the pair-2 qubits in
    Z, and keep pair 1 when the outcomes coincide.

    Returns:
        ``(kept_state, success_probability)`` — the normalized (A1, B1)
        density matrix of the kept branch mixture and the coincidence
        probability.  For Werner inputs these reproduce the closed forms
        in :mod:`repro.extensions.purification` (property-tested).
    """
    combined = np.kron(rho_first, rho_second)  # qubits A1 B1 A2 B2
    n = 4
    cnot_alice = _cnot(control=0, target=2, n=n)  # A1 -> A2
    cnot_bob = _cnot(control=1, target=3, n=n)  # B1 -> B2
    operator = cnot_bob @ cnot_alice
    evolved = operator @ combined @ operator.conj().T

    zero = np.array([1.0, 0.0], dtype=complex)
    one = np.array([0.0, 1.0], dtype=complex)
    kept = np.zeros((4, 4), dtype=complex)
    success = 0.0
    for outcome in (zero, one):  # coincident Z outcomes on (A2, B2)
        projector = _pair_state_projector(outcome, outcome, (2, 3), n)
        branch = projector @ evolved @ projector.conj().T
        probability = float(np.trace(branch).real)
        if probability <= 1e-15:
            continue
        success += probability
        kept += _trace_out(branch, keep=(0, 1), n=n)
    if success <= 0.0:
        raise AssertionError("purification coincidence probability is zero")
    return kept / success, success


def _cnot(control: int, target: int, n: int) -> np.ndarray:
    """CNOT permutation matrix on an n-qubit space (big-endian bits)."""
    dim = 2**n
    matrix = np.zeros((dim, dim), dtype=complex)
    control_bit = n - 1 - control
    target_bit = n - 1 - target
    for index in range(dim):
        if (index >> control_bit) & 1:
            matrix[index ^ (1 << target_bit), index] = 1.0
        else:
            matrix[index, index] = 1.0
    return matrix


def _pair_state_projector(
    vector_a: np.ndarray,
    vector_b: np.ndarray,
    positions: Tuple[int, int],
    n: int,
) -> np.ndarray:
    """Projector ``|a⟩⟨a| ⊗ |b⟩⟨b|`` on two qubit positions."""
    pair_vector = np.kron(vector_a, vector_b)
    return _two_qubit_projector(pair_vector, positions, n)


def _two_qubit_projector(
    vector: np.ndarray, positions: Tuple[int, int], n: int
) -> np.ndarray:
    """``I ⊗ |v⟩⟨v| ⊗ I`` with the pair at the given qubit positions."""
    projector_small = density_of(vector)  # 4x4 on the pair
    # Build by summing basis transfers: for general positions use a
    # permutation of axes on the full space.
    full = np.zeros((2**n, 2**n), dtype=complex)
    # Represent operator as tensor with 2n axes and place the 4x4 block.
    pair = projector_small.reshape(2, 2, 2, 2)  # (m1', m2', m1, m2)
    identity_axes = [i for i in range(n) if i not in positions]
    for bra_rest in range(2 ** len(identity_axes)):
        rest_bits = [(bra_rest >> k) & 1 for k in range(len(identity_axes))]
        for m1p in range(2):
            for m2p in range(2):
                for m1 in range(2):
                    for m2 in range(2):
                        amplitude = pair[m1p, m2p, m1, m2]
                        if abs(amplitude) < 1e-18:
                            continue
                        row_bits = [0] * n
                        col_bits = [0] * n
                        for bit, axis in zip(rest_bits, identity_axes):
                            row_bits[axis] = bit
                            col_bits[axis] = bit
                        row_bits[positions[0]] = m1p
                        row_bits[positions[1]] = m2p
                        col_bits[positions[0]] = m1
                        col_bits[positions[1]] = m2
                        row = _bits_to_index(row_bits)
                        col = _bits_to_index(col_bits)
                        full[row, col] += amplitude
    return full


def _bits_to_index(bits: Sequence[int]) -> int:
    index = 0
    for bit in bits:
        index = (index << 1) | bit
    return index


def _trace_out(rho: np.ndarray, keep: Tuple[int, ...], n: int) -> np.ndarray:
    """Partial trace keeping the given qubit positions (in order)."""
    tensor = rho.reshape((2,) * (2 * n))
    drop = [i for i in range(n) if i not in keep]
    # Contract each dropped qubit's ket and bra axes, highest first so
    # lower axis indices stay valid as the tensor shrinks.
    remaining = n
    for axis in sorted(drop, reverse=True):
        tensor = np.trace(tensor, axis1=axis, axis2=axis + remaining)
        remaining -= 1
    k = len(keep)
    return tensor.reshape(2**k, 2**k)
