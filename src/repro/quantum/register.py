"""A labelled multi-qubit register with projective measurements.

Implements exactly the operations the quantum Internet model relies on:

* holding Bell pairs whose halves live at different network nodes
  (labels identify the owning node),
* **BSM** — projective measurement in the Bell basis of two qubits
  (entanglement swapping, Fig. 1 of the paper),
* **GHZ projective measurement** — the ``n``-fusion primitive (Fig. 2),
* reduced density matrices and fidelity probes for verification.

The register is intentionally small-scale (state vectors up to ~20
qubits); it exists to *prove* the routing layer's abstractions correct,
not to simulate large networks — that is the analytic/Monte-Carlo job of
:mod:`repro.sim`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.states import SQRT_HALF, bell_state
from repro.utils.rng import RngLike, ensure_rng


class QubitRegister:
    """State vector over uniquely labelled qubits.

    >>> reg = QubitRegister.bell("a", "s1")          # link Alice-switch
    >>> _ = reg.merge(QubitRegister.bell("s2", "b"))  # link switch-Bob
    >>> outcome, probability = reg.measure_bell("s1", "s2", rng=0)
    >>> sorted(reg.labels)
    ['a', 'b']
    >>> round(reg.max_bell_fidelity("a", "b"), 9)   # swapped into a Bell state
    1.0
    """

    def __init__(self, state: np.ndarray, labels: Sequence[Hashable]) -> None:
        labels = list(labels)
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate qubit labels: {labels!r}")
        expected = 2 ** len(labels)
        flat = np.asarray(state, dtype=complex).reshape(-1)
        if flat.size != expected:
            raise ValueError(
                f"state length {flat.size} does not match "
                f"{len(labels)} qubits"
            )
        norm = np.linalg.norm(flat)
        if not math.isclose(norm, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValueError(f"state is not normalized (norm {norm})")
        self._state = flat
        self._labels: List[Hashable] = labels

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def bell(
        cls, label_a: Hashable, label_b: Hashable, kind: int = 0
    ) -> "QubitRegister":
        """A fresh Bell pair shared by two labelled qubits."""
        return cls(bell_state(kind), [label_a, label_b])

    @classmethod
    def computational(cls, bits: Dict[Hashable, int]) -> "QubitRegister":
        """A product computational-basis state ``|bits⟩``."""
        labels = list(bits)
        index = 0
        for label in labels:
            index = (index << 1) | int(bits[label])
        state = np.zeros(2 ** len(labels), dtype=complex)
        state[index] = 1.0
        return cls(state, labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[Hashable]:
        return list(self._labels)

    @property
    def n_qubits(self) -> int:
        return len(self._labels)

    @property
    def state(self) -> np.ndarray:
        """Copy of the current state vector."""
        return self._state.copy()

    def index_of(self, label: Hashable) -> int:
        try:
            return self._labels.index(label)
        except ValueError:
            raise KeyError(f"no qubit labelled {label!r}") from None

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def merge(self, other: "QubitRegister") -> "QubitRegister":
        """Absorb *other* into this register (tensor product), in place."""
        overlap = set(self._labels) & set(other._labels)
        if overlap:
            raise ValueError(f"label collision on merge: {sorted(map(repr, overlap))}")
        self._state = np.kron(self._state, other._state)
        self._labels.extend(other._labels)
        return self

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def measure_bell(
        self,
        label_a: Hashable,
        label_b: Hashable,
        rng: RngLike = None,
        force_outcome: Optional[int] = None,
    ) -> Tuple[int, float]:
        """Bell State Measurement on two qubits (the BSM of Fig. 1).

        Projects the pair onto the Bell basis, removes the measured
        qubits from the register (they are "freed" in the paper's
        terminology) and collapses the remainder.

        Args:
            label_a, label_b: The two qubits to measure.
            rng: Random source for sampling the outcome.
            force_outcome: Pin the outcome 0..3 (post-selection) instead
                of sampling; raises if its probability is ~0.

        Returns:
            ``(outcome, probability)`` — the Bell index measured and its
            Born probability.
        """
        basis = [bell_state(k) for k in range(4)]
        return self._project_pairwise(label_a, label_b, basis, rng, force_outcome)

    def measure_ghz(
        self,
        labels: Sequence[Hashable],
        rng: RngLike = None,
        force_outcome: Optional[int] = None,
    ) -> Tuple[int, float]:
        """GHZ projective measurement — the ``n``-fusion of Fig. 2.

        Projects the given ``n`` qubits onto the orthonormal GHZ basis
        ``(|x⟩ + (−1)^s |x̄⟩)/√2`` (``x`` over bitstrings with leading 0,
        ``x̄`` the complement), then removes them.

        Returns ``(outcome, probability)``; outcomes are ordered
        ``2·int(x) + s``.
        """
        n = len(labels)
        if n < 2:
            raise ValueError("GHZ measurement needs at least 2 qubits")
        basis: List[np.ndarray] = []
        for x in range(2 ** (n - 1)):
            complement = (2**n - 1) ^ x
            for sign in (1.0, -1.0):
                vector = np.zeros(2**n, dtype=complex)
                vector[x] = SQRT_HALF
                vector[complement] = sign * SQRT_HALF
                basis.append(vector)
        return self._project_multi(list(labels), basis, rng, force_outcome)

    def _project_pairwise(
        self,
        label_a: Hashable,
        label_b: Hashable,
        basis: List[np.ndarray],
        rng: RngLike,
        force_outcome: Optional[int],
    ) -> Tuple[int, float]:
        if label_a == label_b:
            raise ValueError("cannot measure a qubit against itself")
        return self._project_multi([label_a, label_b], basis, rng, force_outcome)

    def _project_multi(
        self,
        measure_labels: List[Hashable],
        basis: List[np.ndarray],
        rng: RngLike,
        force_outcome: Optional[int],
    ) -> Tuple[int, float]:
        indices = [self.index_of(label) for label in measure_labels]
        if len(set(indices)) != len(indices):
            raise ValueError(f"repeated labels in measurement: {measure_labels!r}")
        k = len(indices)
        n = self.n_qubits
        tensor_state = self._state.reshape((2,) * n)
        # Move the measured qubits to the front axes.
        rest = [i for i in range(n) if i not in indices]
        reordered = np.moveaxis(tensor_state, indices, range(k))
        matrix = reordered.reshape(2**k, -1)

        residuals = [vector.conj() @ matrix for vector in basis]
        probabilities = np.array(
            [float(np.vdot(r, r).real) for r in residuals]
        )
        total = probabilities.sum()
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise AssertionError(
                f"projective basis not complete: probabilities sum to {total}"
            )

        if force_outcome is not None:
            outcome = int(force_outcome)
            if not 0 <= outcome < len(basis):
                raise ValueError(f"outcome {outcome} out of range")
            if probabilities[outcome] <= 1e-12:
                raise ValueError(
                    f"forced outcome {outcome} has probability "
                    f"{probabilities[outcome]:.3e}"
                )
        else:
            generator = ensure_rng(rng)
            outcome = int(
                generator.choice(len(basis), p=probabilities / total)
            )

        probability = float(probabilities[outcome])
        collapsed = residuals[outcome] / math.sqrt(probability)
        self._labels = [self._labels[i] for i in rest]
        self._state = collapsed.reshape(-1)
        return outcome, probability

    def measure_computational(
        self, label: Hashable, rng: RngLike = None
    ) -> Tuple[int, float]:
        """Z-basis measurement of one qubit; removes it from the register."""
        zero = np.array([1.0, 0.0], dtype=complex)
        one = np.array([0.0, 1.0], dtype=complex)
        return self._project_multi([label], [zero, one], rng, None)

    # ------------------------------------------------------------------
    # Corrections and probes
    # ------------------------------------------------------------------
    def apply_pauli(self, label: Hashable, pauli: str) -> None:
        """Apply a Pauli correction (``"I"/"X"/"Y"/"Z"``) to one qubit.

        After a BSM, the outer pair is a Bell state up to a Pauli frame;
        classical communication of the outcome lets a user rotate it back
        to Φ⁺ — exactly what this method models.
        """
        matrices = {
            "I": np.eye(2, dtype=complex),
            "X": np.array([[0, 1], [1, 0]], dtype=complex),
            "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "Z": np.array([[1, 0], [0, -1]], dtype=complex),
        }
        try:
            matrix = matrices[pauli.upper()]
        except KeyError:
            raise ValueError(f"unknown Pauli {pauli!r}") from None
        index = self.index_of(label)
        n = self.n_qubits
        tensor_state = self._state.reshape((2,) * n)
        moved = np.moveaxis(tensor_state, index, 0).reshape(2, -1)
        moved = matrix @ moved
        restored = np.moveaxis(moved.reshape((2,) * n), 0, index)
        self._state = restored.reshape(-1)

    def reduced_density(self, labels: Sequence[Hashable]) -> np.ndarray:
        """Reduced density matrix of the given qubits (partial trace)."""
        indices = [self.index_of(label) for label in labels]
        k = len(indices)
        n = self.n_qubits
        tensor_state = self._state.reshape((2,) * n)
        reordered = np.moveaxis(tensor_state, indices, range(k))
        matrix = reordered.reshape(2**k, -1)
        return matrix @ matrix.conj().T

    def bell_fidelity(
        self, label_a: Hashable, label_b: Hashable, kind: int = 0
    ) -> float:
        """Fidelity of the reduced pair state with a target Bell state."""
        rho = self.reduced_density([label_a, label_b])
        target = bell_state(kind)
        return float((target.conj() @ rho @ target).real)

    def max_bell_fidelity(self, label_a: Hashable, label_b: Hashable) -> float:
        """Best fidelity over the four Bell states (Pauli-frame agnostic)."""
        return max(
            self.bell_fidelity(label_a, label_b, kind) for kind in range(4)
        )

    def ghz_fidelity(self, labels: Sequence[Hashable]) -> float:
        """Fidelity of the reduced state with the ``n``-GHZ state."""
        from repro.quantum.states import ghz_state

        rho = self.reduced_density(labels)
        target = ghz_state(len(labels))
        return float((target.conj() @ rho @ target).real)
