"""Pure-state construction helpers (state vectors over labelled qubits).

Conventions: qubit 0 is the most significant bit of the computational
basis index (big-endian), states are 1-D complex numpy arrays of length
``2^n``, normalized to unit 2-norm.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

import numpy as np

SQRT_HALF = 1.0 / math.sqrt(2.0)


def ket(bits: Sequence[int]) -> np.ndarray:
    """Computational basis state ``|b_0 b_1 … b_{n-1}⟩`` (big-endian)."""
    n = len(bits)
    if n == 0:
        raise ValueError("ket needs at least one qubit")
    index = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit!r}")
        index = (index << 1) | bit
    state = np.zeros(2**n, dtype=complex)
    state[index] = 1.0
    return state


def tensor(*states: np.ndarray) -> np.ndarray:
    """Kronecker product of the given states (left-to-right order)."""
    if not states:
        raise ValueError("tensor needs at least one state")
    result = states[0]
    for state in states[1:]:
        result = np.kron(result, state)
    return result


def bell_state(kind: int = 0) -> np.ndarray:
    """The four Bell states.

    ``kind``: 0 → Φ⁺ = (|00⟩+|11⟩)/√2, 1 → Φ⁻, 2 → Ψ⁺ = (|01⟩+|10⟩)/√2,
    3 → Ψ⁻.  The paper's quantum links carry Φ⁺ pairs.
    """
    state = np.zeros(4, dtype=complex)
    if kind == 0:
        state[0b00] = SQRT_HALF
        state[0b11] = SQRT_HALF
    elif kind == 1:
        state[0b00] = SQRT_HALF
        state[0b11] = -SQRT_HALF
    elif kind == 2:
        state[0b01] = SQRT_HALF
        state[0b10] = SQRT_HALF
    elif kind == 3:
        state[0b01] = SQRT_HALF
        state[0b10] = -SQRT_HALF
    else:
        raise ValueError(f"Bell kind must be 0..3, got {kind!r}")
    return state


def bell_pair() -> np.ndarray:
    """The quantum-link state Φ⁺ = (|00⟩ + |11⟩)/√2."""
    return bell_state(0)


def ghz_state(n: int) -> np.ndarray:
    """``n``-GHZ state (|0…0⟩ + |1…1⟩)/√2, ``n ≥ 2``."""
    if n < 2:
        raise ValueError(f"GHZ needs at least 2 qubits, got {n}")
    state = np.zeros(2**n, dtype=complex)
    state[0] = SQRT_HALF
    state[-1] = SQRT_HALF
    return state


def is_normalized(state: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Whether *state* has unit norm."""
    return abs(np.linalg.norm(state) - 1.0) <= tolerance


def amplitudes(state: np.ndarray, cutoff: float = 1e-12) -> Dict[str, complex]:
    """Non-negligible amplitudes keyed by bitstring (for debugging/tests)."""
    n = int(round(math.log2(len(state))))
    if 2**n != len(state):
        raise ValueError(f"state length {len(state)} is not a power of 2")
    result: Dict[str, complex] = {}
    for index, amplitude in enumerate(state):
        if abs(amplitude) > cutoff:
            result[format(index, f"0{n}b")] = complex(amplitude)
    return result
