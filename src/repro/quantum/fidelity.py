"""Fidelity algebra: pure-state probes and Werner-state channel models.

The routing paper defers fidelity to future work ("readily extendable to
… fidelity decay"); :mod:`repro.extensions.fidelity_aware` builds that
extension on the formulas here.  The Werner-state swap rule is the
standard one for depolarized Bell pairs:

    F' = F₁·F₂ + (1 − F₁)(1 − F₂) / 3

which maps two fidelity-``Fᵢ`` Werner pairs through a perfect BSM into a
fidelity-``F'`` Werner pair.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import require_probability


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Fidelity ``|⟨a|b⟩|²`` between two pure states."""
    a = np.asarray(state_a, dtype=complex).reshape(-1)
    b = np.asarray(state_b, dtype=complex).reshape(-1)
    if a.size != b.size:
        raise ValueError(f"dimension mismatch: {a.size} vs {b.size}")
    return float(abs(np.vdot(a, b)) ** 2)


def bell_fidelity(state: np.ndarray, kind: int = 0) -> float:
    """Fidelity of a two-qubit pure state with a Bell state."""
    from repro.quantum.states import bell_state

    return state_fidelity(state, bell_state(kind))


def max_bell_fidelity(state: np.ndarray) -> float:
    """Best fidelity over all four Bell states."""
    return max(bell_fidelity(state, kind) for kind in range(4))


def is_ghz_like(state: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Whether a pure state is a GHZ-class basis state.

    True iff exactly two computational amplitudes are non-zero, they sit
    at complementary bitstrings and each has magnitude ``1/√2`` — the
    form every successful ``n``-fusion outcome must take.
    """
    flat = np.asarray(state, dtype=complex).reshape(-1)
    n = int(round(math.log2(flat.size)))
    if 2**n != flat.size:
        raise ValueError(f"state length {flat.size} is not a power of 2")
    support = [i for i, amp in enumerate(flat) if abs(amp) > tolerance]
    if len(support) != 2:
        return False
    lo, hi = support
    if lo ^ hi != 2**n - 1:
        return False
    target = 1.0 / math.sqrt(2.0)
    return all(abs(abs(flat[i]) - target) <= 1e-6 for i in support)


# ----------------------------------------------------------------------
# Werner-state algebra (fidelity-aware extension)
# ----------------------------------------------------------------------
def werner_fidelity_after_swap(f1: float, f2: float) -> float:
    """Fidelity of the pair produced by swapping two Werner pairs."""
    require_probability(f1, "f1")
    require_probability(f2, "f2")
    return f1 * f2 + (1.0 - f1) * (1.0 - f2) / 3.0


def chain_werner_fidelity(fidelities: Sequence[float]) -> float:
    """End-to-end fidelity of swapping a chain of Werner pairs, in order."""
    if not fidelities:
        raise ValueError("need at least one link fidelity")
    result = fidelities[0]
    require_probability(result, "fidelity")
    for fidelity in fidelities[1:]:
        result = werner_fidelity_after_swap(result, fidelity)
    return result


def link_fidelity_from_length(
    length: float, decay_per_km: float = 2e-5, base_fidelity: float = 0.99
) -> float:
    """Werner fidelity of a freshly generated link of a given length.

    Simple exponential decoherence model: ``F = 0.25 + (F₀ − 0.25)·
    exp(−λ·L)`` — decays from the base fidelity toward the fully mixed
    value 1/4, never below it.
    """
    require_probability(base_fidelity, "base_fidelity")
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    return 0.25 + (base_fidelity - 0.25) * math.exp(-decay_per_km * length)
