"""Quantum teleportation over delivered Bell pairs.

Teleportation is *why* the quantum Internet distributes entanglement:
once Alice and Bob share a Bell pair (the output of a routed channel),
Alice can transmit an arbitrary unknown qubit state to Bob using only a
BSM and two classical bits.  This module implements the protocol on the
library's state-vector register, closing the loop from routing to
application:

1. Alice holds the payload qubit ``|ψ⟩`` and her half of a Φ⁺ pair;
2. she measures (payload, her half) in the Bell basis — the same
   primitive switches use for swapping;
3. she sends the 2-bit outcome to Bob classically;
4. Bob applies the outcome's Pauli correction; his qubit is now ``|ψ⟩``
   exactly (fidelity 1 in the noiseless model — verified in tests).
"""

from __future__ import annotations

import math
from typing import Hashable, Tuple

import numpy as np

from repro.quantum.register import QubitRegister
from repro.utils.rng import RngLike

#: BSM outcome → Pauli correction Bob applies (Φ⁺ shared pair).
CORRECTIONS = {0: "I", 1: "Z", 2: "X", 3: "Y"}


def teleport(
    register: QubitRegister,
    payload: Hashable,
    alice_half: Hashable,
    bob_half: Hashable,
    rng: RngLike = None,
) -> Tuple[int, float]:
    """Teleport *payload*'s state onto *bob_half* in place.

    Args:
        register: Register holding the payload qubit and a Φ⁺ pair on
            ``(alice_half, bob_half)`` (possibly entangled with other
            qubits — teleportation moves whatever correlations the
            payload carries).
        payload: Alice's qubit to transmit.
        alice_half, bob_half: The shared Bell pair's qubits.
        rng: Random source for the BSM outcome.

    Returns:
        ``(outcome, probability)`` of the BSM; after the call the
        payload and Alice's half are consumed and *bob_half* carries the
        payload's former state (correction already applied).
    """
    outcome, probability = register.measure_bell(payload, alice_half, rng=rng)
    register.apply_pauli(bob_half, CORRECTIONS[outcome])
    return outcome, probability


def teleport_state(
    state: np.ndarray, rng: RngLike = None
) -> Tuple[np.ndarray, int]:
    """Convenience: teleport a standalone single-qubit *state*.

    Builds the three-qubit register (payload + fresh Φ⁺ pair), runs the
    protocol, and returns ``(bob_state, outcome)`` where ``bob_state``
    is Bob's final single-qubit state vector.
    """
    flat = np.asarray(state, dtype=complex).reshape(-1)
    if flat.size != 2:
        raise ValueError(f"payload must be a single qubit, got dim {flat.size}")
    norm = np.linalg.norm(flat)
    if not math.isclose(norm, 1.0, rel_tol=0, abs_tol=1e-9):
        raise ValueError(f"payload state not normalized (norm {norm})")
    register = QubitRegister(flat, ["payload"])
    register.merge(QubitRegister.bell("alice", "bob"))
    outcome, _ = teleport(register, "payload", "alice", "bob", rng=rng)
    return register.state, outcome
