"""Minimal quantum-information substrate.

The paper treats Bell-pair links and BSM swapping as physical primitives.
This package implements those primitives on actual state vectors so the
abstractions used by the routing layer are *verified*, not assumed:

* entanglement-swapping two Bell pairs at a switch yields a Bell pair
  between the outer nodes (Fig. 1);
* ``n``-fusion of ``n`` Bell pairs at a switch yields an ``n``-GHZ state
  among the outer nodes (Fig. 2);
* Werner-state fidelity algebra for the fidelity-aware extension.
"""

from repro.quantum.states import (
    ket,
    tensor,
    bell_state,
    bell_pair,
    ghz_state,
    is_normalized,
    amplitudes,
)
from repro.quantum.register import QubitRegister
from repro.quantum.teleportation import teleport, teleport_state
from repro.quantum.gates import (
    apply_single,
    apply_cnot,
    hadamard,
    create_bell_pair_via_circuit,
    create_ghz_via_circuit,
)
from repro.quantum.noise import (
    werner_state,
    swap_werner_pairs,
    purify_werner_pairs,
    fidelity_to_bell,
    is_density_matrix,
)
from repro.quantum.fidelity import (
    state_fidelity,
    bell_fidelity,
    max_bell_fidelity,
    is_ghz_like,
    werner_fidelity_after_swap,
    chain_werner_fidelity,
    link_fidelity_from_length,
)

__all__ = [
    "ket",
    "tensor",
    "bell_state",
    "bell_pair",
    "ghz_state",
    "is_normalized",
    "amplitudes",
    "QubitRegister",
    "teleport",
    "teleport_state",
    "apply_single",
    "apply_cnot",
    "hadamard",
    "create_bell_pair_via_circuit",
    "create_ghz_via_circuit",
    "werner_state",
    "swap_werner_pairs",
    "purify_werner_pairs",
    "fidelity_to_bell",
    "is_density_matrix",
    "state_fidelity",
    "bell_fidelity",
    "max_bell_fidelity",
    "is_ghz_like",
    "werner_fidelity_after_swap",
    "chain_werner_fidelity",
    "link_fidelity_from_length",
]
