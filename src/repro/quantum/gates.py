"""Single- and two-qubit gates on :class:`QubitRegister`.

Completes the physical story at the *generation* end: quantum links are
Bell pairs, and Bell pairs are born from an H + CNOT circuit on |00⟩.
With this module the library covers the full physical lifecycle —
generate (gates) → distribute (register merge) → swap (BSM) → fuse
(GHZ measurement) → consume (teleportation) — every step on explicit
amplitudes.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.quantum.register import QubitRegister
from repro.quantum.states import SQRT_HALF

HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) * SQRT_HALF
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
T_GATE = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)


def apply_single(
    register: QubitRegister, label: Hashable, gate: np.ndarray
) -> None:
    """Apply a 2×2 unitary *gate* to one labelled qubit, in place."""
    gate = np.asarray(gate, dtype=complex)
    if gate.shape != (2, 2):
        raise ValueError(f"expected a 2x2 gate, got {gate.shape}")
    if not np.allclose(gate @ gate.conj().T, np.eye(2), atol=1e-9):
        raise ValueError("gate is not unitary")
    index = register.index_of(label)
    n = register.n_qubits
    tensor = register.state.reshape((2,) * n)
    moved = np.moveaxis(tensor, index, 0).reshape(2, -1)
    moved = gate @ moved
    restored = np.moveaxis(moved.reshape((2,) * n), 0, index)
    register._state = restored.reshape(-1)  # friend access by design


def hadamard(register: QubitRegister, label: Hashable) -> None:
    """Apply H to one qubit."""
    apply_single(register, label, HADAMARD)


def apply_cnot(
    register: QubitRegister, control: Hashable, target: Hashable
) -> None:
    """Apply CNOT(control → target), in place."""
    if control == target:
        raise ValueError("control and target must differ")
    ci = register.index_of(control)
    ti = register.index_of(target)
    n = register.n_qubits
    state = register.state
    result = state.copy()
    control_bit = n - 1 - ci
    target_bit = n - 1 - ti
    for index in range(state.size):
        if (index >> control_bit) & 1:
            result[index] = state[index ^ (1 << target_bit)]
    register._state = result


def create_bell_pair_via_circuit(
    label_a: Hashable, label_b: Hashable
) -> QubitRegister:
    """Generate Φ⁺ the way hardware does: H on |0⟩, then CNOT.

    Equivalent to :meth:`QubitRegister.bell` but derived from gates —
    tested to match exactly.
    """
    register = QubitRegister.computational({label_a: 0, label_b: 0})
    hadamard(register, label_a)
    apply_cnot(register, label_a, label_b)
    return register


def create_ghz_via_circuit(labels) -> QubitRegister:
    """Generate an n-GHZ state: H on the first qubit, CNOT fan-out."""
    labels = list(labels)
    if len(labels) < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    register = QubitRegister.computational({label: 0 for label in labels})
    hadamard(register, labels[0])
    for target in labels[1:]:
        apply_cnot(register, labels[0], target)
    return register
