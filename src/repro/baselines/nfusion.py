"""N-FUSION: GHZ distribution via a central user (MP-P style).

The paper's second baseline (Sec. V-A) adapts the MP-P algorithm of
Sutcliffe & Beghelli: a central user connects to every other user
through a Bell-pair channel (like "Tree B" in their Fig. 3), then fuses
the collected qubits with an ``n``-fusion (GHZ projective measurement)
into one GHZ state spanning all users.  Unlike MP-P's infinite-capacity
switches, N-FUSION switches keep their limited qubit budgets.

Fusion success model (substitution, documented in DESIGN.md): an
``n``-fusion manipulates ``n`` inherently fragile qubits at once and has
a lower success rate than a BSM (Sec. I).  We model

    q_fusion(n) = q^(n-1) · μ^(n-2),     n ≥ 2,

which reduces exactly to the BSM rate ``q`` at ``n = 2`` (BSM is
2-fusion) and decays faster than a chain of BSMs for larger ``n`` via
the GHZ-measurement difficulty factor ``μ`` (default 0.9).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.channel import best_channels_from
from repro.core.optimal import channel_sort_key
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.core.rates import swap_log_rate
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike

#: GHZ-measurement difficulty factor μ: per-extra-qubit multiplicative
#: penalty of an n-fusion beyond the chained-BSM cost.
DEFAULT_FUSION_PENALTY = 0.9


def fusion_log_success(
    n: int, swap_prob: float, penalty: float = DEFAULT_FUSION_PENALTY
) -> float:
    """Log success probability of an ``n``-fusion (``n ≥ 2``).

    ``n = 2`` coincides with one BSM: ``log q``.
    """
    if n < 2:
        raise ValueError(f"fusion needs at least 2 qubits, got {n}")
    base = swap_log_rate(swap_prob)
    if math.isinf(base):
        return -math.inf
    return (n - 1) * base + (n - 2) * math.log(penalty)


def solve_nfusion(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    center: Optional[Hashable] = None,
    fusion_penalty: float = DEFAULT_FUSION_PENALTY,
    rng: RngLike = None,
) -> MUERPSolution:
    """N-FUSION baseline.

    Every candidate center user is tried (unless *center* is given) and
    the best feasible star is returned.  The star's rate is the product
    of the member channels' rates (Eq. 1 each) times the final fusion's
    success probability — encoded by attaching the fusion's log rate to
    the solution via a rate-adjusted channel set.

    Returns an infeasible solution (rate 0) when no center can reach all
    other users within residual switch capacity.
    """
    user_list = resolve_users(network, users)
    centers = [center] if center is not None else user_list
    if center is not None and center not in user_list:
        raise ValueError(f"center {center!r} is not among the users")

    best: Optional[Tuple[float, List[Channel]]] = None
    for candidate in centers:
        star = _route_star(network, candidate, user_list)
        if star is None:
            continue
        fusion = fusion_log_success(
            len(user_list), network.params.swap_prob, fusion_penalty
        )
        total = sum(c.log_rate for c in star) + fusion
        if best is None or total > best[0]:
            best = (total, star)

    if best is None:
        return infeasible_solution(user_list, "nfusion")

    total_log_rate, channels = best
    # Channels keep their true Eq. (1) rates; the final GHZ fusion's
    # success probability is recorded as the solution's extra factor.
    fusion = total_log_rate - sum(c.log_rate for c in channels)
    return MUERPSolution(
        channels=tuple(channels),
        users=frozenset(user_list),
        method="nfusion",
        feasible=True,
        extra_log_rate=fusion,
    )


def _route_star(
    network: QuantumNetwork,
    center: Hashable,
    user_list: List[Hashable],
) -> Optional[List[Channel]]:
    """Route channels center→every other user under residual capacity.

    Targets are admitted in descending single-shot rate order (the
    baseline's greedy), re-routing after each admission since qubit
    deductions change the landscape.  ``None`` when any user becomes
    unreachable.
    """
    residual = network.residual_qubits()
    pending = [u for u in user_list if u != center]
    star: List[Channel] = []
    while pending:
        found = best_channels_from(network, center, pending, residual)
        best_target = None
        best_channel = None
        for target, channel in found.items():
            if best_channel is None or channel_sort_key(channel) < channel_sort_key(
                best_channel
            ):
                best_target, best_channel = target, channel
        if best_channel is None:
            return None
        for switch in best_channel.switches:
            residual[switch] -= 2
        star.append(best_channel)
        pending.remove(best_target)
    return star
