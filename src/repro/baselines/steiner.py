"""Naive Steiner-tree baseline — the Sec. III-A cautionary tale.

The paper's key conceptual point (Sec. III-A, Fig. 4): classic graph
connectivity is *not* entanglement connectivity.  A Steiner minimal tree
connects the users with shared edges and free branching, but a quantum
switch can only *pairwise* swap — a degree-3 branch point at a switch
needs a channel per crossing user pair, and the switch's qubit budget
may not cover them.

This module implements the naive "classic graph theory" recipe so the
failure is measurable rather than rhetorical:

1. compute an approximate Steiner tree over the users on the fiber
   graph with the paper's log-rate weights (networkx's metric-closure
   2-approximation);
2. decompose it into user-pair channels: root the tree at a user and
   pair every user with the *next user* on the path toward the root, so
   the channels mirror exactly the Steiner tree's edges;
3. price the result honestly: Eq. (1)/(2) rates, and mark the solution
   infeasible if any switch's qubit budget is exceeded.

On capacity-tight networks this baseline frequently produces capacity
violations — quantified by :func:`steiner_violation_rate` and the
``steiner`` analysis in the benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.core.rates import swap_log_rate
from repro.core.tree import switch_usage
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike


def _weighted_graph(network: QuantumNetwork) -> nx.Graph:
    """Fiber graph with Algorithm-1 weights ``α·L − ln q`` per edge."""
    alpha = network.params.alpha
    minus_ln_q = -swap_log_rate(network.params.swap_prob)
    graph = nx.Graph()
    for node in network.node_ids:
        graph.add_node(node)
    for fiber in network.fibers:
        weight = alpha * fiber.length + (
            minus_ln_q if not math.isinf(minus_ln_q) else 1e9
        )
        graph.add_edge(fiber.u, fiber.v, weight=weight)
    return graph


def steiner_tree_nodes(
    network: QuantumNetwork, users: List[Hashable]
) -> Optional[nx.Graph]:
    """Approximate Steiner tree over *users* (None if disconnected)."""
    graph = _weighted_graph(network)
    try:
        from networkx.algorithms.approximation import steiner_tree
    except ImportError:  # pragma: no cover - networkx always ships it
        raise RuntimeError("networkx approximation module unavailable")
    subgraph = graph.subgraph(
        nx.node_connected_component(graph, users[0])
    )
    if any(user not in subgraph for user in users):
        return None
    return steiner_tree(subgraph, users, weight="weight")


def solve_steiner_naive(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    rng: RngLike = None,
) -> MUERPSolution:
    """The naive classic-graph baseline.

    Returns a solution whose channels trace the Steiner tree's paths.
    When the implied qubit usage exceeds any switch budget — the exact
    failure mode Sec. III-A describes — the instance is declared
    infeasible (rate 0), because the physical network cannot realise the
    classic tree.
    """
    user_list = resolve_users(network, users)
    tree = steiner_tree_nodes(network, user_list)
    if tree is None or tree.number_of_nodes() == 0:
        return infeasible_solution(user_list, "steiner_naive")

    # Decompose: walk from each non-root user toward the root, cutting a
    # channel at the first user encountered.
    root = user_list[0]
    parent: Dict[Hashable, Hashable] = {}
    order: List[Hashable] = []
    seen = {root}
    stack = [root]
    while stack:
        current = stack.pop()
        order.append(current)
        for neighbor in tree.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                parent[neighbor] = current
                stack.append(neighbor)

    user_set = set(user_list)
    channels: List[Channel] = []
    for user in user_list:
        if user == root:
            continue
        path = [user]
        current = user
        while True:
            current = parent[current]
            path.append(current)
            if current in user_set:
                break
        if any(node in user_set for node in path[1:-1]):
            # A user strictly inside the walk: split there instead (the
            # loop above already stops at the first user, so this is
            # unreachable; kept as a guard).
            return infeasible_solution(user_list, "steiner_naive")
        try:
            channels.append(Channel.from_path(network, path))
        except ValueError:
            return infeasible_solution(user_list, "steiner_naive")

    solution = MUERPSolution(
        channels=tuple(channels),
        users=frozenset(user_list),
        method="steiner_naive",
        feasible=True,
    )
    # Honest pricing: if the classic tree overloads a switch, the
    # quantum network cannot realise it.
    budgets = network.residual_qubits()
    for switch, used in switch_usage(solution.channels).items():
        if used > budgets.get(switch, 0):
            return infeasible_solution(user_list, "steiner_naive")
    return solution


def steiner_violation_rate(
    network_factory,
    n_networks: int,
    seed: int = 0,
) -> float:
    """Fraction of random networks where the classic Steiner tree is
    physically unrealisable (capacity violation or decomposition
    failure) while Algorithm 3 still finds a tree.

    *network_factory(rng)* must return a fresh network per call.
    """
    from repro.core.conflict_free import solve_conflict_free
    from repro.utils.rng import spawn_rngs

    violations = 0
    comparable = 0
    for rng in spawn_rngs(seed, n_networks):
        network = network_factory(rng)
        ours = solve_conflict_free(network)
        if not ours.feasible:
            continue  # nothing to compare: the instance is just hard
        comparable += 1
        steiner = solve_steiner_naive(network)
        if not steiner.feasible:
            violations += 1
    if comparable == 0:
        return 0.0
    return violations / comparable
