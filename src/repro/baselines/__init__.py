"""Comparative baselines from the paper's evaluation (Sec. V-A).

* :mod:`repro.baselines.eqcast` — **E-Q-CAST**: the two-user Q-CAST
  routing of Shi & Qian (SIGCOMM'20) extended to multi-user settings by
  chaining consecutive user pairs, as the paper describes.
* :mod:`repro.baselines.nfusion` — **N-FUSION**: the MP-P-style central
  star that fuses Bell pairs into a GHZ state at a central user, with
  capacity-limited switches.
* :mod:`repro.baselines.random_tree` — ablation baseline: random pairing
  order with greedy capacity-aware routing (isolates the value of
  rate-greedy channel selection).

Importing this package registers all baselines in the global solver
registry (:mod:`repro.core.registry`).

All baselines route through :func:`repro.core.channel.dijkstra`, so an
active :class:`~repro.exec.cache.ChannelCache` (see
:mod:`repro.exec.cache`) memoizes their channel searches transparently —
no per-baseline wiring is needed, and cached runs are byte-identical to
uncached ones.
"""

from repro.baselines.eqcast import solve_eqcast
from repro.baselines.nfusion import solve_nfusion, fusion_log_success
from repro.baselines.random_tree import solve_random_tree
from repro.baselines.steiner import (
    solve_steiner_naive,
    steiner_violation_rate,
)

from repro.core.registry import register_solver


def _eqcast_adapter(network, users=None, rng=None):
    return solve_eqcast(network, users, rng=rng)


def _nfusion_adapter(network, users=None, rng=None):
    return solve_nfusion(network, users, rng=rng)


def _random_tree_adapter(network, users=None, rng=None):
    return solve_random_tree(network, users, rng=rng)


def _steiner_adapter(network, users=None, rng=None):
    return solve_steiner_naive(network, users, rng=rng)


register_solver("eqcast", _eqcast_adapter, display="E-Q-CAST")
register_solver("nfusion", _nfusion_adapter, display="N-Fusion")
register_solver("random_tree", _random_tree_adapter, display="Random-Tree")
register_solver("steiner_naive", _steiner_adapter, display="Steiner-Naive")

__all__ = [
    "solve_eqcast",
    "solve_nfusion",
    "fusion_log_success",
    "solve_random_tree",
    "solve_steiner_naive",
    "steiner_violation_rate",
]
