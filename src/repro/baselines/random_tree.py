"""Random-tree ablation baseline.

Connects users in a uniformly random pairing order: shuffle the users,
then attach each in turn to a uniformly random already-connected user
via the capacity-aware max-rate channel.  This isolates how much of the
proposed algorithms' advantage comes from *rate-greedy pair selection*
(Algorithms 2-4) versus merely using max-rate point-to-point routing.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from repro.core.channel import find_best_channel
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


def solve_random_tree(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    rng: RngLike = None,
) -> MUERPSolution:
    """Random attachment order, greedy per-pair routing.

    Deterministic given *rng*; returns an infeasible solution (rate 0)
    when the drawn attachment cannot be routed.
    """
    user_list = resolve_users(network, users)
    generator = ensure_rng(rng)
    order = list(user_list)
    generator.shuffle(order)

    residual = network.residual_qubits()
    connected: List[Hashable] = [order[0]]
    selected: List[Channel] = []
    for newcomer in order[1:]:
        anchor = connected[int(generator.integers(0, len(connected)))]
        channel = find_best_channel(network, anchor, newcomer, residual)
        if channel is None:
            return infeasible_solution(user_list, "random_tree")
        for switch in channel.switches:
            residual[switch] -= 2
        selected.append(channel)
        connected.append(newcomer)

    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="random_tree",
        feasible=True,
    )
