"""E-Q-CAST: Q-CAST extended to multi-user entanglement by chaining.

Q-CAST (Shi & Qian, SIGCOMM 2020) routes entanglement for *pairs* of
users.  The paper's extension (Sec. V-A): to entangle
``{u_1, …, u_n}``, establish channels ``<u_1,u_2>, <u_2,u_3>, …,
<u_{n-1},u_n>`` — a chain in a fixed user order, each link of the chain
routed like a two-user request.

Substitution note (documented in DESIGN.md): the original Q-CAST routes
with its "EXT" expected-throughput metric over multi-width paths; with
width-1 channels and the paper's single-attempt success model, the
highest-EXT path degenerates to the maximum-success-probability path, so
we reuse Algorithm 1's capacity-aware max-rate search per chain pair.
The chain's weakness versus the proposed algorithms is structural: the
pair order is arbitrary rather than rate-optimized.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from repro.core.channel import find_best_channel
from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike


def solve_eqcast(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    order: Optional[List[Hashable]] = None,
    rng: RngLike = None,
) -> MUERPSolution:
    """E-Q-CAST baseline.

    Args:
        network: The quantum network.
        users: Users to entangle (default: all network users).
        order: Explicit chain order; defaults to the request order (the
            natural "additional pairs" extension the paper describes).
        rng: Unused; accepted for registry-call uniformity.

    Returns:
        A capacity-feasible chain :class:`MUERPSolution`, or an
        infeasible one (rate 0) when some consecutive pair cannot be
        routed within residual switch capacity.
    """
    user_list = resolve_users(network, users)
    chain = list(order) if order is not None else user_list
    if set(chain) != set(user_list):
        raise ValueError("order must be a permutation of the users")

    residual = network.residual_qubits()
    selected: List[Channel] = []
    for source, target in zip(chain, chain[1:]):
        channel = find_best_channel(network, source, target, residual)
        if channel is None:
            return infeasible_solution(user_list, "eqcast")
        for switch in channel.switches:
            residual[switch] -= 2
        selected.append(channel)

    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="eqcast",
        feasible=True,
    )
