"""Extensions the paper names as future work (Sec. I / VII).

* :mod:`repro.extensions.fidelity_aware` — entanglement routing that
  accounts for Werner-state fidelity decay, via a Pareto
  label-correcting path search and a fidelity-constrained Prim growth.
* :mod:`repro.extensions.multigroup` — concurrent routing of multiple
  independent entanglement groups over a shared switch budget.
"""

from repro.extensions.fidelity_aware import (
    FidelityModel,
    ParetoChannel,
    channel_fidelity,
    pareto_channels,
    find_best_channel_with_fidelity,
    solve_fidelity_prim,
)
from repro.extensions.multigroup import (
    GroupRequest,
    GroupRoutingResult,
    route_groups,
    optimize_group_order,
)
from repro.extensions.recovery import (
    RepairReport,
    apply_failures,
    repair_solution,
)
from repro.extensions.purification import (
    PurificationOption,
    purify_once,
    purification_success,
    purification_ladder,
    best_purified_option,
    solve_purified_prim,
)
from repro.extensions.redundancy import (
    RedundantTree,
    add_redundancy,
    simulate_redundant,
)

__all__ = [
    "FidelityModel",
    "ParetoChannel",
    "channel_fidelity",
    "pareto_channels",
    "find_best_channel_with_fidelity",
    "solve_fidelity_prim",
    "GroupRequest",
    "GroupRoutingResult",
    "route_groups",
    "optimize_group_order",
    "RepairReport",
    "apply_failures",
    "repair_solution",
    "PurificationOption",
    "purify_once",
    "purification_success",
    "purification_ladder",
    "best_purified_option",
    "solve_purified_prim",
    "RedundantTree",
    "add_redundancy",
    "simulate_redundant",
]
