"""Redundant multi-channel entanglement trees.

The paper restricts each user pair to a single channel ("at most one
quantum channel between a quantum user pair", Sec. II-C) and flags
richer schemes as extensions.  This module implements the natural one:
spend *leftover* switch capacity on **backup channels** for the tree's
weakest edges.  A tree edge backed by channels with success rates
``P₁ … P_m`` succeeds when any copy does:

    P_edge = 1 − Π (1 − P_i)

so the tree's success becomes ``Π_edges P_edge`` — strictly better than
Eq. (2) whenever any backup is added, at zero extra cost to other edges
(fibers are multi-core; only switch qubits are scarce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.channel import find_best_channel
from repro.core.problem import Channel, MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class RedundantTree:
    """An entanglement tree where each edge may hold several channels."""

    groups: Tuple[Tuple[Channel, ...], ...]
    users: FrozenSet[Hashable]
    base: MUERPSolution

    @property
    def log_rate(self) -> float:
        """Log success probability with per-edge redundancy."""
        total = 0.0
        for group in self.groups:
            miss = 1.0
            for channel in group:
                miss *= 1.0 - channel.rate
            edge_success = 1.0 - miss
            if edge_success <= 0.0:
                return -math.inf
            total += math.log(edge_success)
        return total

    @property
    def rate(self) -> float:
        return math.exp(self.log_rate)

    @property
    def n_backups(self) -> int:
        return sum(len(group) - 1 for group in self.groups)

    def switch_usage(self) -> Dict[Hashable, int]:
        usage: Dict[Hashable, int] = {}
        for group in self.groups:
            for channel in group:
                for switch in channel.switches:
                    usage[switch] = usage.get(switch, 0) + 2
        return usage


def add_redundancy(
    network: QuantumNetwork,
    solution: MUERPSolution,
    max_backups: Optional[int] = None,
    residual: Optional[Dict[Hashable, int]] = None,
) -> RedundantTree:
    """Greedily add backup channels to *solution* within leftover capacity.

    Each step duplicates the tree edge whose backup yields the largest
    gain in total log success (backups may take different paths than the
    originals — they only share endpoints).  Stops when no admissible
    backup improves the rate or *max_backups* is reached.

    *residual* is the free-qubit pool backups may draw from, with the
    base tree (and anything else in service) **already deducted** — the
    shared-ledger case of the multi-tenant serving layer.  ``None``
    preserves the historical behaviour: assume an otherwise idle
    network and deduct the base tree here.
    """
    if not solution.feasible:
        raise ValueError("cannot add redundancy to an infeasible solution")
    groups: List[List[Channel]] = [[c] for c in solution.channels]
    if residual is None:
        residual = network.residual_qubits()
        for channel in solution.channels:
            for switch in channel.switches:
                residual[switch] -= 2
    else:
        residual = dict(residual)

    added = 0
    while max_backups is None or added < max_backups:
        best_gain = 1e-12
        best: Optional[Tuple[int, Channel]] = None
        for index, group in enumerate(groups):
            miss = 1.0
            for channel in group:
                miss *= 1.0 - channel.rate
            if miss <= 0.0:
                continue  # edge already certain
            a, b = group[0].endpoints
            backup = find_best_channel(network, a, b, residual)
            if backup is None:
                continue
            current = 1.0 - miss
            upgraded = 1.0 - miss * (1.0 - backup.rate)
            gain = math.log(upgraded) - math.log(current)
            if gain > best_gain:
                best_gain = gain
                best = (index, backup)
        if best is None:
            break
        index, backup = best
        for switch in backup.switches:
            residual[switch] -= 2
        groups[index].append(backup)
        added += 1

    return RedundantTree(
        groups=tuple(tuple(group) for group in groups),
        users=solution.users,
        base=solution,
    )


def simulate_redundant(
    network: QuantumNetwork,
    tree: RedundantTree,
    trials: int = 10_000,
    rng: RngLike = None,
) -> Tuple[float, float]:
    """Monte-Carlo check of the redundant tree's success probability.

    Returns ``(empirical_rate, analytic_rate)``; each trial samples every
    channel's links and swaps independently, an edge succeeds when any
    of its channels does, the tree when every edge does.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    generator = ensure_rng(rng)
    alpha = network.params.alpha
    q = network.params.swap_prob
    ok = np.ones(trials, dtype=bool)
    for group in tree.groups:
        edge_ok = np.zeros(trials, dtype=bool)
        for channel in group:
            lengths = []
            for u, v in zip(channel.path, channel.path[1:]):
                lengths.append(network.fiber_between(u, v).length)
            probs = np.exp(-alpha * np.asarray(lengths))
            channel_ok = (
                generator.uniform(size=(trials, len(lengths))) < probs[None, :]
            ).all(axis=1)
            if channel.n_swaps:
                channel_ok &= (
                    generator.uniform(size=(trials, channel.n_swaps)) < q
                ).all(axis=1)
            edge_ok |= channel_ok
        ok &= edge_ok
    return float(ok.mean()), tree.rate
