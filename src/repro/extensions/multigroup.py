"""Concurrent routing of multiple independent entanglement groups.

The paper's model "is readily extendable to … concurrent routing of
multiple independent entanglement groups" (Sec. I); this module builds
that extension.  Several disjoint (or overlapping) user groups request
entanglement trees over the *same* switch budgets; qubits consumed by
one group are unavailable to the next.

Routing is sequential over a configurable group order with a shared
residual-qubit map; each group is solved with Algorithm 3 or 4 (both
accept shared residuals).  The scheduler order is itself a design knob:

* ``"largest_first"`` — groups with more users route first (they are the
  hardest to fit; default);
* ``"smallest_first"`` — the opposite;
* ``"given"`` — caller-specified priority order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.conflict_free import solve_conflict_free
from repro.core.ledger import CapacityLedger
from repro.core.prim_based import solve_prim
from repro.core.problem import MUERPSolution
from repro.network.graph import QuantumNetwork
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class GroupRequest:
    """One entanglement group: a named set of quantum users."""

    name: str
    users: Tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if len(self.users) < 2:
            raise ValueError(
                f"group {self.name!r} needs >= 2 users, got {len(self.users)}"
            )
        if len(set(self.users)) != len(self.users):
            raise ValueError(f"group {self.name!r} has duplicate users")


@dataclass(frozen=True)
class GroupRoutingResult:
    """Solutions per group plus aggregate metrics."""

    solutions: Dict[str, MUERPSolution]
    order: Tuple[str, ...]

    @property
    def all_feasible(self) -> bool:
        return all(s.feasible for s in self.solutions.values())

    @property
    def n_feasible(self) -> int:
        return sum(1 for s in self.solutions.values() if s.feasible)

    @property
    def product_rate(self) -> float:
        """Probability every group entangles in the same window."""
        product = 1.0
        for solution in self.solutions.values():
            product *= solution.rate
        return product

    @property
    def min_rate(self) -> float:
        """Worst group's rate (fairness metric); 0 if any group failed."""
        if not self.solutions:
            return 0.0
        return min(s.rate for s in self.solutions.values())


def route_groups(
    network: QuantumNetwork,
    groups: Sequence[GroupRequest],
    method: str = "prim",
    order: str = "largest_first",
    rng: RngLike = None,
    ledger: Optional[CapacityLedger] = None,
) -> GroupRoutingResult:
    """Route every group over a shared switch budget.

    Args:
        network: The quantum network.
        groups: The entanglement groups (names must be unique).
        method: Per-group solver: ``"prim"`` (Algorithm 4) or
            ``"conflict_free"`` (Algorithm 3).
        order: Scheduling order — ``"largest_first"``,
            ``"smallest_first"`` or ``"given"``.
        rng: Random source forwarded to the per-group solver.
        ledger: Shared :class:`~repro.core.ledger.CapacityLedger` to
            reserve against (e.g. the serving layer's live account); a
            private one over the idle network is built when omitted.

    Returns:
        A :class:`GroupRoutingResult`; groups that cannot be routed under
        the remaining budget get infeasible (rate 0) solutions, later
        groups still get their chance with whatever capacity remains.

    The whole sequence runs inside one ledger transaction: every
    per-group reservation lands in ``repro.core.ledger.*`` telemetry,
    and an exception mid-sequence rolls *all* groups back instead of
    leaving phantom reservations in a caller-supplied ledger.
    """
    names = [g.name for g in groups]
    if len(set(names)) != len(names):
        raise ValueError("group names must be unique")
    if method not in ("prim", "conflict_free"):
        raise ValueError(f"unsupported per-group method {method!r}")

    if order == "largest_first":
        scheduled = sorted(groups, key=lambda g: (-len(g.users), g.name))
    elif order == "smallest_first":
        scheduled = sorted(groups, key=lambda g: (len(g.users), g.name))
    elif order == "given":
        scheduled = list(groups)
    else:
        raise ValueError(f"unknown order {order!r}")

    generator = ensure_rng(rng)
    account = CapacityLedger.adopt(ledger, network)
    solutions: Dict[str, MUERPSolution] = {}
    with account.transaction():
        for group in scheduled:
            # The solvers adopt the ledger directly and are themselves
            # transactional: an infeasible group — or a mid-solve
            # exception — publishes nothing into the shared account.
            if method == "prim":
                solution = solve_prim(
                    network, group.users, rng=generator, residual=account
                )
            else:
                solution = solve_conflict_free(
                    network, group.users, rng=generator, residual=account
                )
            solutions[group.name] = solution
    return GroupRoutingResult(
        solutions=solutions, order=tuple(g.name for g in scheduled)
    )


def optimize_group_order(
    network: QuantumNetwork,
    groups: Sequence[GroupRequest],
    method: str = "prim",
    objective: str = "product",
    max_permutations: int = 120,
    rng: RngLike = None,
) -> GroupRoutingResult:
    """Search over serving orders for the best multi-group outcome.

    Sequential routing is order-sensitive: an early group can starve a
    later one of the only good corridor.  This helper tries serving
    orders — exhaustively when ``len(groups)! ≤ max_permutations``,
    otherwise that many random permutations — and keeps the best under
    the chosen objective.

    Args:
        objective: ``"product"`` maximizes the all-groups-at-once
            success probability (0 whenever any group fails, so it also
            maximizes the feasible count); ``"min"`` maximizes the worst
            group's rate (max-min fairness).
        max_permutations: Evaluation budget.

    Returns:
        The best :class:`GroupRoutingResult` found (its ``order`` field
        records the winning sequence).
    """
    import itertools

    if objective not in ("product", "min"):
        raise ValueError(f"unknown objective {objective!r}")
    groups = list(groups)
    generator = ensure_rng(rng)

    total = math.factorial(len(groups))
    if total <= max_permutations:
        orders = list(itertools.permutations(groups))
    else:
        orders = []
        for _ in range(max_permutations):
            shuffled = list(groups)
            generator.shuffle(shuffled)
            orders.append(tuple(shuffled))

    def score(result: GroupRoutingResult) -> tuple:
        if objective == "product":
            return (result.n_feasible, result.product_rate)
        return (result.n_feasible, result.min_rate)

    best: Optional[GroupRoutingResult] = None
    for order in orders:
        candidate = route_groups(
            network, list(order), method=method, order="given", rng=generator
        )
        if best is None or score(candidate) > score(best):
            best = candidate
    assert best is not None  # orders is never empty (0! == 1)
    return best
