"""Failure recovery: repair a routed tree after fiber or switch loss.

The paper's edge-removal study (Fig. 7b) re-solves from scratch after
every removal.  An operational network wants *incremental repair*: when
a fiber is cut or a switch goes dark, keep every unaffected channel
(their qubits stay reserved) and re-route only the broken ones with the
remaining capacity.

:func:`repair_solution` implements that: it classifies channels into
survivors and casualties, returns the casualties' qubits to the residual
pool, and reconnects the split user components greedily by best
capacity-aware channel (the same reconnection discipline as Algorithm
3's Phase 2).  The result is either a valid repaired tree or an
infeasible marker when the damage is fatal.
"""

from __future__ import annotations

import logging
import math
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.channel import best_channels_from
from repro.core.optimal import channel_sort_key
from repro.core.problem import Channel, MUERPSolution, infeasible_solution
from repro.network.graph import QuantumNetwork
from repro.network.link import fiber_key
from repro.utils.unionfind import UnionFind

logger = logging.getLogger("repro.extensions.recovery")


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a repair attempt."""

    solution: MUERPSolution
    kept_channels: Tuple[Channel, ...]
    broken_channels: Tuple[Channel, ...]
    new_channels: Tuple[Channel, ...]

    @property
    def repaired(self) -> bool:
        return self.solution.feasible

    @property
    def rate_retention(self) -> float:
        """New rate / old rate (old rate inferred from kept + broken)."""
        old_log = sum(
            c.log_rate for c in self.kept_channels + self.broken_channels
        )
        if not self.solution.feasible:
            return 0.0
        return math.exp(self.solution.log_rate - old_log)


def apply_failures(
    network: QuantumNetwork,
    failed_fibers: Iterable[Tuple[Hashable, Hashable]] = (),
    failed_switches: Iterable[Hashable] = (),
) -> QuantumNetwork:
    """A copy of *network* with the given fibers/switches unusable.

    Failed switches stay in the graph but lose all incident fibers and
    their qubits (a dark node); failed fibers are simply removed.

    When a :class:`~repro.incremental.delta.DeltaBus` is active, the
    copy's mutations run under :meth:`~repro.incremental.delta.DeltaBus.
    suspended` — building a damaged *view* is bookkeeping, not a new
    physical change, so it must neither re-publish delta events nor
    re-invalidate cache regions the original fault already handled.
    """
    from repro.incremental import delta as incremental_delta

    bus = incremental_delta.active()
    guard = bus.suspended() if bus is not None else _nullcontext()
    with guard:
        damaged = network.copy()
        for u, v in failed_fibers:
            if damaged.has_fiber(u, v):
                damaged.remove_fiber(u, v)
        dead = set(failed_switches)
        for switch in dead:
            if switch not in damaged or not damaged.is_switch(switch):
                raise ValueError(f"{switch!r} is not a switch")
            for fiber in list(damaged.incident_fibers(switch)):
                damaged.remove_fiber(fiber.u, fiber.v)
    return damaged


def repair_solution(
    network: QuantumNetwork,
    solution: MUERPSolution,
    failed_fibers: Iterable[Tuple[Hashable, Hashable]] = (),
    failed_switches: Iterable[Hashable] = (),
    residual: Optional[Dict[Hashable, int]] = None,
    damaged: Optional[QuantumNetwork] = None,
) -> RepairReport:
    """Incrementally repair *solution* after the given failures.

    Args:
        network: The *original* network the solution was routed on.
        solution: A feasible routed tree.
        failed_fibers: Endpoint pairs of cut fibers.
        failed_switches: Ids of dark switches.
        residual: Optional capacity budget (switch → free qubits) that
            *includes* this solution's own reservations.  When given,
            replacement channels are routed within it — the contract the
            online scheduler relies on so repairs never overbook
            switches shared with other in-flight requests.  Defaults to
            the damaged network's full budget (single-tenant repair).
        damaged: Optional pre-built damaged view (exactly what
            :func:`apply_failures` over the same failure sets would
            return).  Callers that already maintain one — the online
            scheduler rebuilds it once per fault signature — pass it to
            skip an O(V + E) topology copy per repair.

    Returns:
        A :class:`RepairReport`; its solution is infeasible when the
        surviving capacity cannot reconnect the users.
    """
    if not solution.feasible:
        raise ValueError("cannot repair an infeasible solution")
    dead_fibers: Set[Tuple[Hashable, Hashable]] = {
        fiber_key(u, v) for u, v in failed_fibers
    }
    dead_switches = set(failed_switches)
    if damaged is None:
        damaged = apply_failures(network, dead_fibers, dead_switches)

    kept: List[Channel] = []
    broken: List[Channel] = []
    for channel in solution.channels:
        if _channel_broken(channel, dead_fibers, dead_switches):
            broken.append(channel)
        else:
            kept.append(channel)

    if not broken:
        return RepairReport(
            solution=solution,
            kept_channels=tuple(kept),
            broken_channels=(),
            new_channels=(),
        )

    logger.debug(
        "repair: %d kept / %d broken channels after %d fiber + %d switch "
        "failures",
        len(kept),
        len(broken),
        len(dead_fibers),
        len(dead_switches),
    )
    users = sorted(solution.users, key=repr)
    if residual is None:
        residual = damaged.residual_qubits()
    else:
        residual = dict(residual)
    for channel in kept:
        for switch in channel.switches:
            residual[switch] -= 2

    unions = UnionFind(users)
    for channel in kept:
        unions.union(*channel.endpoints)

    new_channels: List[Channel] = []
    while unions.n_components > 1:
        best: Optional[Channel] = None
        for index, source in enumerate(users):
            targets = [
                t for t in users[index + 1 :] if not unions.connected(source, t)
            ]
            if not targets:
                continue
            found = best_channels_from(damaged, source, targets, residual)
            for candidate in found.values():
                if best is None or channel_sort_key(candidate) < channel_sort_key(best):
                    best = candidate
        if best is None:
            logger.info(
                "repair failed: %d user components cannot be reconnected",
                unions.n_components,
            )
            return RepairReport(
                solution=infeasible_solution(users, solution.method + "+repair"),
                kept_channels=tuple(kept),
                broken_channels=tuple(broken),
                new_channels=tuple(new_channels),
            )
        for switch in best.switches:
            residual[switch] -= 2
        unions.union(*best.endpoints)
        new_channels.append(best)

    repaired = MUERPSolution(
        channels=tuple(kept + new_channels),
        users=solution.users,
        method=solution.method + "+repair",
        feasible=True,
        extra_log_rate=solution.extra_log_rate,
    )
    return RepairReport(
        solution=repaired,
        kept_channels=tuple(kept),
        broken_channels=tuple(broken),
        new_channels=tuple(new_channels),
    )


def _channel_broken(
    channel: Channel,
    dead_fibers: Set[Tuple[Hashable, Hashable]],
    dead_switches: Set[Hashable],
) -> bool:
    if any(s in dead_switches for s in channel.switches):
        return True
    return any(
        fiber_key(u, v) in dead_fibers
        for u, v in zip(channel.path, channel.path[1:])
    )
