"""Fidelity-aware entanglement routing (the paper's stated extension).

The base model optimizes the entanglement *rate* only; real applications
also need the delivered pairs to be high-*fidelity*.  This module adds:

* a :class:`FidelityModel` mapping fiber length to fresh-link Werner
  fidelity and composing fidelities through BSM swaps
  (``F' = F₁F₂ + (1-F₁)(1-F₂)/3``, see :mod:`repro.quantum.fidelity`);
* :func:`pareto_channels` — a label-correcting search computing the
  Pareto frontier of (rate, fidelity) channels between two users.
  Correctness rests on the swap rule being monotone in the upstream
  fidelity whenever link fidelities exceed 1/4, so dominated prefixes
  can never complete into non-dominated channels;
* :func:`solve_fidelity_prim` — Algorithm 4 with a minimum end-to-end
  fidelity constraint per channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.problem import (
    Channel,
    MUERPSolution,
    infeasible_solution,
    resolve_users,
)
from repro.core.rates import swap_log_rate
from repro.network.graph import QuantumNetwork
from repro.quantum.fidelity import (
    link_fidelity_from_length,
    werner_fidelity_after_swap,
)
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class FidelityModel:
    """Physical fidelity model for links and swaps.

    Attributes:
        base_fidelity: Fidelity of a zero-length fresh link (F₀).
        decay_per_km: Exponential decoherence constant λ of
            ``F(L) = 1/4 + (F₀ - 1/4)·exp(-λL)``.
    """

    base_fidelity: float = 0.99
    decay_per_km: float = 2e-5

    def link_fidelity(self, length: float) -> float:
        """Werner fidelity of a fresh link of a given length."""
        return link_fidelity_from_length(
            length, self.decay_per_km, self.base_fidelity
        )

    def extend(self, fidelity: float, link_fidelity: float) -> float:
        """Fidelity after swapping a channel prefix with one more link."""
        return werner_fidelity_after_swap(fidelity, link_fidelity)


@dataclass(frozen=True)
class ParetoChannel:
    """A channel annotated with its end-to-end Werner fidelity."""

    channel: Channel
    fidelity: float

    @property
    def rate(self) -> float:
        return self.channel.rate


def channel_fidelity(
    network: QuantumNetwork,
    path: Sequence[Hashable],
    model: Optional[FidelityModel] = None,
) -> float:
    """End-to-end Werner fidelity of a channel path."""
    model = model or FidelityModel()
    fidelities = []
    for u, v in zip(path, path[1:]):
        fiber = network.fiber_between(u, v)
        if fiber is None:
            raise ValueError(f"no fiber between {u!r} and {v!r}")
        fidelities.append(model.link_fidelity(fiber.length))
    result = fidelities[0]
    for fidelity in fidelities[1:]:
        result = model.extend(result, fidelity)
    return result


@dataclass
class _Label:
    """A (cost, fidelity) search label with its path."""

    cost: float  # accumulated -log rate weight
    fidelity: float
    path: Tuple[Hashable, ...]


def _dominates(a: _Label, b: _Label, tolerance: float = 1e-12) -> bool:
    """Whether label *a* weakly dominates *b* (cheaper and higher-F)."""
    return (
        a.cost <= b.cost + tolerance and a.fidelity >= b.fidelity - tolerance
    )


def pareto_channels(
    network: QuantumNetwork,
    source: Hashable,
    target: Hashable,
    model: Optional[FidelityModel] = None,
    residual: Optional[Dict[Hashable, int]] = None,
    max_labels_per_node: int = 32,
) -> List[ParetoChannel]:
    """Pareto frontier of (rate, fidelity) channels between two users.

    Label-correcting search: each node keeps its non-dominated
    (cost, fidelity) labels; extending a label over a fiber adds the
    Algorithm-1 weight to the cost and applies the Werner swap rule to
    the fidelity.  ``max_labels_per_node`` caps the frontier per node
    (keeping the cheapest labels) to bound worst-case blowup.

    Returns the frontier at *target*, sorted by descending rate.
    """
    if source == target:
        raise ValueError("source and target must differ")
    if not network.is_user(source) or not network.is_user(target):
        raise ValueError("source and target must be quantum users")
    model = model or FidelityModel()
    qubits = (
        network.residual_qubits() if residual is None else residual
    )
    alpha = network.params.alpha
    minus_ln_q = -swap_log_rate(network.params.swap_prob)

    labels: Dict[Hashable, List[_Label]] = {
        source: [_Label(0.0, 1.0, (source,))]
    }
    queue: List[_Label] = list(labels[source])

    while queue:
        label = queue.pop()
        node = label.path[-1]
        if node == target:
            continue
        if node != source:
            if not network.is_switch(node) or qubits.get(node, 0) < 2:
                continue
            if math.isinf(minus_ln_q):
                continue
        swap_cost = 0.0 if node == source else minus_ln_q
        for fiber in network.incident_fibers(node):
            neighbor = fiber.other_end(node)
            if neighbor in label.path:
                continue
            if neighbor != target and not network.is_switch(neighbor):
                continue
            if (
                network.is_switch(neighbor)
                and qubits.get(neighbor, 0) < 2
            ):
                continue
            link_f = model.link_fidelity(fiber.length)
            new_fidelity = (
                link_f
                if len(label.path) == 1
                else model.extend(label.fidelity, link_f)
            )
            candidate = _Label(
                cost=label.cost + swap_cost + alpha * fiber.length,
                fidelity=new_fidelity,
                path=label.path + (neighbor,),
            )
            bucket = labels.setdefault(neighbor, [])
            if any(_dominates(existing, candidate) for existing in bucket):
                continue
            bucket[:] = [
                existing
                for existing in bucket
                if not _dominates(candidate, existing)
            ]
            bucket.append(candidate)
            if len(bucket) > max_labels_per_node:
                bucket.sort(key=lambda l: l.cost)
                del bucket[max_labels_per_node:]
                if candidate not in bucket:
                    continue
            if neighbor != target:
                queue.append(candidate)

    results = []
    for label in labels.get(target, []):
        channel = Channel.from_path(network, label.path)
        results.append(ParetoChannel(channel=channel, fidelity=label.fidelity))
    results.sort(key=lambda pc: -pc.channel.log_rate)
    return results


def find_best_channel_with_fidelity(
    network: QuantumNetwork,
    source: Hashable,
    target: Hashable,
    min_fidelity: float,
    model: Optional[FidelityModel] = None,
    residual: Optional[Dict[Hashable, int]] = None,
) -> Optional[ParetoChannel]:
    """Max-rate channel whose end-to-end fidelity meets *min_fidelity*."""
    frontier = pareto_channels(network, source, target, model, residual)
    for candidate in frontier:  # sorted by descending rate
        if candidate.fidelity >= min_fidelity:
            return candidate
    return None


def solve_fidelity_prim(
    network: QuantumNetwork,
    users: Optional[Iterable[Hashable]] = None,
    min_fidelity: float = 0.8,
    model: Optional[FidelityModel] = None,
    start: Optional[Hashable] = None,
    rng: RngLike = None,
) -> MUERPSolution:
    """Algorithm 4 with a per-channel end-to-end fidelity constraint.

    Identical growth strategy to :func:`repro.core.solve_prim`, but each
    candidate channel is drawn from the fidelity-feasible part of the
    Pareto frontier.  Infeasible (rate 0) when no fidelity-compliant
    spanning tree exists within switch budgets.
    """
    user_list = resolve_users(network, users)
    model = model or FidelityModel()
    if start is None:
        generator = ensure_rng(rng)
        start = user_list[int(generator.integers(0, len(user_list)))]
    elif start not in user_list:
        raise ValueError(f"start {start!r} is not among the users")

    connected = [start]
    remaining = set(user_list) - {start}
    residual = network.residual_qubits()
    selected: List[Channel] = []

    while remaining:
        best: Optional[ParetoChannel] = None
        for source in connected:
            for target in remaining:
                candidate = find_best_channel_with_fidelity(
                    network, source, target, min_fidelity, model, residual
                )
                if candidate is None:
                    continue
                if best is None or candidate.channel.log_rate > best.channel.log_rate:
                    best = candidate
        if best is None:
            return infeasible_solution(user_list, "fidelity_prim")
        for switch in best.channel.switches:
            residual[switch] -= 2
        newcomer = best.channel.endpoints[1]
        remaining.discard(newcomer)
        connected.append(newcomer)
        selected.append(best.channel)

    return MUERPSolution(
        channels=tuple(selected),
        users=frozenset(user_list),
        method="fidelity_prim",
        feasible=True,
    )
